//! Content-addressed hashing: a streaming 128-bit FNV-1a hasher and a
//! hex-printable [`Digest`].
//!
//! Fingerprints identify *content* (the canonical pretty-print of a
//! patched design, a scenario's oracle, an evaluation record), so they
//! must be stable across runs, hosts, and process restarts — which
//! rules out `std::hash` (siphash with a random per-process key). FNV-1a
//! at 128 bits is trivially portable, dependency-free, and has a
//! collision floor far below anything a repair search can reach
//! (birthday bound ≈ 2⁶⁴ distinct variants).

/// The 128-bit FNV offset basis.
const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// The 128-bit FNV prime (2⁸⁸ + 2⁸ + 0x3b).
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013b;

/// The 64-bit FNV offset basis (for record checksums).
const FNV64_OFFSET: u64 = 0xcbf29ce484222325;
/// The 64-bit FNV prime.
const FNV64_PRIME: u64 = 0x00000100000001b3;

/// A streaming 128-bit FNV-1a hasher.
#[derive(Debug, Clone)]
pub struct Fnv128 {
    state: u128,
}

impl Default for Fnv128 {
    fn default() -> Fnv128 {
        Fnv128::new()
    }
}

impl Fnv128 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv128 {
        Fnv128 {
            state: FNV128_OFFSET,
        }
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV128_PRIME);
        }
    }

    /// Absorbs a string's UTF-8 bytes followed by a NUL separator, so
    /// `("ab", "c")` and `("a", "bc")` hash differently.
    pub fn write_str(&mut self, s: &str) {
        self.write(s.as_bytes());
        self.write(&[0]);
    }

    /// Absorbs a `u64` as 8 little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The digest of everything absorbed so far.
    pub fn finish(&self) -> Digest {
        Digest(self.state)
    }
}

/// One-shot 64-bit FNV-1a over a byte string — the per-record checksum
/// of the segment format.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut state = FNV64_OFFSET;
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV64_PRIME);
    }
    state
}

/// A 128-bit content digest, printed as 32 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub u128);

impl Digest {
    /// The 32-hex-digit rendering used in store records and filenames.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses a digest previously rendered by [`Digest::to_hex`].
    pub fn from_hex(s: &str) -> Option<Digest> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(Digest)
    }
}

impl std::fmt::Display for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv128_matches_reference_vectors() {
        // FNV-1a reference: hash of the empty string is the offset basis.
        assert_eq!(Fnv128::new().finish().0, FNV128_OFFSET);
        // A one-byte input multiplies once.
        let mut h = Fnv128::new();
        h.write(b"a");
        assert_eq!(
            h.finish().0,
            (FNV128_OFFSET ^ 0x61).wrapping_mul(FNV128_PRIME)
        );
    }

    #[test]
    fn fnv64_matches_reference_vectors() {
        assert_eq!(fnv64(b""), FNV64_OFFSET);
        // Known FNV-1a 64 test vector.
        assert_eq!(fnv64(b"a"), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn str_framing_prevents_concatenation_collisions() {
        let mut a = Fnv128::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv128::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn digest_hex_round_trips() {
        let d = Digest(0x0123456789abcdef0011223344556677);
        assert_eq!(d.to_hex().len(), 32);
        assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
        assert_eq!(Digest::from_hex("xyz"), None);
        assert_eq!(Digest::from_hex("00"), None);
    }
}
