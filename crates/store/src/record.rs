//! The checksummed record frame of every store file.
//!
//! One record per line:
//!
//! ```text
//! {"sum":"<16 hex digits>","body":{...}}
//! ```
//!
//! `sum` is the 64-bit FNV-1a of the *body substring exactly as
//! written*, so verification never depends on JSON canonicalization: the
//! reader slices the body text back out of the line, re-hashes the
//! bytes, and only then parses. A record whose frame, checksum, or body
//! fails to check is reported as corrupt and skipped — never trusted.

use cirfix_telemetry::JsonValue;

use crate::hash::fnv64;
use crate::json::parse_json;

/// `{"sum":"` `<16 hex>` `","body":` — the fixed offset of the body text.
const BODY_OFFSET: usize = 8 + 16 + 9;

/// Frames one body as a checksummed record line (without the newline).
pub fn encode_record(body: &JsonValue) -> String {
    let body_text = body.to_json();
    let sum = fnv64(body_text.as_bytes());
    format!("{{\"sum\":\"{sum:016x}\",\"body\":{body_text}}}")
}

/// Why a record line failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordError {
    /// The frame is malformed or the checksum does not match the body
    /// text — a torn write or bit rot.
    Corrupt(String),
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::Corrupt(why) => write!(f, "corrupt record: {why}"),
        }
    }
}

/// Decodes one record line back to its body.
pub fn decode_record(line: &str) -> Result<JsonValue, RecordError> {
    // Byte-wise slicing throughout: a torn or bit-rotted line may cut
    // multi-byte UTF-8 anywhere, and string indexing would panic there.
    let bytes = line.as_bytes();
    if bytes.len() < BODY_OFFSET + 1 || !bytes.starts_with(b"{\"sum\":\"") {
        return Err(RecordError::Corrupt("frame too short or missing".into()));
    }
    if &bytes[24..33] != b"\",\"body\":" {
        return Err(RecordError::Corrupt("malformed frame".into()));
    }
    let Some(sum) = std::str::from_utf8(&bytes[8..24])
        .ok()
        .and_then(|h| u64::from_str_radix(h, 16).ok())
    else {
        return Err(RecordError::Corrupt("bad checksum field".into()));
    };
    if bytes[bytes.len() - 1] != b'}' {
        return Err(RecordError::Corrupt("missing closing brace".into()));
    }
    let body_bytes = &bytes[BODY_OFFSET..bytes.len() - 1];
    if fnv64(body_bytes) != sum {
        return Err(RecordError::Corrupt("checksum mismatch".into()));
    }
    let body_text = std::str::from_utf8(body_bytes)
        .map_err(|_| RecordError::Corrupt("body is not UTF-8".into()))?;
    parse_json(body_text).map_err(|e| RecordError::Corrupt(format!("body does not parse: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body() -> JsonValue {
        JsonValue::obj(vec![
            ("kind", JsonValue::Str("eval".into())),
            ("score", JsonValue::Uint(4602678819172646912)),
        ])
    }

    #[test]
    fn encode_decode_round_trips() {
        let line = encode_record(&body());
        cirfix_telemetry::validate_json_line(&line).expect("frame is valid JSON");
        assert_eq!(decode_record(&line).unwrap(), body());
    }

    #[test]
    fn checksum_flip_is_detected() {
        let mut line = encode_record(&body());
        // Flip one character inside the body text.
        let flip = line.rfind("eval").unwrap();
        line.replace_range(flip..flip + 1, "f");
        assert!(matches!(decode_record(&line), Err(RecordError::Corrupt(_))));
    }

    #[test]
    fn truncated_record_is_detected() {
        let line = encode_record(&body());
        for cut in [0, 5, BODY_OFFSET, line.len() - 1] {
            assert!(
                decode_record(&line[..cut]).is_err(),
                "prefix of length {cut} must not decode"
            );
        }
    }

    #[test]
    fn foreign_lines_are_rejected_not_panicked() {
        for junk in ["", "{}", "not json", "{\"sum\":\"zz\",\"body\":{}}"] {
            assert!(decode_record(junk).is_err(), "{junk:?}");
        }
    }
}
