//! Append-only JSON-lines segment files with torn-write recovery.
//!
//! A segment is a sequence of checksummed record lines (see
//! [`crate::record`]). Writers only ever append whole lines and flush
//! after each record, so the sole crash artifact a writer can leave is
//! an incomplete *final* line — which the reader detects (no trailing
//! newline) and [`recover_segment`] truncates away. Complete lines that
//! fail the frame or checksum (bit rot, concurrent writers, manual
//! edits) are reported as corrupt and skipped; they are physically
//! removed by compaction, never silently trusted.

use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use cirfix_telemetry::JsonValue;

use crate::record::{decode_record, encode_record};

/// What a full read of one segment found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SegmentHealth {
    /// Records that decoded and checksummed cleanly.
    pub records: usize,
    /// Complete lines that failed the frame/checksum/parse, with their
    /// 1-based line number and the reason.
    pub corrupt: Vec<(usize, String)>,
    /// Byte offset of an incomplete trailing record (a torn write), if
    /// one is present.
    pub torn_tail: Option<u64>,
}

impl SegmentHealth {
    /// `true` when every byte of the segment decoded cleanly.
    pub fn is_clean(&self) -> bool {
        self.corrupt.is_empty() && self.torn_tail.is_none()
    }
}

/// Reads every record of a segment, tolerating damage: corrupt lines
/// are reported (not returned), a torn tail is reported (not returned).
pub fn read_segment(path: &Path) -> io::Result<(Vec<JsonValue>, SegmentHealth)> {
    let mut data = Vec::new();
    File::open(path)?.read_to_end(&mut data)?;
    Ok(scan(&data))
}

fn scan(data: &[u8]) -> (Vec<JsonValue>, SegmentHealth) {
    let mut bodies = Vec::new();
    let mut health = SegmentHealth::default();
    let mut offset = 0usize;
    let mut line_no = 0usize;
    while offset < data.len() {
        let Some(rel) = data[offset..].iter().position(|&b| b == b'\n') else {
            // No newline: the writer died mid-record. Everything from
            // here is the torn tail.
            health.torn_tail = Some(offset as u64);
            break;
        };
        line_no += 1;
        let line_bytes = &data[offset..offset + rel];
        match std::str::from_utf8(line_bytes)
            .map_err(|_| "line is not UTF-8".to_string())
            .and_then(|line| decode_record(line).map_err(|e| e.to_string()))
        {
            Ok(body) => {
                bodies.push(body);
                health.records += 1;
            }
            Err(why) => health.corrupt.push((line_no, why)),
        }
        offset += rel + 1;
    }
    (bodies, health)
}

/// Truncates a torn trailing record in place, returning the segment's
/// health *after* recovery. Missing files recover to an empty segment.
pub fn recover_segment(path: &Path) -> io::Result<SegmentHealth> {
    let mut data = Vec::new();
    match File::open(path) {
        Ok(mut f) => f.read_to_end(&mut data).map(|_| ())?,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(SegmentHealth::default()),
        Err(e) => return Err(e),
    }
    let (_, mut health) = scan(&data);
    if let Some(keep) = health.torn_tail.take() {
        OpenOptions::new().write(true).open(path)?.set_len(keep)?;
    }
    Ok(health)
}

/// An appending segment writer. Each record is written as one line and
/// flushed to the OS before the call returns, so a killed process can
/// lose at most the line it was writing — the recoverable torn tail.
#[derive(Debug)]
pub struct SegmentWriter {
    path: PathBuf,
    file: BufWriter<File>,
}

impl SegmentWriter {
    /// Opens (or creates) a segment for appending.
    pub fn append(path: &Path) -> io::Result<SegmentWriter> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(SegmentWriter {
            path: path.to_path_buf(),
            file: BufWriter::new(file),
        })
    }

    /// The file this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one checksummed record line.
    pub fn write_record(&mut self, body: &JsonValue) -> io::Result<()> {
        let line = encode_record(body);
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.flush()
    }

    /// Forces written records to stable storage (used after
    /// checkpoints, where durability matters more than throughput).
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.flush()?;
        self.file.get_ref().sync_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cirfix-store-seg-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("seg.jsonl")
    }

    fn body(n: u64) -> JsonValue {
        JsonValue::obj(vec![("n", JsonValue::Uint(n))])
    }

    #[test]
    fn write_read_round_trips() {
        let path = tmp("roundtrip");
        let mut w = SegmentWriter::append(&path).unwrap();
        for n in 0..5 {
            w.write_record(&body(n)).unwrap();
        }
        w.sync().unwrap();
        let (bodies, health) = read_segment(&path).unwrap();
        assert_eq!(bodies, (0..5).map(body).collect::<Vec<_>>());
        assert!(health.is_clean());
        assert_eq!(health.records, 5);
    }

    #[test]
    fn torn_tail_is_detected_and_recovered() {
        let path = tmp("torn");
        let mut w = SegmentWriter::append(&path).unwrap();
        w.write_record(&body(1)).unwrap();
        w.write_record(&body(2)).unwrap();
        drop(w);
        // Simulate a crash mid-record: append half a line, no newline.
        let clean_len = std::fs::metadata(&path).unwrap().len();
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"sum\":\"0123456789abcdef\",\"body\":{\"n\"")
            .unwrap();
        drop(f);

        let (bodies, health) = read_segment(&path).unwrap();
        assert_eq!(bodies.len(), 2, "torn tail is not returned");
        assert_eq!(health.torn_tail, Some(clean_len));

        let recovered = recover_segment(&path).unwrap();
        assert_eq!(recovered.records, 2);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len);
        let (_, after) = read_segment(&path).unwrap();
        assert!(after.is_clean(), "recovery leaves a clean segment");

        // Appending after recovery keeps working.
        let mut w = SegmentWriter::append(&path).unwrap();
        w.write_record(&body(3)).unwrap();
        let (bodies, health) = read_segment(&path).unwrap();
        assert_eq!(bodies.len(), 3);
        assert!(health.is_clean());
    }

    #[test]
    fn corrupt_middle_record_is_skipped_and_reported() {
        let path = tmp("corrupt");
        let mut w = SegmentWriter::append(&path).unwrap();
        for n in 0..3 {
            w.write_record(&body(n)).unwrap();
        }
        drop(w);
        // Flip a byte inside the second record's body.
        let mut data = std::fs::read(&path).unwrap();
        let second_line_start = data.iter().position(|&b| b == b'\n').unwrap() + 1;
        data[second_line_start + 40] ^= 0x01;
        std::fs::write(&path, &data).unwrap();

        let (bodies, health) = read_segment(&path).unwrap();
        assert_eq!(bodies, vec![body(0), body(2)], "bad record skipped");
        assert_eq!(health.corrupt.len(), 1);
        assert_eq!(health.corrupt[0].0, 2, "1-based line number");
        assert!(health.torn_tail.is_none());
    }

    #[test]
    fn missing_segment_recovers_to_empty() {
        let path = tmp("missing");
        assert_eq!(recover_segment(&path).unwrap(), SegmentHealth::default());
    }
}
