//! The on-disk store: directory layout, typed access to the record
//! families (evaluations, sessions, corpus, jobs), verification, and
//! garbage collection.
//!
//! Layout under the store directory:
//!
//! ```text
//! <dir>/evals/<s>/evals-<n>.jsonl append-only evaluation cache segments,
//!                                 sharded by the first hex digit of the
//!                                 record key (16 shard directories)
//! <dir>/evals/evals-<n>.jsonl     legacy flat segments (still read; gc
//!                                 migrates them into shards)
//! <dir>/sessions/<id>.jsonl       one resumable session log per session id
//! <dir>/corpus/corpus.jsonl       plausible repairs, one record each
//! <dir>/crashes/crashes.jsonl     shrunk fuzz findings, one record each
//! <dir>/jobs/jobs.jsonl           daemon job registry (last state wins)
//! ```
//!
//! Every file is a checksummed segment (see [`crate::segment`]). Each
//! writing process appends evaluations to *its own* fresh segments, so
//! concurrent runs never interleave lines; [`Store::gc`] later compacts
//! the segments, dropping corrupt records and duplicate keys.
//!
//! # Concurrent GC
//!
//! `gc` is safe to run while other processes (or the calling process
//! itself) hold open segments: every live writer advertises itself with
//! a `.lease` sidecar file naming its PID, and `gc` skips leased
//! segments whose owner is still alive. Stale leases — left behind by a
//! `kill -9` — are detected (the PID is gone) and cleaned up, so a
//! crashed writer never blocks compaction forever. This is what lets a
//! `cirfix serve` daemon run background GC under live repair jobs.

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use cirfix_telemetry::JsonValue;

use crate::hash::Digest;
use crate::json::field_str;
use crate::segment::{read_segment, recover_segment, SegmentHealth, SegmentWriter};

/// Aggregate damage counts from reading a family of segments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreHealth {
    /// Records that decoded cleanly.
    pub records: usize,
    /// Records skipped for frame/checksum/shape damage.
    pub corrupt: usize,
    /// Segments ending in an incomplete (torn) record.
    pub torn: usize,
}

impl StoreHealth {
    fn absorb(&mut self, h: &SegmentHealth) {
        self.records += h.records;
        self.corrupt += h.corrupt.len();
        self.torn += usize::from(h.torn_tail.is_some());
    }

    /// `true` when nothing was damaged.
    pub fn is_clean(&self) -> bool {
        self.corrupt == 0 && self.torn == 0
    }
}

/// Per-file detail from [`Store::verify`].
#[derive(Debug, Clone)]
pub struct FileReport {
    /// Path relative to the store directory.
    pub name: String,
    /// File size in bytes.
    pub bytes: u64,
    /// Clean records.
    pub records: usize,
    /// Corrupt lines: 1-based line number and reason.
    pub corrupt: Vec<(usize, String)>,
    /// Whether the file ends in a torn record.
    pub torn: bool,
}

/// The result of a full store verification pass.
#[derive(Debug, Clone, Default)]
pub struct StoreReport {
    /// One entry per segment file, in path order.
    pub files: Vec<FileReport>,
}

impl StoreReport {
    /// `true` when every file verified cleanly.
    pub fn is_clean(&self) -> bool {
        self.files.iter().all(|f| f.corrupt.is_empty() && !f.torn)
    }

    /// Total clean records across all files.
    pub fn records(&self) -> usize {
        self.files.iter().map(|f| f.records).sum()
    }

    /// Total corrupt records across all files.
    pub fn corrupt(&self) -> usize {
        self.files.iter().map(|f| f.corrupt.len()).sum()
    }

    /// Number of files with a torn tail.
    pub fn torn(&self) -> usize {
        self.files.iter().filter(|f| f.torn).count()
    }
}

/// What [`Store::gc`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Segment files removed (compacted away or fully dead).
    pub files_removed: usize,
    /// Records dropped: corrupt, torn, or duplicate-keyed.
    pub records_dropped: usize,
    /// Records surviving compaction.
    pub records_kept: usize,
    /// Bytes reclaimed on disk.
    pub bytes_reclaimed: u64,
    /// Segments left untouched because a live writer holds them.
    pub files_skipped_active: usize,
}

/// A persistent store rooted at one directory.
#[derive(Debug, Clone)]
pub struct Store {
    dir: PathBuf,
}

impl Store {
    /// Opens (creating if necessary) a store at `dir`.
    pub fn open(dir: &Path) -> io::Result<Store> {
        for sub in ["evals", "sessions", "corpus", "jobs", "patterns", "crashes"] {
            fs::create_dir_all(dir.join(sub))?;
        }
        Ok(Store {
            dir: dir.to_path_buf(),
        })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn segments_in(&self, sub: &str) -> io::Result<Vec<PathBuf>> {
        let mut paths: Vec<PathBuf> = fs::read_dir(self.dir.join(sub))?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "jsonl"))
            .collect();
        paths.sort();
        Ok(paths)
    }

    /// Every evaluation segment, in stable path order: legacy flat
    /// `evals/*.jsonl` files first, then the 16 shard directories.
    pub fn eval_segments(&self) -> io::Result<Vec<PathBuf>> {
        let root = self.dir.join("evals");
        let mut paths = Vec::new();
        let mut shard_dirs = Vec::new();
        for entry in fs::read_dir(&root)?.filter_map(Result::ok) {
            let p = entry.path();
            if p.is_dir() {
                shard_dirs.push(p);
            } else if p.extension().is_some_and(|e| e == "jsonl") {
                paths.push(p);
            }
        }
        shard_dirs.sort();
        paths.sort();
        for shard in shard_dirs {
            let mut in_shard: Vec<PathBuf> = fs::read_dir(&shard)?
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|e| e == "jsonl"))
                .collect();
            in_shard.sort();
            paths.extend(in_shard);
        }
        Ok(paths)
    }

    /// Every segment file in the store, in stable family-then-path
    /// order.
    pub fn all_segments(&self) -> io::Result<Vec<PathBuf>> {
        let mut all = self.eval_segments()?;
        for sub in ["sessions", "corpus", "jobs", "patterns", "crashes"] {
            all.extend(self.segments_in(sub)?);
        }
        Ok(all)
    }

    // ----- evaluations ---------------------------------------------------

    /// Loads every evaluation record across all segments. Records are
    /// keyed by their `"key"` digest; damaged records and records
    /// without a valid key are counted in the returned health, never
    /// returned as data.
    pub fn load_evals(&self) -> io::Result<(Vec<(Digest, JsonValue)>, StoreHealth)> {
        let mut entries = Vec::new();
        let mut health = StoreHealth::default();
        for path in self.eval_segments()? {
            let (bodies, seg) = read_segment(&path)?;
            health.absorb(&seg);
            for body in bodies {
                match field_str(&body, "key").and_then(Digest::from_hex) {
                    Some(key) => entries.push((key, body)),
                    None => {
                        health.records -= 1;
                        health.corrupt += 1;
                    }
                }
            }
        }
        Ok((entries, health))
    }

    /// A writer that appends evaluation records to fresh segments of
    /// its own — one per shard touched, created lazily on first write
    /// and leased (see the module docs) until the writer is dropped.
    pub fn eval_writer(&self) -> EvalWriter {
        EvalWriter {
            dir: self.dir.join("evals"),
            shards: HashMap::new(),
        }
    }

    // ----- sessions ------------------------------------------------------

    /// The log file of session `id`.
    pub fn session_path(&self, id: &str) -> PathBuf {
        self.dir.join("sessions").join(format!("{id}.jsonl"))
    }

    /// Reads a session log (empty when none exists yet), skipping
    /// damaged records.
    pub fn load_session(&self, id: &str) -> io::Result<(Vec<JsonValue>, SegmentHealth)> {
        let path = self.session_path(id);
        if !path.exists() {
            return Ok((Vec::new(), SegmentHealth::default()));
        }
        read_segment(&path)
    }

    /// Opens a session log for appending, first truncating any torn
    /// trailing record so new records always start on a clean line.
    pub fn session_writer(&self, id: &str) -> io::Result<SegmentWriter> {
        let path = self.session_path(id);
        recover_segment(&path)?;
        SegmentWriter::append(&path)
    }

    /// Marks session `id` as actively written by this process, so a
    /// concurrent [`Store::gc`] neither reaps nor truncates its log mid-
    /// append. The lease is released when the guard drops (and treated
    /// as stale once the owning process dies).
    pub fn session_lease(&self, id: &str) -> io::Result<Lease> {
        Lease::take(&self.session_path(id))
    }

    // ----- corpus --------------------------------------------------------

    fn corpus_path(&self) -> PathBuf {
        self.dir.join("corpus").join("corpus.jsonl")
    }

    /// Appends one repair record to the corpus.
    pub fn append_corpus(&self, body: &JsonValue) -> io::Result<()> {
        recover_segment(&self.corpus_path())?;
        SegmentWriter::append(&self.corpus_path())?.write_record(body)
    }

    /// Reads the repair corpus, skipping damaged records.
    pub fn load_corpus(&self) -> io::Result<(Vec<JsonValue>, SegmentHealth)> {
        let path = self.corpus_path();
        if !path.exists() {
            return Ok((Vec::new(), SegmentHealth::default()));
        }
        read_segment(&path)
    }

    // ----- crashes -------------------------------------------------------

    /// The fuzz regression corpus (`cirfix fuzz` findings, shrunk).
    pub fn crashes_path(&self) -> PathBuf {
        self.dir.join("crashes").join("crashes.jsonl")
    }

    /// Appends one shrunk fuzz finding to the crash corpus.
    pub fn append_crash(&self, body: &JsonValue) -> io::Result<()> {
        recover_segment(&self.crashes_path())?;
        SegmentWriter::append(&self.crashes_path())?.write_record(body)
    }

    /// Reads the crash corpus, skipping damaged records.
    pub fn load_crashes(&self) -> io::Result<(Vec<JsonValue>, SegmentHealth)> {
        let path = self.crashes_path();
        if !path.exists() {
            return Ok((Vec::new(), SegmentHealth::default()));
        }
        read_segment(&path)
    }

    // ----- patterns ------------------------------------------------------

    /// The mined fix-pattern artifact (`cirfix mine` output).
    pub fn patterns_path(&self) -> PathBuf {
        self.dir.join("patterns").join("patterns.jsonl")
    }

    /// Replaces the pattern artifact atomically with the given records
    /// (write to a tmp segment, then rename). Mining always rewrites
    /// the whole ranked set, so there is no append path.
    pub fn write_patterns(&self, bodies: &[JsonValue]) -> io::Result<()> {
        let path = self.patterns_path();
        let tmp = self.dir.join("patterns").join("compact.tmp");
        let _ = fs::remove_file(&tmp);
        {
            let mut w = SegmentWriter::append(&tmp)?;
            for body in bodies {
                w.write_record(body)?;
            }
            w.sync()?;
        }
        fs::rename(&tmp, path)
    }

    /// Reads the mined pattern artifact, skipping damaged records.
    pub fn load_patterns(&self) -> io::Result<(Vec<JsonValue>, SegmentHealth)> {
        let path = self.patterns_path();
        if !path.exists() {
            return Ok((Vec::new(), SegmentHealth::default()));
        }
        read_segment(&path)
    }

    // ----- jobs ----------------------------------------------------------

    fn jobs_path(&self) -> PathBuf {
        self.dir.join("jobs").join("jobs.jsonl")
    }

    /// Appends one job-state record (its body must carry an `"id"`
    /// field) and syncs it to stable storage — the daemon's job state
    /// machine must survive `kill -9`.
    pub fn append_job(&self, body: &JsonValue) -> io::Result<()> {
        recover_segment(&self.jobs_path())?;
        let mut w = SegmentWriter::append(&self.jobs_path())?;
        w.write_record(body)?;
        w.sync()
    }

    /// Reads the daemon job registry in append order, skipping damaged
    /// records. Folding is the caller's job: the *last* record per job
    /// id is its current state.
    pub fn load_jobs(&self) -> io::Result<(Vec<JsonValue>, SegmentHealth)> {
        let path = self.jobs_path();
        if !path.exists() {
            return Ok((Vec::new(), SegmentHealth::default()));
        }
        read_segment(&path)
    }

    /// Marks the job registry as actively written by this process (the
    /// daemon holds this for its lifetime), so a concurrent
    /// [`Store::gc`] does not rewrite it between two appends.
    pub fn jobs_lease(&self) -> io::Result<Lease> {
        Lease::take(&self.jobs_path())
    }

    // ----- maintenance ---------------------------------------------------

    /// Read-only verification of every segment file: reports clean,
    /// corrupt, and torn records without modifying anything.
    pub fn verify(&self) -> io::Result<StoreReport> {
        let mut report = StoreReport::default();
        for path in self.all_segments()? {
            let (_, health) = read_segment(&path)?;
            let name = path
                .strip_prefix(&self.dir)
                .unwrap_or(&path)
                .display()
                .to_string();
            report.files.push(FileReport {
                name,
                bytes: fs::metadata(&path)?.len(),
                records: health.records,
                corrupt: health.corrupt,
                torn: health.torn_tail.is_some(),
            });
        }
        Ok(report)
    }

    /// Garbage collection: compacts evaluation segments per shard
    /// (dropping corrupt records, torn tails, and duplicate keys —
    /// first write wins, matching the in-memory cache), migrates legacy
    /// flat segments into shards, removes session logs whose final
    /// record marks the session complete, truncates torn tails
    /// elsewhere, rewrites the corpus without damage, and folds the job
    /// registry down to one record per job.
    ///
    /// Safe under concurrent writers: segments (and session logs, and
    /// the job registry) held by a live process — advertised by a
    /// `.lease` sidecar naming a PID that is still running — are left
    /// entirely untouched and counted in
    /// [`GcReport::files_skipped_active`]. Leases whose owner died are
    /// removed and their segments compacted normally.
    pub fn gc(&self) -> io::Result<GcReport> {
        let mut report = GcReport::default();
        let before: u64 = self
            .all_segments()?
            .iter()
            .filter_map(|p| fs::metadata(p).ok())
            .map(|m| m.len())
            .sum();

        // Partition evaluation segments into live (leased by a running
        // process) and compactable.
        let mut active = Vec::new();
        let mut old_segments = Vec::new();
        for path in self.eval_segments()? {
            if lease_is_live(&path) {
                active.push(path);
            } else {
                remove_stale_lease(&path);
                old_segments.push(path);
            }
        }
        report.files_skipped_active += active.len();

        // Compact the compactable segments shard by shard. Fresh
        // segments are written to tmp files and renamed into place
        // *before* the old segments are deleted, so a crash at any
        // point leaves at worst duplicate records (which dedup on
        // load), never lost ones.
        if !old_segments.is_empty() {
            let mut seen = std::collections::HashSet::new();
            let mut kept_per_shard: HashMap<String, Vec<JsonValue>> = HashMap::new();
            let mut kept_total = 0usize;
            for path in &old_segments {
                let (bodies, h) = read_segment(path)?;
                report.records_dropped += h.corrupt.len() + usize::from(h.torn_tail.is_some());
                for body in bodies {
                    match field_str(&body, "key").and_then(Digest::from_hex) {
                        Some(key) if seen.insert(key) => {
                            let shard = shard_of(&key.to_hex());
                            kept_per_shard.entry(shard).or_default().push(body);
                            kept_total += 1;
                        }
                        _ => report.records_dropped += 1,
                    }
                }
            }
            for (shard, bodies) in &kept_per_shard {
                let shard_dir = self.dir.join("evals").join(shard);
                fs::create_dir_all(&shard_dir)?;
                let tmp = shard_dir.join("compact.tmp");
                let _ = fs::remove_file(&tmp);
                {
                    let mut w = SegmentWriter::append(&tmp)?;
                    for body in bodies {
                        w.write_record(body)?;
                    }
                    w.sync()?;
                }
                let existing: Vec<PathBuf> = fs::read_dir(&shard_dir)?
                    .filter_map(Result::ok)
                    .map(|e| e.path())
                    .collect();
                let next = next_segment_index(&existing);
                fs::rename(&tmp, shard_dir.join(segment_name(next)))?;
            }
            for path in &old_segments {
                fs::remove_file(path)?;
                report.files_removed += 1;
            }
            report.records_kept += kept_total;
        }

        // Sessions: drop completed logs, truncate torn tails elsewhere.
        // A leased log belongs to a running session — hands off even on
        // its torn tail, which may be an append in flight.
        for path in self.segments_in("sessions")? {
            if lease_is_live(&path) {
                report.files_skipped_active += 1;
                continue;
            }
            remove_stale_lease(&path);
            let (bodies, health) = read_segment(&path)?;
            let complete = bodies
                .last()
                .is_some_and(|b| field_str(b, "type") == Some("complete"));
            if complete {
                report.records_dropped += bodies.len() + health.corrupt.len();
                fs::remove_file(&path)?;
                report.files_removed += 1;
            } else {
                recover_segment(&path)?;
                report.records_kept += health.records;
                report.records_dropped += usize::from(health.torn_tail.is_some());
            }
        }

        // Corpus and crash corpus: rewrite without corrupt records when
        // damaged.
        for (sub, path) in [
            ("corpus", self.corpus_path()),
            ("crashes", self.crashes_path()),
        ] {
            if !path.exists() {
                continue;
            }
            let (bodies, health) = read_segment(&path)?;
            if health.is_clean() {
                report.records_kept += health.records;
            } else {
                let tmp = self.dir.join(sub).join("compact.tmp");
                let _ = fs::remove_file(&tmp);
                {
                    let mut w = SegmentWriter::append(&tmp)?;
                    for body in &bodies {
                        w.write_record(body)?;
                    }
                    w.sync()?;
                }
                fs::rename(&tmp, &path)?;
                report.records_kept += bodies.len();
                report.records_dropped +=
                    health.corrupt.len() + usize::from(health.torn_tail.is_some());
            }
        }

        // Patterns: like the corpus, rewrite without corrupt records
        // when damaged (the artifact is small and wholly regenerable).
        let patterns = self.patterns_path();
        if patterns.exists() {
            let (bodies, health) = read_segment(&patterns)?;
            if health.is_clean() {
                report.records_kept += health.records;
            } else {
                self.write_patterns(&bodies)?;
                report.records_kept += bodies.len();
                report.records_dropped +=
                    health.corrupt.len() + usize::from(health.torn_tail.is_some());
            }
        }

        // Jobs: fold to the last record per id — unless a daemon holds
        // the registry open.
        let jobs = self.jobs_path();
        if jobs.exists() {
            if lease_is_live(&jobs) {
                report.files_skipped_active += 1;
            } else {
                remove_stale_lease(&jobs);
                let (bodies, health) = read_segment(&jobs)?;
                let mut last: Vec<(String, JsonValue)> = Vec::new();
                for body in bodies {
                    let Some(id) = field_str(&body, "id").map(str::to_string) else {
                        report.records_dropped += 1;
                        continue;
                    };
                    match last.iter_mut().find(|(i, _)| *i == id) {
                        Some(slot) => {
                            slot.1 = body;
                            report.records_dropped += 1;
                        }
                        None => last.push((id, body)),
                    }
                }
                report.records_dropped +=
                    health.corrupt.len() + usize::from(health.torn_tail.is_some());
                let tmp = self.dir.join("jobs").join("compact.tmp");
                let _ = fs::remove_file(&tmp);
                {
                    let mut w = SegmentWriter::append(&tmp)?;
                    for (_, body) in &last {
                        w.write_record(body)?;
                    }
                    w.sync()?;
                }
                fs::rename(&tmp, &jobs)?;
                report.records_kept += last.len();
            }
        }

        let after: u64 = self
            .all_segments()?
            .iter()
            .filter_map(|p| fs::metadata(p).ok())
            .map(|m| m.len())
            .sum();
        report.bytes_reclaimed = before.saturating_sub(after);
        Ok(report)
    }
}

fn segment_name(index: u64) -> String {
    format!("evals-{index:05}.jsonl")
}

fn next_segment_index(existing: &[PathBuf]) -> u64 {
    existing
        .iter()
        .filter_map(|p| {
            p.file_stem()?
                .to_str()?
                .strip_prefix("evals-")?
                .parse::<u64>()
                .ok()
        })
        .max()
        .map_or(1, |n| n + 1)
}

/// The shard directory name for a record key: its first hex digit.
fn shard_of(key_hex: &str) -> String {
    match key_hex.chars().next() {
        Some(c) if c.is_ascii_hexdigit() => c.to_ascii_lowercase().to_string(),
        _ => "0".to_string(),
    }
}

// ----- leases -------------------------------------------------------------

/// The `.lease` sidecar path for a segment file.
fn lease_path(segment: &Path) -> PathBuf {
    let mut name = segment.as_os_str().to_os_string();
    name.push(".lease");
    PathBuf::from(name)
}

/// Whether `pid` names a currently running process. On Linux this is a
/// `/proc` lookup; elsewhere we conservatively report `true` (leases
/// then only expire when released, never by owner death).
fn pid_alive(pid: u32) -> bool {
    if cfg!(target_os = "linux") {
        Path::new("/proc").join(pid.to_string()).exists()
    } else {
        true
    }
}

/// Whether `segment` is held by a live writer. A lease naming a dead
/// PID (or unreadable) is stale, not live.
fn lease_is_live(segment: &Path) -> bool {
    let lease = lease_path(segment);
    match fs::read_to_string(&lease) {
        Ok(text) => text.trim().parse::<u32>().is_ok_and(pid_alive),
        Err(_) => false,
    }
}

/// Removes a stale lease sidecar, if any.
fn remove_stale_lease(segment: &Path) {
    let _ = fs::remove_file(lease_path(segment));
}

/// An RAII writer lease on one segment file: a `.lease` sidecar naming
/// this process's PID, removed on drop. [`Store::gc`] leaves leased
/// files alone while the owner lives, and reclaims the lease once it
/// dies.
#[derive(Debug)]
pub struct Lease {
    path: PathBuf,
}

impl Lease {
    fn take(segment: &Path) -> io::Result<Lease> {
        let path = lease_path(segment);
        fs::write(&path, format!("{}\n", std::process::id()))?;
        Ok(Lease { path })
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// Appends evaluation records to private fresh segments — one per
/// shard touched, created lazily so read-only (fully warm) runs leave
/// no empty files behind, and leased against concurrent GC until the
/// writer drops.
#[derive(Debug)]
pub struct EvalWriter {
    dir: PathBuf,
    shards: HashMap<String, (SegmentWriter, Lease)>,
}

impl EvalWriter {
    /// Appends one evaluation record to its shard's segment. The body
    /// must carry the `"key"` digest field — it selects the shard.
    pub fn write(&mut self, body: &JsonValue) -> io::Result<()> {
        let Some(key) = field_str(body, "key") else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "evaluation record has no \"key\" field",
            ));
        };
        let shard = shard_of(key);
        if !self.shards.contains_key(&shard) {
            let shard_dir = self.dir.join(&shard);
            fs::create_dir_all(&shard_dir)?;
            let existing: Vec<PathBuf> = fs::read_dir(&shard_dir)?
                .filter_map(Result::ok)
                .map(|e| e.path())
                .collect();
            // Claim a fresh segment; `create_new` guards against racing
            // writers picking the same index.
            let mut index = next_segment_index(&existing);
            let writer = loop {
                let path = shard_dir.join(segment_name(index));
                match fs::OpenOptions::new()
                    .create_new(true)
                    .append(true)
                    .open(&path)
                {
                    Ok(_) => {
                        let lease = Lease::take(&path)?;
                        break (SegmentWriter::append(&path)?, lease);
                    }
                    Err(e) if e.kind() == io::ErrorKind::AlreadyExists => index += 1,
                    Err(e) => return Err(e),
                }
            };
            self.shards.insert(shard.clone(), writer);
        }
        self.shards
            .get_mut(&shard)
            .expect("writer was just created")
            .0
            .write_record(body)
    }

    /// Forces written records to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        for (w, _) in self.shards.values_mut() {
            w.sync()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_store(name: &str) -> Store {
        let dir =
            std::env::temp_dir().join(format!("cirfix-store-test-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        Store::open(&dir).unwrap()
    }

    fn eval_body(key: Digest, n: u64) -> JsonValue {
        JsonValue::obj(vec![
            ("key", JsonValue::Str(key.to_hex())),
            ("n", JsonValue::Uint(n)),
        ])
    }

    #[test]
    fn eval_records_round_trip_through_segments() {
        let store = tmp_store("evals");
        let mut w = store.eval_writer();
        for n in 0..4u64 {
            w.write(&eval_body(Digest(u128::from(n)), n)).unwrap();
        }
        w.sync().unwrap();
        let (entries, health) = store.load_evals().unwrap();
        assert_eq!(entries.len(), 4);
        assert!(health.is_clean());
        assert!(entries.iter().any(|(k, _)| *k == Digest(2)));
    }

    #[test]
    fn writes_are_sharded_by_key_prefix() {
        let store = tmp_store("shards");
        let mut w = store.eval_writer();
        // Digest hex is 32 chars; 0x1... and 0xf... land in different
        // shard directories.
        let a = Digest(0x1000_0000_0000_0000_0000_0000_0000_0000);
        let b = Digest(0xf000_0000_0000_0000_0000_0000_0000_0000);
        w.write(&eval_body(a, 1)).unwrap();
        w.write(&eval_body(b, 2)).unwrap();
        drop(w);
        assert!(store.dir().join("evals/1").is_dir());
        assert!(store.dir().join("evals/f").is_dir());
        let (entries, health) = store.load_evals().unwrap();
        assert!(health.is_clean());
        assert_eq!(entries.len(), 2);
    }

    #[test]
    fn legacy_flat_segments_are_read_and_migrated_by_gc() {
        let store = tmp_store("legacy");
        // A pre-sharding store: a segment directly under evals/.
        let flat = store.dir().join("evals").join("evals-00001.jsonl");
        let mut w = SegmentWriter::append(&flat).unwrap();
        w.write_record(&eval_body(Digest(7), 7)).unwrap();
        w.sync().unwrap();
        drop(w);
        let (entries, _) = store.load_evals().unwrap();
        assert_eq!(entries.len(), 1, "flat segments are still read");
        store.gc().unwrap();
        assert!(!flat.exists(), "gc migrates flat segments into shards");
        let (entries, health) = store.load_evals().unwrap();
        assert!(health.is_clean());
        assert_eq!(entries.len(), 1);
    }

    #[test]
    fn each_writer_gets_its_own_segment() {
        let store = tmp_store("segments");
        let mut a = store.eval_writer();
        a.write(&eval_body(Digest(1), 1)).unwrap();
        let mut b = store.eval_writer();
        b.write(&eval_body(Digest(2), 2)).unwrap();
        assert_eq!(store.eval_segments().unwrap().len(), 2);
        let (entries, _) = store.load_evals().unwrap();
        assert_eq!(entries.len(), 2);
    }

    #[test]
    fn crash_records_round_trip_and_survive_gc() {
        let store = tmp_store("crashes");
        let (crashes, health) = store.load_crashes().unwrap();
        assert!(
            crashes.is_empty() && health.is_clean(),
            "empty corpus reads clean"
        );
        for n in 0..3u64 {
            store
                .append_crash(&JsonValue::obj(vec![("finding", JsonValue::Uint(n))]))
                .unwrap();
        }
        let (crashes, health) = store.load_crashes().unwrap();
        assert_eq!(crashes.len(), 3);
        assert!(health.is_clean());
        // A torn tail (a crash mid-append) is healed by gc, keeping the
        // intact records.
        use std::io::Write as _;
        let mut f = fs::OpenOptions::new()
            .append(true)
            .open(store.crashes_path())
            .unwrap();
        f.write_all(b"{\"truncated").unwrap();
        drop(f);
        store.gc().unwrap();
        let (crashes, health) = store.load_crashes().unwrap();
        assert_eq!(crashes.len(), 3);
        assert!(health.is_clean());
        let report = store.verify().unwrap();
        assert!(report.is_clean(), "crashes are covered by verify");
        assert!(
            report.files.iter().any(|f| f.name.contains("crashes")),
            "verify lists the crash segment"
        );
    }

    #[test]
    fn gc_compacts_dedups_and_reports() {
        let store = tmp_store("gc");
        let mut a = store.eval_writer();
        a.write(&eval_body(Digest(1), 1)).unwrap();
        a.write(&eval_body(Digest(2), 2)).unwrap();
        let mut b = store.eval_writer();
        b.write(&eval_body(Digest(1), 99)).unwrap(); // duplicate key
        drop((a, b));
        let report = store.gc().unwrap();
        assert_eq!(report.records_kept, 2);
        assert_eq!(report.records_dropped, 1);
        assert_eq!(report.files_skipped_active, 0);
        let (entries, health) = store.load_evals().unwrap();
        assert!(health.is_clean());
        let one = entries.iter().find(|(k, _)| *k == Digest(1)).unwrap();
        assert_eq!(
            crate::json::field_u64(&one.1, "n"),
            Some(1),
            "first write wins"
        );
    }

    #[test]
    fn gc_skips_segments_held_by_live_writers() {
        let store = tmp_store("gc-live");
        let mut live = store.eval_writer();
        live.write(&eval_body(Digest(1), 1)).unwrap();
        live.sync().unwrap();
        let mut done = store.eval_writer();
        done.write(&eval_body(Digest(2), 2)).unwrap();
        drop(done);

        // `live` still holds its segment (same-process lease, PID
        // alive): gc must leave it untouched and still compact the
        // released one.
        let report = store.gc().unwrap();
        assert_eq!(report.files_skipped_active, 1);
        assert_eq!(report.records_kept, 1);

        // The held segment keeps accepting writes after the gc — the
        // regression this guards: the old gc deleted it out from under
        // the writer, silently dropping every subsequent record.
        live.write(&eval_body(Digest(3), 3)).unwrap();
        live.sync().unwrap();
        drop(live);
        let (entries, health) = store.load_evals().unwrap();
        assert!(health.is_clean());
        let mut keys: Vec<u128> = entries.iter().map(|(k, _)| k.0).collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![1, 2, 3]);

        // With the writer gone the lease is released; a second gc
        // compacts everything.
        let report = store.gc().unwrap();
        assert_eq!(report.files_skipped_active, 0);
        let (entries, _) = store.load_evals().unwrap();
        assert_eq!(entries.len(), 3);
    }

    #[test]
    fn gc_reclaims_stale_leases_from_dead_writers() {
        let store = tmp_store("gc-stale");
        let mut w = store.eval_writer();
        w.write(&eval_body(Digest(9), 9)).unwrap();
        w.sync().unwrap();
        // Forget the writer without running Drop: the lease file stays
        // behind, as after a `kill -9`...
        std::mem::forget(w);
        let seg = store.eval_segments().unwrap()[0].clone();
        let lease = lease_path(&seg);
        assert!(lease.exists());
        // ...then rewrite it to name a PID that cannot exist.
        fs::write(&lease, "4294967294\n").unwrap();
        let report = store.gc().unwrap();
        assert_eq!(report.files_skipped_active, 0, "stale lease is not live");
        assert!(!lease.exists(), "stale lease cleaned up");
        assert_eq!(report.records_kept, 1);
    }

    #[test]
    fn gc_reaps_completed_sessions_and_keeps_live_ones() {
        let store = tmp_store("sessions");
        let done = JsonValue::obj(vec![("type", JsonValue::Str("complete".into()))]);
        let live = JsonValue::obj(vec![("type", JsonValue::Str("checkpoint".into()))]);
        store
            .session_writer("done")
            .unwrap()
            .write_record(&done)
            .unwrap();
        store
            .session_writer("live")
            .unwrap()
            .write_record(&live)
            .unwrap();
        store.gc().unwrap();
        assert!(!store.session_path("done").exists());
        assert!(store.session_path("live").exists());
    }

    #[test]
    fn gc_spares_leased_sessions_even_when_complete() {
        let store = tmp_store("session-lease");
        let done = JsonValue::obj(vec![("type", JsonValue::Str("complete".into()))]);
        store
            .session_writer("held")
            .unwrap()
            .write_record(&done)
            .unwrap();
        let lease = store.session_lease("held").unwrap();
        store.gc().unwrap();
        assert!(
            store.session_path("held").exists(),
            "leased session survives gc"
        );
        drop(lease);
        store.gc().unwrap();
        assert!(!store.session_path("held").exists());
    }

    #[test]
    fn job_registry_appends_and_folds_through_gc() {
        let store = tmp_store("jobs");
        let rec = |id: &str, state: &str| {
            JsonValue::obj(vec![
                ("id", JsonValue::Str(id.into())),
                ("state", JsonValue::Str(state.into())),
            ])
        };
        store.append_job(&rec("a", "queued")).unwrap();
        store.append_job(&rec("b", "queued")).unwrap();
        store.append_job(&rec("a", "running")).unwrap();
        store.append_job(&rec("a", "plausible")).unwrap();
        let (records, health) = store.load_jobs().unwrap();
        assert!(health.is_clean());
        assert_eq!(records.len(), 4);
        store.gc().unwrap();
        let (records, _) = store.load_jobs().unwrap();
        assert_eq!(records.len(), 2, "gc folds to last record per id");
        assert_eq!(field_str(&records[0], "state"), Some("plausible"));
        assert_eq!(field_str(&records[1], "state"), Some("queued"));
    }

    #[test]
    fn verify_reports_without_modifying() {
        let store = tmp_store("verify");
        let mut w = store.eval_writer();
        w.write(&eval_body(Digest(1), 1)).unwrap();
        drop(w);
        let seg = &store.eval_segments().unwrap()[0];
        let len_before = fs::metadata(seg).unwrap().len();
        // Torn tail.
        use std::io::Write as _;
        let mut f = fs::OpenOptions::new().append(true).open(seg).unwrap();
        f.write_all(b"{\"sum\":\"partial").unwrap();
        drop(f);
        let report = store.verify().unwrap();
        assert!(!report.is_clean());
        assert_eq!(report.torn(), 1);
        assert_eq!(report.records(), 1);
        assert!(
            fs::metadata(seg).unwrap().len() > len_before,
            "verify must not truncate"
        );
    }
}
