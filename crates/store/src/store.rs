//! The on-disk store: directory layout, typed access to the three
//! record families (evaluations, sessions, corpus), verification, and
//! garbage collection.
//!
//! Layout under the store directory:
//!
//! ```text
//! <dir>/evals/evals-<n>.jsonl     append-only evaluation cache segments
//! <dir>/sessions/<id>.jsonl       one resumable session log per session id
//! <dir>/corpus/corpus.jsonl       plausible repairs, one record each
//! ```
//!
//! Every file is a checksummed segment (see [`crate::segment`]). Each
//! writing process appends evaluations to its *own* fresh segment, so
//! concurrent runs never interleave lines; [`Store::gc`] later compacts
//! the segments into one, dropping corrupt records and duplicate keys.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use cirfix_telemetry::JsonValue;

use crate::hash::Digest;
use crate::json::field_str;
use crate::segment::{read_segment, recover_segment, SegmentHealth, SegmentWriter};

/// Aggregate damage counts from reading a family of segments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreHealth {
    /// Records that decoded cleanly.
    pub records: usize,
    /// Records skipped for frame/checksum/shape damage.
    pub corrupt: usize,
    /// Segments ending in an incomplete (torn) record.
    pub torn: usize,
}

impl StoreHealth {
    fn absorb(&mut self, h: &SegmentHealth) {
        self.records += h.records;
        self.corrupt += h.corrupt.len();
        self.torn += usize::from(h.torn_tail.is_some());
    }

    /// `true` when nothing was damaged.
    pub fn is_clean(&self) -> bool {
        self.corrupt == 0 && self.torn == 0
    }
}

/// Per-file detail from [`Store::verify`].
#[derive(Debug, Clone)]
pub struct FileReport {
    /// Path relative to the store directory.
    pub name: String,
    /// File size in bytes.
    pub bytes: u64,
    /// Clean records.
    pub records: usize,
    /// Corrupt lines: 1-based line number and reason.
    pub corrupt: Vec<(usize, String)>,
    /// Whether the file ends in a torn record.
    pub torn: bool,
}

/// The result of a full store verification pass.
#[derive(Debug, Clone, Default)]
pub struct StoreReport {
    /// One entry per segment file, in path order.
    pub files: Vec<FileReport>,
}

impl StoreReport {
    /// `true` when every file verified cleanly.
    pub fn is_clean(&self) -> bool {
        self.files.iter().all(|f| f.corrupt.is_empty() && !f.torn)
    }

    /// Total clean records across all files.
    pub fn records(&self) -> usize {
        self.files.iter().map(|f| f.records).sum()
    }

    /// Total corrupt records across all files.
    pub fn corrupt(&self) -> usize {
        self.files.iter().map(|f| f.corrupt.len()).sum()
    }

    /// Number of files with a torn tail.
    pub fn torn(&self) -> usize {
        self.files.iter().filter(|f| f.torn).count()
    }
}

/// What [`Store::gc`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Segment files removed (compacted away or fully dead).
    pub files_removed: usize,
    /// Records dropped: corrupt, torn, or duplicate-keyed.
    pub records_dropped: usize,
    /// Records surviving compaction.
    pub records_kept: usize,
    /// Bytes reclaimed on disk.
    pub bytes_reclaimed: u64,
}

/// A persistent store rooted at one directory.
#[derive(Debug, Clone)]
pub struct Store {
    dir: PathBuf,
}

impl Store {
    /// Opens (creating if necessary) a store at `dir`.
    pub fn open(dir: &Path) -> io::Result<Store> {
        for sub in ["evals", "sessions", "corpus"] {
            fs::create_dir_all(dir.join(sub))?;
        }
        Ok(Store {
            dir: dir.to_path_buf(),
        })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn segments_in(&self, sub: &str) -> io::Result<Vec<PathBuf>> {
        let mut paths: Vec<PathBuf> = fs::read_dir(self.dir.join(sub))?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "jsonl"))
            .collect();
        paths.sort();
        Ok(paths)
    }

    /// Every segment file in the store, in stable path order.
    pub fn all_segments(&self) -> io::Result<Vec<PathBuf>> {
        let mut all = Vec::new();
        for sub in ["evals", "sessions", "corpus"] {
            all.extend(self.segments_in(sub)?);
        }
        Ok(all)
    }

    // ----- evaluations ---------------------------------------------------

    /// Loads every evaluation record across all segments. Records are
    /// keyed by their `"key"` digest; damaged records and records
    /// without a valid key are counted in the returned health, never
    /// returned as data.
    pub fn load_evals(&self) -> io::Result<(Vec<(Digest, JsonValue)>, StoreHealth)> {
        let mut entries = Vec::new();
        let mut health = StoreHealth::default();
        for path in self.segments_in("evals")? {
            let (bodies, seg) = read_segment(&path)?;
            health.absorb(&seg);
            for body in bodies {
                match field_str(&body, "key").and_then(Digest::from_hex) {
                    Some(key) => entries.push((key, body)),
                    None => {
                        health.records -= 1;
                        health.corrupt += 1;
                    }
                }
            }
        }
        Ok((entries, health))
    }

    /// A writer that appends evaluation records to a fresh segment of
    /// its own (created lazily on first write).
    pub fn eval_writer(&self) -> EvalWriter {
        EvalWriter {
            dir: self.dir.join("evals"),
            writer: None,
        }
    }

    // ----- sessions ------------------------------------------------------

    /// The log file of session `id`.
    pub fn session_path(&self, id: &str) -> PathBuf {
        self.dir.join("sessions").join(format!("{id}.jsonl"))
    }

    /// Reads a session log (empty when none exists yet), skipping
    /// damaged records.
    pub fn load_session(&self, id: &str) -> io::Result<(Vec<JsonValue>, SegmentHealth)> {
        let path = self.session_path(id);
        if !path.exists() {
            return Ok((Vec::new(), SegmentHealth::default()));
        }
        read_segment(&path)
    }

    /// Opens a session log for appending, first truncating any torn
    /// trailing record so new records always start on a clean line.
    pub fn session_writer(&self, id: &str) -> io::Result<SegmentWriter> {
        let path = self.session_path(id);
        recover_segment(&path)?;
        SegmentWriter::append(&path)
    }

    // ----- corpus --------------------------------------------------------

    fn corpus_path(&self) -> PathBuf {
        self.dir.join("corpus").join("corpus.jsonl")
    }

    /// Appends one repair record to the corpus.
    pub fn append_corpus(&self, body: &JsonValue) -> io::Result<()> {
        recover_segment(&self.corpus_path())?;
        SegmentWriter::append(&self.corpus_path())?.write_record(body)
    }

    /// Reads the repair corpus, skipping damaged records.
    pub fn load_corpus(&self) -> io::Result<(Vec<JsonValue>, SegmentHealth)> {
        let path = self.corpus_path();
        if !path.exists() {
            return Ok((Vec::new(), SegmentHealth::default()));
        }
        read_segment(&path)
    }

    // ----- maintenance ---------------------------------------------------

    /// Read-only verification of every segment file: reports clean,
    /// corrupt, and torn records without modifying anything.
    pub fn verify(&self) -> io::Result<StoreReport> {
        let mut report = StoreReport::default();
        for path in self.all_segments()? {
            let (_, health) = read_segment(&path)?;
            let name = path
                .strip_prefix(&self.dir)
                .unwrap_or(&path)
                .display()
                .to_string();
            report.files.push(FileReport {
                name,
                bytes: fs::metadata(&path)?.len(),
                records: health.records,
                corrupt: health.corrupt,
                torn: health.torn_tail.is_some(),
            });
        }
        Ok(report)
    }

    /// Garbage collection: compacts all evaluation segments into one
    /// (dropping corrupt records, torn tails, and duplicate keys —
    /// first write wins, matching the in-memory cache), removes session
    /// logs whose final record marks the session complete, truncates
    /// torn tails everywhere, and rewrites the corpus without damage.
    pub fn gc(&self) -> io::Result<GcReport> {
        let mut report = GcReport::default();
        let before: u64 = self
            .all_segments()?
            .iter()
            .filter_map(|p| fs::metadata(p).ok())
            .map(|m| m.len())
            .sum();

        // Compact evaluations. The fresh segment is written to a tmp
        // file and renamed into place *before* the old segments are
        // deleted, so a crash at any point leaves at worst duplicate
        // records (which dedup on load), never lost ones.
        let old_segments = self.segments_in("evals")?;
        let (entries, _) = self.load_evals()?;
        let mut seen = std::collections::HashSet::new();
        let mut kept = Vec::new();
        for (key, body) in entries {
            if seen.insert(key) {
                kept.push(body);
            } else {
                report.records_dropped += 1;
            }
        }
        if !old_segments.is_empty() {
            let tmp = self.dir.join("evals").join("compact.tmp");
            let _ = fs::remove_file(&tmp);
            {
                let mut w = SegmentWriter::append(&tmp)?;
                for body in &kept {
                    w.write_record(body)?;
                }
                w.sync()?;
            }
            let next = next_segment_index(&old_segments);
            fs::rename(&tmp, self.dir.join("evals").join(segment_name(next)))?;
            for path in &old_segments {
                let (_, h) = read_segment(path)?;
                report.records_dropped += h.corrupt.len() + usize::from(h.torn_tail.is_some());
                fs::remove_file(path)?;
                report.files_removed += 1;
            }
        }
        report.records_kept += kept.len();

        // Sessions: drop completed logs, truncate torn tails elsewhere.
        for path in self.segments_in("sessions")? {
            let (bodies, health) = read_segment(&path)?;
            let complete = bodies
                .last()
                .is_some_and(|b| field_str(b, "type") == Some("complete"));
            if complete {
                report.records_dropped += bodies.len() + health.corrupt.len();
                fs::remove_file(&path)?;
                report.files_removed += 1;
            } else {
                recover_segment(&path)?;
                report.records_kept += health.records;
                report.records_dropped += usize::from(health.torn_tail.is_some());
            }
        }

        // Corpus: rewrite without corrupt records when damaged.
        let corpus = self.corpus_path();
        if corpus.exists() {
            let (bodies, health) = read_segment(&corpus)?;
            if health.is_clean() {
                report.records_kept += health.records;
            } else {
                let tmp = self.dir.join("corpus").join("compact.tmp");
                let _ = fs::remove_file(&tmp);
                {
                    let mut w = SegmentWriter::append(&tmp)?;
                    for body in &bodies {
                        w.write_record(body)?;
                    }
                    w.sync()?;
                }
                fs::rename(&tmp, &corpus)?;
                report.records_kept += bodies.len();
                report.records_dropped +=
                    health.corrupt.len() + usize::from(health.torn_tail.is_some());
            }
        }

        let after: u64 = self
            .all_segments()?
            .iter()
            .filter_map(|p| fs::metadata(p).ok())
            .map(|m| m.len())
            .sum();
        report.bytes_reclaimed = before.saturating_sub(after);
        Ok(report)
    }
}

fn segment_name(index: u64) -> String {
    format!("evals-{index:05}.jsonl")
}

fn next_segment_index(existing: &[PathBuf]) -> u64 {
    existing
        .iter()
        .filter_map(|p| {
            p.file_stem()?
                .to_str()?
                .strip_prefix("evals-")?
                .parse::<u64>()
                .ok()
        })
        .max()
        .map_or(1, |n| n + 1)
}

/// Appends evaluation records to a private fresh segment, created
/// lazily so read-only (fully warm) runs leave no empty files behind.
#[derive(Debug)]
pub struct EvalWriter {
    dir: PathBuf,
    writer: Option<SegmentWriter>,
}

impl EvalWriter {
    /// Appends one evaluation record (its body must carry the `"key"`
    /// digest field).
    pub fn write(&mut self, body: &JsonValue) -> io::Result<()> {
        if self.writer.is_none() {
            let existing: Vec<PathBuf> = fs::read_dir(&self.dir)?
                .filter_map(Result::ok)
                .map(|e| e.path())
                .collect();
            // Claim a fresh segment; `create_new` guards against racing
            // writers picking the same index.
            let mut index = next_segment_index(&existing);
            let writer = loop {
                let path = self.dir.join(segment_name(index));
                match fs::OpenOptions::new()
                    .create_new(true)
                    .append(true)
                    .open(&path)
                {
                    Ok(_) => break SegmentWriter::append(&path)?,
                    Err(e) if e.kind() == io::ErrorKind::AlreadyExists => index += 1,
                    Err(e) => return Err(e),
                }
            };
            self.writer = Some(writer);
        }
        self.writer
            .as_mut()
            .expect("writer was just created")
            .write_record(body)
    }

    /// Forces written records to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        match self.writer.as_mut() {
            Some(w) => w.sync(),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_store(name: &str) -> Store {
        let dir =
            std::env::temp_dir().join(format!("cirfix-store-test-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        Store::open(&dir).unwrap()
    }

    fn eval_body(key: Digest, n: u64) -> JsonValue {
        JsonValue::obj(vec![
            ("key", JsonValue::Str(key.to_hex())),
            ("n", JsonValue::Uint(n)),
        ])
    }

    #[test]
    fn eval_records_round_trip_through_segments() {
        let store = tmp_store("evals");
        let mut w = store.eval_writer();
        for n in 0..4u64 {
            w.write(&eval_body(Digest(u128::from(n)), n)).unwrap();
        }
        w.sync().unwrap();
        let (entries, health) = store.load_evals().unwrap();
        assert_eq!(entries.len(), 4);
        assert!(health.is_clean());
        assert_eq!(entries[2].0, Digest(2));
    }

    #[test]
    fn each_writer_gets_its_own_segment() {
        let store = tmp_store("segments");
        let mut a = store.eval_writer();
        a.write(&eval_body(Digest(1), 1)).unwrap();
        let mut b = store.eval_writer();
        b.write(&eval_body(Digest(2), 2)).unwrap();
        assert_eq!(store.segments_in("evals").unwrap().len(), 2);
        let (entries, _) = store.load_evals().unwrap();
        assert_eq!(entries.len(), 2);
    }

    #[test]
    fn gc_compacts_dedups_and_reports() {
        let store = tmp_store("gc");
        let mut a = store.eval_writer();
        a.write(&eval_body(Digest(1), 1)).unwrap();
        a.write(&eval_body(Digest(2), 2)).unwrap();
        let mut b = store.eval_writer();
        b.write(&eval_body(Digest(1), 99)).unwrap(); // duplicate key
        drop((a, b));
        let report = store.gc().unwrap();
        assert_eq!(report.records_kept, 2);
        assert_eq!(report.records_dropped, 1);
        assert_eq!(store.segments_in("evals").unwrap().len(), 1);
        let (entries, health) = store.load_evals().unwrap();
        assert!(health.is_clean());
        let one = entries.iter().find(|(k, _)| *k == Digest(1)).unwrap();
        assert_eq!(
            crate::json::field_u64(&one.1, "n"),
            Some(1),
            "first write wins"
        );
    }

    #[test]
    fn gc_reaps_completed_sessions_and_keeps_live_ones() {
        let store = tmp_store("sessions");
        let done = JsonValue::obj(vec![("type", JsonValue::Str("complete".into()))]);
        let live = JsonValue::obj(vec![("type", JsonValue::Str("checkpoint".into()))]);
        store
            .session_writer("done")
            .unwrap()
            .write_record(&done)
            .unwrap();
        store
            .session_writer("live")
            .unwrap()
            .write_record(&live)
            .unwrap();
        store.gc().unwrap();
        assert!(!store.session_path("done").exists());
        assert!(store.session_path("live").exists());
    }

    #[test]
    fn verify_reports_without_modifying() {
        let store = tmp_store("verify");
        let mut w = store.eval_writer();
        w.write(&eval_body(Digest(1), 1)).unwrap();
        drop(w);
        let seg = &store.segments_in("evals").unwrap()[0];
        let len_before = fs::metadata(seg).unwrap().len();
        // Torn tail.
        use std::io::Write as _;
        let mut f = fs::OpenOptions::new().append(true).open(seg).unwrap();
        f.write_all(b"{\"sum\":\"partial").unwrap();
        drop(f);
        let report = store.verify().unwrap();
        assert!(!report.is_clean());
        assert_eq!(report.torn(), 1);
        assert_eq!(report.records(), 1);
        assert!(
            fs::metadata(seg).unwrap().len() > len_before,
            "verify must not truncate"
        );
    }
}
