//! End-to-end tests of the `cirfix` binary: config-driven repair,
//! simulation, fitness and localization, exactly as a user would run it.

use std::path::PathBuf;
use std::process::{Command, Output};

const FAULTY: &str = r#"
module cnt (c, r, q);
    input c, r;
    output reg [1:0] q;
    always @(posedge c)
        if (!r) q <= 0;
        else q <= q + 1;
endmodule
"#;

const GOLDEN: &str = r#"
module cnt (c, r, q);
    input c, r;
    output reg [1:0] q;
    always @(posedge c)
        if (r) q <= 0;
        else q <= q + 1;
endmodule
"#;

const TB: &str = r#"
module tb;
    reg c, r;
    wire [1:0] q;
    cnt dut (c, r, q);
    initial begin c = 0; r = 1; #12 r = 0; end
    always #5 c = !c;
    initial #120 $finish;
endmodule
"#;

/// Creates a scratch project directory with sources and a repair.conf.
fn setup(dir_name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cirfix_cli_{dir_name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    std::fs::write(dir.join("faulty.v"), FAULTY).unwrap();
    std::fs::write(dir.join("golden.v"), GOLDEN).unwrap();
    std::fs::write(dir.join("tb.v"), TB).unwrap();
    std::fs::write(
        dir.join("repair.conf"),
        format!(
            "# CirFix configuration (cf. the artifact's repair.conf)\n\
             design = faulty.v\n\
             golden = golden.v\n\
             testbench = tb.v\n\
             top = tb\n\
             design_modules = cnt\n\
             probe_signals = q\n\
             probe_start = 5\n\
             probe_period = 10\n\
             max_time = 200\n\
             popn_size = 200\n\
             trials = 3\n\
             output = {}\n",
            dir.join("repaired.v").display()
        ),
    )
    .unwrap();
    dir
}

fn cirfix(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cirfix"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn repair_command_writes_a_repaired_design() {
    let dir = setup("repair");
    let conf = dir.join("repair.conf");
    let out = cirfix(&["repair", conf.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stdout: {stdout}\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("plausible: true"), "{stdout}");
    let repaired = std::fs::read_to_string(dir.join("repaired.v")).expect("output written");
    assert!(repaired.contains("module cnt"));
    // The repaired design must parse.
    cirfix_parser::parse(&repaired).expect("repaired design parses");
}

#[test]
fn simulate_command_prints_csv() {
    let dir = setup("simulate");
    let conf = dir.join("repair.conf");
    let out = cirfix(&["simulate", conf.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("time,q"), "{stdout}");
    assert!(stdout.contains("finished=true"), "{stdout}");
}

#[test]
fn simulate_writes_vcd_when_asked() {
    let dir = setup("vcd");
    let conf = dir.join("repair.conf");
    let vcd_path = dir.join("wave.vcd");
    let out = cirfix(&[
        "simulate",
        conf.to_str().unwrap(),
        "--vcd",
        vcd_path.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let vcd = std::fs::read_to_string(&vcd_path).expect("vcd written");
    assert!(vcd.contains("$enddefinitions"));
}

#[test]
fn fitness_command_scores_the_faulty_design() {
    let dir = setup("fitness");
    let conf = dir.join("repair.conf");
    let out = cirfix(&["fitness", conf.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("fitness: 0."), "{stdout}");
    assert!(stdout.contains("q"), "{stdout}");
}

#[test]
fn localize_command_lists_implicated_statements() {
    let dir = setup("localize");
    let conf = dir.join("repair.conf");
    let out = cirfix(&["localize", conf.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("implicated nodes:"), "{stdout}");
    assert!(stdout.contains('q'), "{stdout}");
}

#[test]
fn bad_usage_fails_cleanly() {
    let out = cirfix(&[]);
    assert!(!out.status.success());
    let out = cirfix(&["bogus", "/nonexistent.conf"]);
    assert!(!out.status.success());
    let out = cirfix(&["repair", "/nonexistent.conf"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn overrides_change_behaviour() {
    let dir = setup("override");
    let conf = dir.join("repair.conf");
    // An absurdly small budget cannot repair.
    let out = cirfix(&[
        "repair",
        conf.to_str().unwrap(),
        "--max_evals",
        "1",
        "--popn_size",
        "2",
        "--max_generations",
        "1",
        "--trials",
        "1",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no plausible repair"));
}
