//! End-to-end daemon tests of the `cirfix` binary: serve, submit,
//! status, watch, cancel, shutdown — and the two properties the
//! service mode is built around: daemon jobs are byte-identical to
//! batch `cirfix repair` runs, and a killed daemon resumes its
//! in-flight jobs on restart.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

const FAULTY: &str = r#"
module cnt (c, r, q);
    input c, r;
    output reg [1:0] q;
    always @(posedge c)
        if (!r) q <= 0;
        else q <= q + 1;
endmodule
"#;

const GOLDEN: &str = r#"
module cnt (c, r, q);
    input c, r;
    output reg [1:0] q;
    always @(posedge c)
        if (r) q <= 0;
        else q <= q + 1;
endmodule
"#;

const TB: &str = r#"
module tb;
    reg c, r;
    wire [1:0] q;
    cnt dut (c, r, q);
    initial begin c = 0; r = 1; #12 r = 0; end
    always #5 c = !c;
    initial #120 $finish;
endmodule
"#;

fn setup(dir_name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cirfix_serve_{dir_name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    std::fs::write(dir.join("faulty.v"), FAULTY).unwrap();
    std::fs::write(dir.join("golden.v"), GOLDEN).unwrap();
    std::fs::write(dir.join("tb.v"), TB).unwrap();
    std::fs::write(
        dir.join("repair.conf"),
        "design = faulty.v\n\
         golden = golden.v\n\
         testbench = tb.v\n\
         top = tb\n\
         design_modules = cnt\n\
         probe_signals = q\n\
         probe_start = 5\n\
         probe_period = 10\n\
         max_time = 200\n\
         popn_size = 60\n\
         max_generations = 3\n\
         max_evals = 400\n\
         timeout_s = 3600\n\
         trials = 2\n\
         seed = 5\n",
    )
    .unwrap();
    dir
}

fn cirfix(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cirfix"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout_of(out: &Output) -> String {
    assert!(
        out.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Runs batch `cirfix repair` as the reference for a daemon job. The
/// identity properties hold whether or not the budget finds a repair,
/// and `repair` exits nonzero on a miss — so only I/O failures (no
/// canonical result written) are errors here.
fn batch_reference(args: &[&str], result_out: &Path) {
    let out = cirfix(args);
    assert!(
        result_out.exists(),
        "reference repair wrote no result\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

/// Starts `cirfix serve` on a Unix socket and waits for it to come up.
fn start_daemon(store: &Path, sock: &Path, extra: &[&str]) -> Child {
    // A SIGKILLed predecessor leaves its socket file behind; remove it
    // so "the socket exists" below means "the new daemon is up".
    let _ = std::fs::remove_file(sock);
    let child = Command::new(env!("CARGO_BIN_EXE_cirfix"))
        .arg("serve")
        .arg(store)
        .arg("--socket")
        .arg(sock)
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon spawns");
    let deadline = Instant::now() + Duration::from_secs(30);
    while !sock.exists() {
        assert!(Instant::now() < deadline, "daemon socket never appeared");
        std::thread::sleep(Duration::from_millis(20));
    }
    child
}

/// Sends `shutdown` and reaps the daemon process.
fn stop_daemon(mut child: Child, sock: &Path) {
    let out = cirfix(&["shutdown", "--socket", sock.to_str().unwrap()]);
    stdout_of(&out);
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if child.try_wait().expect("wait works").is_some() {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "daemon did not exit after shutdown"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Submits a job and returns its id (first token of the job line).
fn submit(sock: &Path, conf: &Path, overrides: &[&str]) -> String {
    let mut args = vec![
        "submit",
        conf.to_str().unwrap(),
        "--socket",
        sock.to_str().unwrap(),
    ];
    args.extend_from_slice(overrides);
    let stdout = stdout_of(&cirfix(&args));
    stdout
        .split_whitespace()
        .next()
        .expect("submit prints a job id")
        .to_string()
}

/// Polls `cirfix status JOB` until its state matches, within a deadline.
fn wait_for_state(sock: &Path, job: &str, states: &[&str]) -> String {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let stdout = stdout_of(&cirfix(&[
            "status",
            job,
            "--socket",
            sock.to_str().unwrap(),
        ]));
        let state = stdout
            .split_whitespace()
            .nth(1)
            .unwrap_or_default()
            .to_string();
        if states.contains(&state.as_str()) {
            return state;
        }
        assert!(
            Instant::now() < deadline,
            "job {job} never reached {states:?}; last status: {stdout}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
}

#[test]
fn daemon_submit_matches_batch_repair_and_report() {
    let dir = setup("identity");
    let conf = dir.join("repair.conf");

    // The batch reference: plain `cirfix repair` over a session store
    // with a timing-free trace and the canonical result.
    let ref_trace = dir.join("ref-trace.jsonl");
    let ref_result = dir.join("ref-result.json");
    batch_reference(
        &[
            "repair",
            conf.to_str().unwrap(),
            "--store",
            dir.join("ref-store").to_str().unwrap(),
            "--trace-out",
            ref_trace.to_str().unwrap(),
            "--trace-timing",
            "off",
            "--result-out",
            ref_result.to_str().unwrap(),
            "--output",
            dir.join("ref-repaired.v").to_str().unwrap(),
            "--jobs",
            "1",
        ],
        &ref_result,
    );
    let ref_trace_bytes = std::fs::read(&ref_trace).expect("reference trace");
    let ref_result_bytes = std::fs::read(&ref_result).expect("reference result");
    let ref_report = stdout_of(&cirfix(&["report", ref_trace.to_str().unwrap(), "--json"]));

    // The same job through a daemon, with 1 and then 4 eval workers.
    for jobs in ["1", "4"] {
        let job_dir = dir.join(format!("daemon-{jobs}"));
        std::fs::create_dir_all(&job_dir).unwrap();
        let sock = job_dir.join("d.sock");
        let trace = job_dir.join("trace.jsonl");
        let result = job_dir.join("result.json");
        let daemon = start_daemon(&job_dir.join("store"), &sock, &[]);

        let job = submit(
            &sock,
            &conf,
            &[
                "--jobs",
                jobs,
                "--trace-out",
                trace.to_str().unwrap(),
                "--trace-timing",
                "off",
                "--result-out",
                result.to_str().unwrap(),
                "--output",
                job_dir.join("repaired.v").to_str().unwrap(),
            ],
        );
        let state = wait_for_state(&sock, &job, &["plausible", "failed"]);

        // `watch --once` on a finished job reports its terminal state.
        let watch = stdout_of(&cirfix(&[
            "watch",
            &job,
            "--socket",
            sock.to_str().unwrap(),
            "--once",
        ]));
        assert!(watch.contains(&state), "watch output: {watch}");

        stop_daemon(daemon, &sock);

        assert_eq!(
            std::fs::read(&trace).expect("daemon trace"),
            ref_trace_bytes,
            "jobs={jobs}: daemon trace differs from batch trace"
        );
        assert_eq!(
            std::fs::read(&result).expect("daemon result"),
            ref_result_bytes,
            "jobs={jobs}: daemon result differs from batch result"
        );
        let report = stdout_of(&cirfix(&["report", trace.to_str().unwrap(), "--json"]));
        assert_eq!(report, ref_report, "jobs={jobs}: report differs");
    }
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn killed_daemon_resumes_the_job_on_restart() {
    let dir = setup("killed");
    let conf = dir.join("repair.conf");

    // Uninterrupted reference result.
    let ref_result = dir.join("ref-result.json");
    batch_reference(
        &[
            "repair",
            conf.to_str().unwrap(),
            "--store",
            dir.join("ref-store").to_str().unwrap(),
            "--result-out",
            ref_result.to_str().unwrap(),
            "--output",
            dir.join("ref-repaired.v").to_str().unwrap(),
            "--jobs",
            "1",
        ],
        &ref_result,
    );
    let ref_result_bytes = std::fs::read(&ref_result).expect("reference result");

    // First daemon: the job halts right after checkpointing
    // generation 0 (the deterministic stand-in for dying mid-run),
    // then the daemon itself is SIGKILLed — no drain, no cleanup.
    let store = dir.join("store");
    let sock = dir.join("d.sock");
    let result = dir.join("result.json");
    let mut daemon = start_daemon(&store, &sock, &[]);
    let job = submit(
        &sock,
        &conf,
        &[
            "--halt-after",
            "0",
            "--jobs",
            "1",
            "--result-out",
            result.to_str().unwrap(),
            "--output",
            dir.join("repaired.v").to_str().unwrap(),
        ],
    );
    wait_for_state(&sock, &job, &["interrupted"]);
    daemon.kill().expect("SIGKILL lands");
    daemon.wait().expect("reaped");
    assert!(!result.exists(), "interrupted job has no result yet");

    // Second daemon over the same store: the registry re-enqueues the
    // job, the rehearsed halt is stripped, and the session resumes
    // from its checkpoint to the same result as never having stopped.
    let daemon = start_daemon(&store, &sock, &[]);
    wait_for_state(&sock, &job, &["plausible", "failed"]);
    stop_daemon(daemon, &sock);

    assert_eq!(
        std::fs::read(&result).expect("resumed result"),
        ref_result_bytes,
        "resumed job must land on the uninterrupted result"
    );
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn queued_jobs_cancel_cleanly() {
    let dir = setup("cancel");
    let conf = dir.join("repair.conf");
    let sock = dir.join("d.sock");
    // `--max-active 0`: nothing ever runs, so the job stays queued and
    // the cancel path is deterministic.
    let daemon = start_daemon(&dir.join("store"), &sock, &["--max-active", "0"]);

    let job = submit(&sock, &conf, &[]);
    wait_for_state(&sock, &job, &["queued"]);
    let out = stdout_of(&cirfix(&[
        "cancel",
        &job,
        "--socket",
        sock.to_str().unwrap(),
    ]));
    assert!(out.contains("cancelled"), "cancel output: {out}");
    wait_for_state(&sock, &job, &["cancelled"]);

    // Cancelling an unknown job is a structured error, not a crash.
    let bad = cirfix(&["cancel", "nope", "--socket", sock.to_str().unwrap()]);
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("unknown_job"));

    stop_daemon(daemon, &sock);
    let _ = std::fs::remove_dir_all(dir);
}
