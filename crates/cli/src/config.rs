//! The `repair.conf` format: simple `key = value` lines, mirroring the
//! configuration file of the paper's artifact (§A.4).

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// A parsed repair configuration file.
///
/// Recognized keys:
///
/// | key | meaning | default |
/// |---|---|---|
/// | `design` | path to the faulty design (required) | — |
/// | `golden` | path to a known-good design for the oracle (required) | — |
/// | `testbench` | path to the testbench (required) | — |
/// | `top` | testbench top module (required) | — |
/// | `design_modules` | comma-separated repairable modules (required) | — |
/// | `probe_signals` | comma-separated recorded signals (required) | — |
/// | `probe_start` | first sample time | `5` |
/// | `probe_period` | sampling period | `10` |
/// | `max_time` | simulation time bound | `100000` |
/// | `popn_size` | GP population size | `300` |
/// | `max_generations` | GP generations | `8` |
/// | `trials` | independent trials | `3` |
/// | `seed` | base random seed | `1` |
/// | `timeout_s` | wall clock per trial (seconds) | `120` |
/// | `max_evals` | fitness evaluations per trial | `6000` |
/// | `phi` | x/z penalty weight | `2.0` |
/// | `jobs` | evaluation worker threads; `0` = auto (`$CIRFIX_JOBS`, else all cores) | `0` |
/// | `batch_size` | candidates per parallel dispatch | `32` |
/// | `eval_timeout` | per-candidate wall-clock budget in seconds (fractions allowed); `0` = unbudgeted | `0` |
/// | `sim_step_limit` | cap on total simulator operations per candidate | simulator default |
/// | `chaos` | deterministic fault-injection spec, e.g. `panic@5,storefail@2,transient` | off |
/// | `output` | where to write the repaired design | `repaired.v` |
/// | `trace_out` | stream telemetry events as JSON lines to this path | off |
/// | `trace_timing` | `wall` records real durations; `off` scrubs them for byte-reproducible traces | `wall` |
/// | `metrics` | print an aggregate telemetry summary at the end | `false` |
/// | `store` | persistent store directory, cwd-relative (enables write-through cache, checkpoints, corpus) | off |
/// | `resume` | continue an interrupted session from its last checkpoint | `false` |
/// | `halt_after` | stop right after checkpointing generation N (deterministic kill stand-in) | off |
/// | `result_out` | where to write the canonical, timing-free result JSON | off |
#[derive(Debug, Clone, Default)]
pub struct Config {
    values: HashMap<String, String>,
    base_dir: PathBuf,
}

/// A configuration error with context.
#[derive(Debug)]
pub struct ConfigError(pub String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "config error: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// Parses `text`, resolving relative paths against `base_dir`.
    ///
    /// # Errors
    ///
    /// Returns an error for lines that are not comments, blanks, or
    /// `key = value` pairs.
    pub fn parse(text: &str, base_dir: &Path) -> Result<Config, ConfigError> {
        let mut values = HashMap::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') || line.starts_with("//") {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ConfigError(format!(
                    "line {}: expected `key = value`, got `{line}`",
                    lineno + 1
                )));
            };
            values.insert(key.trim().to_string(), value.trim().to_string());
        }
        Ok(Config {
            values,
            base_dir: base_dir.to_path_buf(),
        })
    }

    /// Loads and parses a configuration file.
    ///
    /// # Errors
    ///
    /// I/O and syntax errors.
    pub fn load(path: &Path) -> Result<Config, ConfigError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ConfigError(format!("cannot read {}: {e}", path.display())))?;
        let base = path.parent().unwrap_or_else(|| Path::new("."));
        Config::parse(&text, base)
    }

    /// Overrides a key (used for `--key value` command-line overrides).
    pub fn set(&mut self, key: &str, value: &str) {
        self.values.insert(key.to_string(), value.to_string());
    }

    /// A required string value.
    ///
    /// # Errors
    ///
    /// Missing key.
    pub fn required(&self, key: &str) -> Result<&str, ConfigError> {
        self.values
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| ConfigError(format!("missing required key `{key}`")))
    }

    /// An optional string with a default.
    pub fn string_or(&self, key: &str, default: &str) -> String {
        self.values
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// A numeric value with a default.
    ///
    /// # Errors
    ///
    /// Unparseable numbers.
    pub fn num_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ConfigError> {
        match self.values.get(key) {
            Some(v) => v
                .parse()
                .map_err(|_| ConfigError(format!("key `{key}`: bad number `{v}`"))),
            None => Ok(default),
        }
    }

    /// A required path, resolved against the config file's directory.
    ///
    /// # Errors
    ///
    /// Missing key.
    pub fn path(&self, key: &str) -> Result<PathBuf, ConfigError> {
        let raw = self.required(key)?;
        let p = Path::new(raw);
        Ok(if p.is_absolute() {
            p.to_path_buf()
        } else {
            self.base_dir.join(p)
        })
    }

    /// A comma-separated list.
    ///
    /// # Errors
    ///
    /// Missing key.
    pub fn list(&self, key: &str) -> Result<Vec<String>, ConfigError> {
        Ok(self
            .required(key)?
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_key_value_lines() {
        let c = Config::parse(
            "# comment\n\ntop = tb\npopn_size = 40\nprobe_signals = q, ovf\n",
            Path::new("/base"),
        )
        .unwrap();
        assert_eq!(c.required("top").unwrap(), "tb");
        assert_eq!(c.num_or("popn_size", 0usize).unwrap(), 40);
        assert_eq!(c.list("probe_signals").unwrap(), vec!["q", "ovf"]);
        assert_eq!(c.string_or("output", "repaired.v"), "repaired.v");
    }

    #[test]
    fn resolves_relative_paths() {
        let c = Config::parse("design = d.v\n", Path::new("/cfg/dir")).unwrap();
        assert_eq!(c.path("design").unwrap(), PathBuf::from("/cfg/dir/d.v"));
        let c = Config::parse("design = /abs/d.v\n", Path::new("/cfg/dir")).unwrap();
        assert_eq!(c.path("design").unwrap(), PathBuf::from("/abs/d.v"));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Config::parse("nonsense line", Path::new(".")).is_err());
    }

    #[test]
    fn reports_missing_and_bad_values() {
        let c = Config::parse("popn_size = lots\n", Path::new(".")).unwrap();
        assert!(c.required("top").is_err());
        assert!(c.num_or("popn_size", 1usize).is_err());
    }

    #[test]
    fn overrides_apply() {
        let mut c = Config::parse("top = a\n", Path::new(".")).unwrap();
        c.set("top", "b");
        assert_eq!(c.required("top").unwrap(), "b");
    }
}
