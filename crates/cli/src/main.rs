#![warn(missing_docs)]

//! `cirfix` — command-line automated repair for Verilog designs.
//!
//! The equivalent of the paper artifact's `repair.py` driven by
//! `repair.conf` (§A.4–A.5):
//!
//! ```text
//! cirfix repair <repair.conf> [--key value ...]   search for a repair
//! cirfix simulate <repair.conf>                   run the instrumented testbench
//! cirfix fitness <repair.conf>                    score the faulty design
//! cirfix localize <repair.conf>                   print the fault-localization set
//! cirfix verify <repair.conf>                     check a repaired design against
//!                                                 the golden one on a held-out bench
//! cirfix lint <design.v|repair.conf> [--json]     run the static-analysis passes
//! cirfix store <ls|verify|gc> <store-dir>         inspect or maintain a store
//! cirfix mine <store-dir|corpus.jsonl> [--out FILE] [--jobs N] [--json]
//!                                                 learn fix patterns from the repair corpus
//! cirfix report <trace.jsonl|store-dir> [--session NAME] [--json]
//!                                                 fold a trace or session into a run report
//! cirfix watch <trace.jsonl> [--interval-ms N] [--once]
//!                                                 live-tail a growing trace's heartbeats
//! cirfix fuzz [--seed N] [--budget N] [--jobs N] [--out FILE] [--store DIR]
//!                                                 fuzz the frontend with transplanted
//!                                                 defects and mutated sources
//! cirfix fuzz replay <store-dir|crashes.jsonl>    replay the crash regression corpus
//! cirfix fuzz gen --out DIR [--count N] [--classify]
//!                                                 emit a generated scenario tranche
//! ```
//!
//! Repair as a service (see `crates/serve`):
//!
//! ```text
//! cirfix serve <store-dir> [--socket PATH|tcp:ADDR] [--max-active N]
//!              [--max-queue N] [--max-evals-per-job N]
//!              [--max-seconds-per-job N] [--trace-out PATH]
//!              [--gc-interval-s N]                run the repair daemon
//! cirfix submit <repair.conf> [--socket ADDR] [--key value ...]
//!                                                 queue a repair job
//! cirfix status [JOB] [--socket ADDR]             list jobs (or one)
//! cirfix watch <JOB> --socket ADDR [--once]       stream a job's heartbeats
//! cirfix cancel <JOB> [--socket ADDR]             stop a job (resumably)
//! cirfix shutdown [--socket ADDR]                 drain and stop the daemon
//! ```
//!
//! Observability flags (for `repair` and `simulate`):
//!
//! ```text
//! --trace-out <path>   stream telemetry events as JSON lines to <path>
//! --trace-timing MODE  `wall` (default) records real durations; `off`
//!                      zeroes every duration/throughput field and drops
//!                      histograms, so traces are byte-identical across
//!                      `--jobs` values
//! --metrics            print an aggregate telemetry summary at the end
//! ```
//!
//! Search-space pruning flags (for `repair`):
//!
//! ```text
//! --static-filter      lint-gate mutants before simulation
//! --lint-prior         bias mutation targets toward lint findings
//! --mined-patterns F   load a `cirfix mine` patterns file: mined
//!                      templates join the repair catalog with
//!                      support-proportional weight, and the learned
//!                      mutation prior composes with --lint-prior
//! ```
//!
//! Parallel evaluation (for `repair`):
//!
//! ```text
//! --jobs N             fitness-evaluation worker threads; 0 (the
//!                      default) means auto — $CIRFIX_JOBS when set,
//!                      otherwise every available core. Results are
//!                      bit-identical for every value of N.
//! --batch-size N       candidates per parallel dispatch (default 32)
//! ```
//!
//! Fault containment (for `repair`):
//!
//! ```text
//! --eval-timeout S     per-candidate wall-clock budget in seconds
//!                      (fractions allowed); 0 (the default) = unbudgeted
//! --sim-step-limit N   cap on total simulator operations per candidate
//! --chaos SPEC         deterministic fault injection for chaos testing,
//!                      e.g. "panic@5,hang@7,storefail@2,transient"
//! ```
//!
//! Persistent store & resume (for `repair`):
//!
//! ```text
//! --store <dir>        write evaluations, session checkpoints, and
//!                      plausible repairs through to a persistent store
//! --resume             continue an interrupted session from its last
//!                      generation-boundary checkpoint, bit-identically
//! --halt-after N       stop right after checkpointing generation N
//!                      (a deterministic stand-in for kill -9)
//! --result-out <path>  write the canonical, timing-free result JSON
//!                      (used by the CI determinism checks)
//! ```
//!
//! See [`cirfix_serve::conf::Config`] for the recognized keys.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use cirfix::{
    apply_patch, evaluate, fault_localization, repair_session, repair_with_trials,
    result_to_canonical_json, FitnessParams, Observer, Patch, RepairStatus,
};
use cirfix_ast::print;
use cirfix_serve::conf::{self, Config, ConfigError};
use cirfix_serve::{Client, Request, ServeAddr, ServeOpts};
use cirfix_sim::{ProbeSpec, SimConfig};
use cirfix_store::{field, field_str};
use cirfix_telemetry::{
    FanoutSink, JsonLinesSink, JsonValue, SummarySink, TelemetrySink, TimingFreeSink,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cirfix: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> String {
    "usage: cirfix <repair|simulate|fitness|localize|verify> <config-file> [--key value ...]\n\
     \u{20}      cirfix lint <design.v|repair.conf> [--json]\n\
     \u{20}      cirfix store <ls|verify|gc> <store-dir>\n\
     \u{20}      cirfix mine <store-dir|corpus.jsonl> [--out FILE] [--jobs N] [--json]\n\
     \u{20}      cirfix report <trace.jsonl|store-dir> [--session NAME] [--json]\n\
     \u{20}      cirfix watch <trace.jsonl|JOB --socket ADDR> [--interval-ms N] [--once]\n\
     \u{20}      cirfix fuzz [--seed N] [--budget N] [--jobs N] [--out FILE] [--store DIR]\n\
     \u{20}      cirfix fuzz replay <store-dir|crashes.jsonl> [--jobs N]\n\
     \u{20}      cirfix fuzz gen --out DIR [--seed N] [--count N] [--classify] [--jobs N]\n\
     \u{20}      cirfix serve <store-dir> [--socket PATH|tcp:ADDR] [--max-active N] [--max-queue N]\n\
     \u{20}      cirfix submit <repair.conf> [--socket ADDR] [--key value ...]\n\
     \u{20}      cirfix status [JOB] [--socket ADDR]\n\
     \u{20}      cirfix cancel <JOB> [--socket ADDR]\n\
     \u{20}      cirfix shutdown [--socket ADDR]"
        .to_string()
}

fn run(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let (command, rest) = args.split_first().ok_or_else(usage)?;
    // `lint` takes a raw Verilog file (or a config), so it parses its
    // own arguments instead of going through config loading.
    if command == "lint" {
        return cmd_lint(rest);
    }
    // `store` operates on a store directory, not a repair config.
    if command == "store" {
        return cmd_store(rest);
    }
    // `mine` consumes a repair corpus (a store directory or a raw
    // corpus segment), not a repair config.
    if command == "mine" {
        return cmd_mine(rest);
    }
    // `report` and `watch` consume run artifacts (a trace file or a
    // store directory), not a repair config.
    if command == "report" {
        return cmd_report(rest);
    }
    if command == "watch" {
        return cmd_watch(rest);
    }
    // `fuzz` drives the robustness harness; it has its own sub-verbs
    // (run, replay, gen) and no repair config.
    if command == "fuzz" {
        return cmd_fuzz(rest);
    }
    // The service verbs talk to (or run) a daemon instead of loading a
    // repair config themselves.
    match command.as_str() {
        "serve" => return cmd_serve(rest),
        "submit" => return cmd_submit(rest),
        "status" => return cmd_status(rest),
        "cancel" => return cmd_cancel(rest),
        "shutdown" => return cmd_shutdown(rest),
        _ => {}
    }
    let (config_path, overrides) = rest.split_first().ok_or_else(usage)?;
    let mut config = Config::load(Path::new(config_path))?;
    conf::apply_overrides(&mut config, overrides)?;

    match command.as_str() {
        "repair" => cmd_repair(&config),
        "simulate" => cmd_simulate(&config),
        "fitness" => cmd_fitness(&config),
        "localize" => cmd_localize(&config),
        "verify" => cmd_verify(&config),
        other => Err(format!("unknown command `{other}`\n{}", usage()).into()),
    }
}

/// The observability destinations requested by `trace_out` / `metrics`.
struct Telemetry {
    observer: Observer,
    summary: Option<Arc<SummarySink>>,
}

fn build_telemetry(config: &Config) -> Result<Telemetry, Box<dyn std::error::Error>> {
    let mut sinks: Vec<Box<dyn TelemetrySink>> = Vec::new();
    if let Ok(path) = config.required("trace_out") {
        let sink = JsonLinesSink::create(Path::new(path))
            .map_err(|e| ConfigError(format!("cannot open {path}: {e}")))?;
        match config.string_or("trace_timing", "wall").as_str() {
            "wall" => sinks.push(Box::new(sink)),
            // Timing-free mode: zero every duration/throughput field
            // and drop histograms, so the trace bytes depend only on
            // the (deterministic) search, not the clock or `--jobs`.
            "off" => sinks.push(Box::new(TimingFreeSink::new(sink))),
            other => {
                return Err(ConfigError(format!(
                    "trace_timing must be `wall` or `off`, got `{other}`"
                ))
                .into())
            }
        }
    }
    let mut summary = None;
    if matches!(
        config.string_or("metrics", "false").as_str(),
        "true" | "1" | "yes"
    ) {
        let s = Arc::new(SummarySink::new());
        sinks.push(Box::new(Arc::clone(&s)));
        summary = Some(s);
    }
    let observer = if sinks.is_empty() {
        Observer::none()
    } else {
        Observer::new(Arc::new(FanoutSink::new(sinks)))
    };
    Ok(Telemetry { observer, summary })
}

fn cmd_repair(config: &Config) -> Result<(), Box<dyn std::error::Error>> {
    let problem = conf::build_problem(config)?;
    let mut rc = conf::repair_config(config)?;
    let telemetry = build_telemetry(config)?;
    rc.observer = telemetry.observer.clone();
    let trials = config.num_or("trials", 3u32)?;
    println!(
        "searching: popn={} gens={} trials={trials} evals<={} timeout={:?} jobs={}",
        rc.popn_size,
        rc.max_generations,
        rc.max_fitness_evals,
        rc.timeout,
        cirfix::resolve_jobs(rc.jobs)
    );
    let result = match config.required("store") {
        // Like `output` and `trace_out`, the store directory is a run
        // artifact: relative paths resolve against the cwd, not the
        // conf file's directory.
        Ok(dir) => {
            let dir = PathBuf::from(dir);
            let resume = matches!(
                config.string_or("resume", "false").as_str(),
                "true" | "1" | "yes"
            );
            repair_session(&problem, &rc, trials, &dir, resume)?
        }
        Err(_) => repair_with_trials(&problem, &rc, trials),
    };
    telemetry.observer.flush();
    println!(
        "plausible: {}  best fitness: {:.4}  evaluations: {}  wall: {:.1?}",
        result.is_plausible(),
        result.best_fitness,
        result.fitness_evals,
        result.wall_time
    );
    let t = &result.totals;
    println!("run totals:");
    println!("  trials           {:>12}", t.trials);
    println!("  generations      {:>12}", t.generations);
    println!("  fitness evals    {:>12}", t.fitness_evals);
    println!("  static rejects   {:>12}", t.mutants_rejected_static);
    println!("  cache hits       {:>12}", result.cache_hits);
    println!("  store hits       {:>12}", t.store_hits);
    println!("  store writes     {:>12}", t.store_writes);
    println!("  timeouts         {:>12}", t.timeouts);
    println!("  panics           {:>12}", t.panics);
    println!("  exhausted        {:>12}", t.exhausted);
    println!("  pattern hits     {:>12}", t.pattern_hits);
    println!("  corpus skips     {:>12}", t.corpus_skipped);
    println!("  minimize evals   {:>12}", result.minimize_evals);
    println!("  wall clock       {:>12.1?}", t.wall_time);
    println!("  eval workers     {:>12}", t.jobs);
    if t.jobs > 0 && !t.wall_time.is_zero() {
        // How much of the pool's theoretical capacity ran simulations.
        let capacity = t.wall_time.as_secs_f64() * f64::from(t.jobs);
        println!(
            "  worker busy      {:>11.0}%",
            100.0 * t.eval_busy.as_secs_f64() / capacity
        );
    }
    if let Some(summary) = &telemetry.summary {
        print!("{}", summary.report());
    }
    // Canonical, timing-free result JSON: two deterministically
    // equivalent runs (any `jobs`, killed-and-resumed or not) write
    // byte-identical files — the CI determinism checks diff them.
    if let Ok(path) = config.required("result_out") {
        let json = result_to_canonical_json(&result).to_json();
        std::fs::write(path, format!("{json}\n"))
            .map_err(|e| ConfigError(format!("cannot write {path}: {e}")))?;
        println!("canonical result written to {path}");
    }
    if result.status == RepairStatus::Interrupted {
        println!(
            "interrupted after generation {} — checkpoint saved; rerun with --resume to continue",
            result.generations
        );
        return Ok(());
    }
    if result.is_plausible() {
        println!(
            "\nrepair patch:\n{}",
            cirfix::explain::describe_patch(
                &problem.source,
                &problem.design_modules,
                &result.patch
            )
        );
        let (repaired, _) = apply_patch(&problem.source, &problem.design_modules, &result.patch);
        println!(
            "diff:\n{}",
            cirfix::explain::diff_designs(&problem.source, &repaired, &problem.design_modules)
        );
        let out_path = config.string_or("output", "repaired.v");
        let source = result
            .repaired_source
            .expect("plausible repairs have source");
        std::fs::write(&out_path, &source)
            .map_err(|e| ConfigError(format!("cannot write {out_path}: {e}")))?;
        println!("repaired design written to {out_path}");
        Ok(())
    } else {
        Err("no plausible repair found within the resource bounds".into())
    }
}

fn cmd_simulate(config: &Config) -> Result<(), Box<dyn std::error::Error>> {
    let problem = conf::build_problem(config)?;
    let (outcome, trace, log) =
        cirfix::simulate_with_probe(&problem.source, &problem.top, &problem.probe, &problem.sim)?;
    println!(
        "finished={} end_time={} ops={}",
        outcome.finished, outcome.end_time, outcome.total_ops
    );
    let telemetry = build_telemetry(config)?;
    if telemetry.observer.enabled() {
        let m = &outcome.metrics;
        telemetry
            .observer
            .record(&cirfix_telemetry::Event::Sim(cirfix_telemetry::SimStats {
                active_events: m.active_events,
                inactive_events: m.inactive_events,
                nba_flushes: m.nba_flushes,
                timesteps: m.timesteps,
                process_resumptions: m.process_resumptions,
                peak_queue_depth: m.peak_queue_depth,
            }));
        telemetry.observer.flush();
    }
    if let Some(summary) = &telemetry.summary {
        eprint!("{}", summary.report());
    }
    print!("{}", trace.to_csv());
    for line in log {
        eprintln!("$display: {line}");
    }
    if let Ok(vcd_path) = config.required("vcd") {
        let vcd = cirfix_sim::vcd::trace_to_vcd(&trace, &problem.top, "1ns");
        std::fs::write(vcd_path, vcd)
            .map_err(|e| ConfigError(format!("cannot write {vcd_path}: {e}")))?;
        eprintln!("waveform written to {vcd_path}");
    }
    Ok(())
}

fn cmd_fitness(config: &Config) -> Result<(), Box<dyn std::error::Error>> {
    let problem = conf::build_problem(config)?;
    let phi = config.num_or("phi", 2.0f64)?;
    let eval = evaluate(&problem, &Patch::empty(), FitnessParams { phi });
    println!("fitness: {:.6}", eval.score);
    println!("mismatched variables: {:?}", eval.mismatched);
    if let Some(report) = eval.report {
        println!(
            "bits compared: {}  matched: {}",
            report.bits_compared, report.bits_matched
        );
    }
    if let Some(err) = eval.error {
        println!("simulation error: {err}");
    }
    Ok(())
}

fn cmd_localize(config: &Config) -> Result<(), Box<dyn std::error::Error>> {
    let problem = conf::build_problem(config)?;
    let eval = evaluate(&problem, &Patch::empty(), FitnessParams::default());
    println!("mismatch seed: {:?}", eval.mismatched);
    let modules: Vec<&cirfix_ast::Module> = problem
        .source
        .modules
        .iter()
        .filter(|m| problem.design_modules.contains(&m.name))
        .collect();
    let fl = fault_localization(&modules, &eval.mismatched);
    println!("final mismatch set: {:?}", fl.mismatch);
    println!("implicated nodes: {}", fl.nodes.len());
    for m in &modules {
        for stmt in cirfix_ast::visit::stmts_of_module(m) {
            if fl.nodes.contains(&stmt.id()) && (stmt.is_assignment() || stmt.is_conditional()) {
                let text = print::stmt_to_string(stmt);
                let first = text.lines().next().unwrap_or("");
                println!("  [{}] {first}", stmt.id());
            }
        }
    }
    Ok(())
}

/// `cirfix lint`: run the static-analysis passes over a design and print
/// the findings, one per line. Accepts either a raw Verilog file (all
/// modules are linted) or a `repair.conf` (the `design` file is linted,
/// restricted to `design_modules`). With `--json` each finding is
/// emitted as a telemetry JSON line instead of human-readable text.
///
/// The exit code is 0 even when findings are reported — lint is a
/// reporting tool, not a gate; the gate lives in the repair loop's
/// static filter.
fn cmd_lint(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let lint_usage = "usage: cirfix lint <design.v|repair.conf> [--json]";
    let (input, flags) = args.split_first().ok_or(lint_usage)?;
    let mut json = false;
    for flag in flags {
        match flag.as_str() {
            "--json" => json = true,
            other => return Err(format!("unknown lint flag `{other}`\n{lint_usage}").into()),
        }
    }

    let path = Path::new(input);
    let read = |p: &Path| -> Result<String, Box<dyn std::error::Error>> {
        Ok(std::fs::read_to_string(p)
            .map_err(|e| ConfigError(format!("cannot read {}: {e}", p.display())))?)
    };
    let is_conf = path.extension().is_some_and(|e| e == "conf");
    let (source_path, modules) = if is_conf {
        let config = Config::load(path)?;
        (config.path("design")?, Some(config.list("design_modules")?))
    } else {
        (PathBuf::from(input), None)
    };
    let file = cirfix_parser::parse(&read(&source_path)?)?;
    let findings = match &modules {
        Some(names) => cirfix_lint::lint_modules(&file, names),
        None => cirfix_lint::lint_file(&file),
    };

    let (mut errors, mut warnings) = (0usize, 0usize);
    for (module, diag) in &findings {
        match diag.severity {
            cirfix_lint::Severity::Error => errors += 1,
            cirfix_lint::Severity::Warning => warnings += 1,
        }
        if json {
            println!("{}", cirfix_lint::diagnostic_event(module, diag).to_json());
        } else {
            println!("{}: {}", source_path.display(), diag.render(module));
        }
    }
    if !json {
        println!("{errors} error(s), {warnings} warning(s)");
    }
    Ok(())
}

/// `cirfix store`: inspect or maintain a persistent store directory.
///
/// ```text
/// cirfix store ls <dir>      summarize evaluations, sessions, and corpus
/// cirfix store verify <dir>  check every segment; exit non-zero on damage
/// cirfix store gc <dir>      compact segments, reap completed sessions
/// ```
///
/// `verify` is strictly read-only — it reports corrupt and torn records
/// without repairing them, so it can be run while a repair is live.
/// `gc` is the repairing counterpart.
fn cmd_store(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let store_usage = "usage: cirfix store <ls|verify|gc> <store-dir>";
    let (action, rest) = args.split_first().ok_or(store_usage)?;
    let (dir, extra) = rest.split_first().ok_or(store_usage)?;
    if !extra.is_empty() {
        return Err(format!("unexpected argument `{}`\n{store_usage}", extra[0]).into());
    }
    let store = cirfix_store::Store::open(Path::new(dir))?;
    match action.as_str() {
        "ls" => {
            let (evals, health) = store.load_evals()?;
            println!("store: {}", store.dir().display());
            println!("  evaluations      {:>12}", evals.len());
            let sessions: Vec<PathBuf> = store
                .all_segments()?
                .into_iter()
                .filter(|p| p.parent().is_some_and(|d| d.ends_with("sessions")))
                .collect();
            println!("  session logs     {:>12}", sessions.len());
            for path in &sessions {
                let name = path.file_stem().and_then(|s| s.to_str()).unwrap_or("?");
                let (records, seg) = store.load_session(name)?;
                let complete = records
                    .last()
                    .is_some_and(|r| cirfix_store::field_str(r, "type") == Some("complete"));
                println!(
                    "    {name}  records={} {}",
                    seg.records,
                    if complete { "complete" } else { "resumable" }
                );
            }
            let (corpus, _) = store.load_corpus()?;
            println!("  corpus repairs   {:>12}", corpus.len());
            let (patterns, _) = store.load_patterns()?;
            println!("  mined patterns   {:>12}", patterns.len());
            if !health.is_clean() {
                println!(
                    "  damage: {} corrupt record(s), {} torn tail(s) — run `cirfix store verify`",
                    health.corrupt, health.torn
                );
            }
            Ok(())
        }
        "verify" => {
            let report = store.verify()?;
            for file in &report.files {
                let status = if file.corrupt.is_empty() && !file.torn {
                    "ok".to_string()
                } else {
                    format!(
                        "{} corrupt{}",
                        file.corrupt.len(),
                        if file.torn { ", torn tail" } else { "" }
                    )
                };
                println!(
                    "{:<40} {:>8} bytes {:>6} records  {status}",
                    file.name, file.bytes, file.records
                );
                for (line, reason) in &file.corrupt {
                    println!("  line {line}: {reason}");
                }
            }
            if report.is_clean() {
                println!(
                    "clean: {} record(s) across {} file(s)",
                    report.records(),
                    report.files.len()
                );
                Ok(())
            } else {
                Err(format!(
                    "damage found: {} corrupt record(s), {} torn file(s) — `cirfix store gc` will drop them",
                    report.corrupt(),
                    report.torn()
                )
                .into())
            }
        }
        "gc" => {
            let report = store.gc()?;
            println!("gc: {}", store.dir().display());
            println!("  files removed    {:>12}", report.files_removed);
            println!("  records kept     {:>12}", report.records_kept);
            println!("  records dropped  {:>12}", report.records_dropped);
            println!("  bytes reclaimed  {:>12}", report.bytes_reclaimed);
            Ok(())
        }
        other => Err(format!("unknown store action `{other}`\n{store_usage}").into()),
    }
}

/// `cirfix mine`: replay the repair corpus into faulty/repaired edit
/// scripts, cluster them into ranked fix patterns, and persist them as
/// a checksummed patterns file.
///
/// ```text
/// cirfix mine <store-dir>        mine corpus/corpus.jsonl, write patterns/patterns.jsonl
/// cirfix mine <corpus.jsonl>     mine a raw corpus segment (requires --out)
/// cirfix mine ... --out FILE     write the patterns file elsewhere
/// cirfix mine ... --jobs N       replay records on N threads (0 = auto)
/// cirfix mine ... --json         machine-readable summary line
/// ```
///
/// Mining is deterministic: the same corpus bytes produce the same
/// patterns file bytes for every `--jobs` value. The output feeds back
/// into the search via `cirfix repair ... --mined-patterns FILE`.
fn cmd_mine(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mine_usage = "usage: cirfix mine <store-dir|corpus.jsonl> [--out FILE] [--jobs N] [--json]";
    let (input, flags) = args.split_first().ok_or(mine_usage)?;
    let mut out: Option<PathBuf> = None;
    let mut jobs = 0usize;
    let mut json = false;
    let mut i = 0;
    while i < flags.len() {
        match flags[i].as_str() {
            "--json" => {
                json = true;
                i += 1;
            }
            "--out" => {
                let value = flags.get(i + 1).ok_or("--out needs a value")?;
                out = Some(PathBuf::from(value));
                i += 2;
            }
            "--jobs" => {
                let value = flags.get(i + 1).ok_or("--jobs needs a value")?;
                jobs = value
                    .parse()
                    .map_err(|_| format!("--jobs needs a number, got `{value}`"))?;
                i += 2;
            }
            other => return Err(format!("unknown flag `{other}`\n{mine_usage}").into()),
        }
    }
    let path = Path::new(input);
    let (records, health, out_path) = if path.is_dir() {
        let store = cirfix_store::Store::open(path)?;
        let (records, health) = store.load_corpus()?;
        (
            records,
            health,
            out.unwrap_or_else(|| store.patterns_path()),
        )
    } else {
        let (records, health) = cirfix_store::read_segment(path)?;
        let out = out.ok_or("mining a raw corpus file requires --out FILE")?;
        (records, health, out)
    };
    if !health.is_clean() {
        eprintln!(
            "warning: corpus damage: {} corrupt record(s){} — damaged records skipped",
            health.corrupt.len(),
            if health.torn_tail.is_some() {
                ", torn tail"
            } else {
                ""
            }
        );
    }
    let report = cirfix_mine::mine_corpus(&records, cirfix::resolve_jobs(jobs));
    if let Some(parent) = out_path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
    }
    cirfix_mine::write_patterns_file(&out_path, &report.patterns)
        .map_err(|e| format!("cannot write {}: {e}", out_path.display()))?;
    if json {
        println!("{}", cirfix_mine::report_to_json(&report).to_json());
        return Ok(());
    }
    println!(
        "mined {} pattern(s) from {} corpus record(s): {} script(s), skipped {} missing-source, {} unparseable, {} empty-diff",
        report.patterns.len(),
        report.records,
        report.scripts,
        report.skipped_missing,
        report.skipped_parse,
        report.skipped_empty
    );
    for p in &report.patterns {
        let step = &p.steps[0];
        let more = if p.steps.len() > 1 {
            format!(" (+{} more step(s))", p.steps.len() - 1)
        } else {
            String::new()
        };
        println!(
            "  support {:>4}  {} {}@{}: {} -> {}{more}",
            p.support,
            step.action.as_str(),
            step.node_kind,
            step.parent_kind,
            step.before,
            step.after
        );
    }
    println!("patterns written to {}", out_path.display());
    Ok(())
}

/// `cirfix report`: fold a JSON-lines telemetry trace, or a persisted
/// session log from a store directory, into one run report.
///
/// ```text
/// cirfix report <trace.jsonl>                     fold a trace file
/// cirfix report <store-dir> [--session NAME]      fold a session log
/// cirfix report ... --json                        machine-readable output
/// ```
///
/// With a store directory and no `--session`, a single session is
/// picked automatically; multiple sessions are an error listing the
/// candidates. Folding is deterministic: the same input bytes always
/// produce the same report bytes.
fn cmd_report(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let report_usage = "usage: cirfix report <trace.jsonl|store-dir> [--session NAME] [--json]";
    let (input, flags) = args.split_first().ok_or(report_usage)?;
    let mut json = false;
    let mut session: Option<String> = None;
    let mut i = 0;
    while i < flags.len() {
        match flags[i].as_str() {
            "--json" => {
                json = true;
                i += 1;
            }
            "--session" => {
                let name = flags
                    .get(i + 1)
                    .ok_or_else(|| format!("--session needs a value\n{report_usage}"))?;
                session = Some(name.clone());
                i += 2;
            }
            other => return Err(format!("unknown report flag `{other}`\n{report_usage}").into()),
        }
    }

    let path = Path::new(input);
    let report = if path.is_dir() {
        let store = cirfix_store::Store::open(path)?;
        let name = match session {
            Some(name) => name,
            None => {
                let mut names: Vec<String> = store
                    .all_segments()?
                    .into_iter()
                    .filter(|p| p.parent().is_some_and(|d| d.ends_with("sessions")))
                    .filter_map(|p| p.file_stem().and_then(|s| s.to_str()).map(str::to_string))
                    .collect();
                names.sort();
                match names.len() {
                    0 => return Err("store has no session logs".into()),
                    1 => names.remove(0),
                    _ => {
                        return Err(format!(
                            "store has {} sessions; pick one with --session <name>:\n  {}",
                            names.len(),
                            names.join("\n  ")
                        )
                        .into())
                    }
                }
            }
        };
        let (records, health) = store.load_session(&name)?;
        if records.is_empty() {
            return Err(format!("session `{name}` has no records").into());
        }
        if !health.is_clean() {
            eprintln!(
                "warning: session `{name}` has damage ({} corrupt record(s), torn tail: {}); reporting on the clean records",
                health.corrupt.len(),
                health.torn_tail.is_some()
            );
        }
        cirfix::RunReport::from_session(&records)
    } else {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ConfigError(format!("cannot read {}: {e}", path.display())))?;
        cirfix::RunReport::from_trace(&text)?
    };
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render());
    }
    Ok(())
}

/// `cirfix watch`: live viewer for search heartbeats. With a trace
/// file, tails the file, redraws the latest heartbeat snapshot as it
/// arrives, and exits when the run's terminal heartbeat (status other
/// than `"search"`) appears. With `--socket`, the positional argument
/// is a daemon job id and heartbeats stream over the socket instead.
///
/// ```text
/// cirfix watch <trace.jsonl> [--interval-ms N] [--once]
/// cirfix watch <JOB> --socket ADDR [--once]
/// ```
///
/// `--once` processes whatever is available right now and exits —
/// usable in scripts and CI. Only complete lines are consumed; a
/// half-written trailing line is left for the next poll.
fn cmd_watch(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use std::io::{IsTerminal, Read, Seek, SeekFrom};

    let watch_usage = "usage: cirfix watch <trace.jsonl> [--interval-ms N] [--once]\n\
         \u{20}      cirfix watch <JOB> --socket ADDR [--once]";
    let (input, flags) = args.split_first().ok_or(watch_usage)?;
    let mut once = false;
    let mut interval = Duration::from_millis(500);
    let mut socket: Option<String> = None;
    let mut i = 0;
    while i < flags.len() {
        match flags[i].as_str() {
            "--once" => {
                once = true;
                i += 1;
            }
            "--interval-ms" => {
                let ms: u64 = flags
                    .get(i + 1)
                    .ok_or_else(|| format!("--interval-ms needs a value\n{watch_usage}"))?
                    .parse()
                    .map_err(|e| format!("bad --interval-ms: {e}"))?;
                interval = Duration::from_millis(ms.max(1));
                i += 2;
            }
            "--socket" => {
                let addr = flags
                    .get(i + 1)
                    .ok_or_else(|| format!("--socket needs a value\n{watch_usage}"))?;
                socket = Some(addr.clone());
                i += 2;
            }
            other => return Err(format!("unknown watch flag `{other}`\n{watch_usage}").into()),
        }
    }
    if let Some(addr) = socket {
        return watch_socket(input, once, &ServeAddr::parse(&addr));
    }

    let path = Path::new(input);
    let clear_screen = std::io::stdout().is_terminal();
    let mut offset: u64 = 0;
    let mut pending = String::new();
    let mut heartbeats: u64 = 0;
    let mut malformed: u64 = 0;
    loop {
        // The file may not exist yet (the run is still starting) and
        // may be truncated and rewritten (a fresh run on the same
        // path); both just reset the tail position.
        match std::fs::File::open(path) {
            Ok(mut f) => {
                let len = f.metadata()?.len();
                if len < offset {
                    offset = 0;
                    pending.clear();
                }
                if len > offset {
                    f.seek(SeekFrom::Start(offset))?;
                    let mut bytes = Vec::with_capacity((len - offset) as usize);
                    f.take(len - offset).read_to_end(&mut bytes)?;
                    offset = len;
                    pending.push_str(&String::from_utf8_lossy(&bytes));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                if once {
                    return Err(format!("cannot read {}: {e}", path.display()).into());
                }
            }
            Err(e) => return Err(format!("cannot read {}: {e}", path.display()).into()),
        }
        // Consume complete lines; keep a half-written tail for later.
        let mut terminal_status = None;
        while let Some(nl) = pending.find('\n') {
            let line: String = pending.drain(..=nl).collect();
            // Truncated or garbage lines are counted and skipped, never
            // fatal — a live trace can legitimately carry a torn tail.
            if !line.trim().is_empty() && cirfix_store::parse_json(line.trim()).is_err() {
                malformed += 1;
                continue;
            }
            if let Some(h) = cirfix::report::heartbeat_line(&line) {
                heartbeats += 1;
                if clear_screen {
                    print!("\x1b[2J\x1b[H");
                }
                let skipped = if malformed > 0 {
                    format!(", {malformed} malformed line(s) skipped")
                } else {
                    String::new()
                };
                println!(
                    "watching {} (heartbeat {heartbeats}{skipped})",
                    path.display()
                );
                println!("{}", cirfix::report::render_heartbeat(&h, "  "));
                if h.status != "search" {
                    terminal_status = Some(h.status);
                }
            }
        }
        if let Some(status) = terminal_status {
            println!("run {status}");
            return Ok(());
        }
        if once {
            if heartbeats == 0 {
                println!("no heartbeat in {} yet", path.display());
            }
            return Ok(());
        }
        std::thread::sleep(interval);
    }
}

/// The fuzz verbs:
///
/// ```text
/// cirfix fuzz [--seed N] [--budget N] [--jobs N] [--out FILE]
///             [--store DIR] [--no-differential] [--no-shrink] [--json]
/// cirfix fuzz replay <store-dir|crashes.jsonl> [--jobs N]
/// cirfix fuzz gen --out DIR [--seed N] [--count N] [--per-project N]
///                 [--classify] [--jobs N]
/// ```
///
/// A run exits non-zero when it surfaces findings (so CI smoke jobs
/// fail loudly); `replay` exits non-zero when a supposedly fixed
/// corpus record reproduces. Findings are shrunk and, with `--store`,
/// appended to the store's `crashes/` family.
fn cmd_fuzz(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let fuzz_usage =
        "usage: cirfix fuzz [--seed N] [--budget N] [--jobs N] [--out FILE] [--store DIR]\n\
         \u{20}      cirfix fuzz replay <store-dir|crashes.jsonl> [--jobs N]\n\
         \u{20}      cirfix fuzz gen --out DIR [--seed N] [--count N] [--classify] [--jobs N]";
    match args.first().map(String::as_str) {
        Some("replay") => return cmd_fuzz_replay(&args[1..], fuzz_usage),
        Some("gen") => return cmd_fuzz_gen(&args[1..], fuzz_usage),
        _ => {}
    }

    let mut config = cirfix_fuzz::FuzzConfig::default();
    let mut out: Option<PathBuf> = None;
    let mut store: Option<PathBuf> = None;
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                config.seed = parse_flag_u64(args.get(i + 1), "--seed")?;
                i += 2;
            }
            "--budget" => {
                config.budget = parse_flag_u64(args.get(i + 1), "--budget")? as usize;
                i += 2;
            }
            "--jobs" => {
                config.jobs = parse_flag_u64(args.get(i + 1), "--jobs")? as usize;
                i += 2;
            }
            "--out" => {
                out = Some(PathBuf::from(args.get(i + 1).ok_or("--out needs a value")?));
                i += 2;
            }
            "--store" => {
                store = Some(PathBuf::from(
                    args.get(i + 1).ok_or("--store needs a value")?,
                ));
                i += 2;
            }
            "--no-differential" => {
                config.differential = false;
                i += 1;
            }
            "--no-shrink" => {
                config.shrink = false;
                i += 1;
            }
            "--json" => {
                json = true;
                i += 1;
            }
            other => return Err(format!("unknown flag `{other}`\n{fuzz_usage}").into()),
        }
    }

    // The harness contains every panic; the default hook would still
    // spray a backtrace per caught panic, drowning the report.
    std::panic::set_hook(Box::new(|_| {}));
    let report = cirfix_fuzz::run_fuzz(&config);
    let _ = std::panic::take_hook();

    let manifest = report.manifest_json();
    if let Some(path) = &out {
        std::fs::write(path, format!("{manifest}\n"))?;
    }
    if let Some(dir) = &store {
        let store = cirfix_store::Store::open(dir)?;
        for finding in &report.findings {
            store.append_crash(&finding.to_json())?;
        }
    }
    if json {
        println!("{manifest}");
    } else {
        println!("fuzz: seed {} budget {}", report.seed, report.stats.inputs);
        println!("  generated scenarios {:>8}", report.stats.generated);
        println!("  parse errors        {:>8}", report.stats.parse_errors);
        println!("  simulated ok        {:>8}", report.stats.sim_ok);
        println!("  sim errors          {:>8}", report.stats.sim_errors);
        println!("  findings            {:>8}", report.findings.len());
        for finding in &report.findings {
            println!(
                "    [{}] {} — {}",
                finding.class, finding.id, finding.detail
            );
        }
    }
    if report.findings.is_empty() {
        Ok(())
    } else {
        Err(format!("{} finding(s) — see report above", report.findings.len()).into())
    }
}

/// `cirfix fuzz replay`: re-drive the shrunk crash corpus through the
/// full differential harness; every record must now be handled
/// cleanly.
fn cmd_fuzz_replay(args: &[String], fuzz_usage: &str) -> Result<(), Box<dyn std::error::Error>> {
    let (input, flags) = args.split_first().ok_or(fuzz_usage.to_string())?;
    let mut jobs = 0usize;
    let mut i = 0;
    while i < flags.len() {
        match flags[i].as_str() {
            "--jobs" => {
                jobs = parse_flag_u64(flags.get(i + 1), "--jobs")? as usize;
                i += 2;
            }
            other => return Err(format!("unknown flag `{other}`\n{fuzz_usage}").into()),
        }
    }
    let path = Path::new(input);
    let records = if path.is_dir() {
        let store = cirfix_store::Store::open(path)?;
        cirfix_fuzz::load_store_corpus(&store)?
    } else {
        let (bodies, health) = cirfix_store::read_segment(path)?;
        if !health.is_clean() {
            eprintln!(
                "warning: corpus damage: {} corrupt record(s) skipped",
                health.corrupt.len() + usize::from(health.torn_tail.is_some())
            );
        }
        bodies
            .iter()
            .filter_map(cirfix_fuzz::CrashRecord::from_json)
            .collect()
    };
    std::panic::set_hook(Box::new(|_| {}));
    let report = cirfix_fuzz::replay(&records, jobs);
    let _ = std::panic::take_hook();
    println!("replayed {} corpus record(s)", report.replayed);
    if report.is_clean() {
        println!("clean: no record reproduced a finding");
        Ok(())
    } else {
        for (id, class) in &report.regressions {
            println!("  REGRESSION [{class}] {id}");
        }
        Err(format!("{} corpus regression(s)", report.regressions.len()).into())
    }
}

/// `cirfix fuzz gen`: emit a tranche of generated defect scenarios as
/// `.v` files plus a JSON manifest (consumed by the benchmark
/// registry's generated-scenario surface).
fn cmd_fuzz_gen(args: &[String], fuzz_usage: &str) -> Result<(), Box<dyn std::error::Error>> {
    let mut gen = cirfix_fuzz::GenConfig::default();
    let mut out: Option<PathBuf> = None;
    let mut count = 16usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                out = Some(PathBuf::from(args.get(i + 1).ok_or("--out needs a value")?));
                i += 2;
            }
            "--seed" => {
                gen.seed = parse_flag_u64(args.get(i + 1), "--seed")?;
                i += 2;
            }
            "--count" => {
                count = parse_flag_u64(args.get(i + 1), "--count")? as usize;
                i += 2;
            }
            "--per-project" => {
                gen.max_per_project = parse_flag_u64(args.get(i + 1), "--per-project")? as usize;
                i += 2;
            }
            "--classify" => {
                gen.classify = true;
                i += 1;
            }
            "--jobs" => {
                gen.jobs = parse_flag_u64(args.get(i + 1), "--jobs")? as usize;
                i += 2;
            }
            other => return Err(format!("unknown flag `{other}`\n{fuzz_usage}").into()),
        }
    }
    let out = out.ok_or("fuzz gen requires --out DIR")?;
    std::fs::create_dir_all(&out)?;
    let scenarios = cirfix_fuzz::generate_scenarios(&gen);
    let mut entries = Vec::new();
    for s in scenarios.iter().take(count) {
        let fp = s.fingerprint.to_hex();
        let class = s
            .difficulty
            .map_or("unclassified", cirfix_fuzz::Difficulty::label);
        let file = format!("{}-{}-{}.v", s.project, &fp[..12], class);
        std::fs::write(out.join(&file), &s.source)?;
        entries.push(JsonValue::obj(vec![
            ("project", JsonValue::Str(s.project.to_string())),
            ("file", JsonValue::Str(file)),
            ("fingerprint", JsonValue::Str(fp)),
            ("class", JsonValue::Str(class.to_string())),
            ("score", JsonValue::Float(s.score)),
        ]));
    }
    let written = entries.len();
    let manifest = JsonValue::obj(vec![
        ("seed", JsonValue::Uint(gen.seed)),
        ("scenarios", JsonValue::Array(entries)),
    ]);
    std::fs::write(
        out.join("manifest.json"),
        format!("{}\n", manifest.to_json()),
    )?;
    println!(
        "wrote {} scenario(s) + manifest.json to {}",
        written,
        out.display()
    );
    Ok(())
}

/// Parses a numeric flag value with a consistent error message.
fn parse_flag_u64(value: Option<&String>, flag: &str) -> Result<u64, String> {
    let value = value.ok_or_else(|| format!("{flag} needs a value"))?;
    value
        .parse()
        .map_err(|_| format!("{flag} needs a number, got `{value}`"))
}

/// Streams a daemon job's heartbeats over the socket, rendering each
/// snapshot like the file-based watch.
fn watch_socket(job: &str, once: bool, addr: &ServeAddr) -> Result<(), Box<dyn std::error::Error>> {
    use std::io::IsTerminal;

    let mut client =
        Client::connect(addr).map_err(|e| format!("cannot connect to daemon at {addr}: {e}"))?;
    let clear_screen = std::io::stdout().is_terminal();
    let mut heartbeats: u64 = 0;
    let last = client.watch(job, once, |line| {
        let state = field_str(line, "state").unwrap_or("?").to_string();
        let heartbeat = field(line, "event")
            .filter(|e| !matches!(e, JsonValue::Null))
            .and_then(|e| cirfix::report::heartbeat_line(&e.to_json()));
        if let Some(h) = heartbeat {
            heartbeats += 1;
            if clear_screen {
                print!("\x1b[2J\x1b[H");
            }
            println!("watching job {job} at {addr} (heartbeat {heartbeats}, state {state})");
            println!("{}", cirfix::report::render_heartbeat(&h, "  "));
        }
    })?;
    if !cirfix_serve::client::response_ok(&last) {
        return Err(cirfix_serve::client::response_error(&last).into());
    }
    if heartbeats == 0 {
        println!("no heartbeat from job {job} yet");
    }
    if matches!(field(&last, "done"), Some(JsonValue::Bool(true))) {
        let state = field_str(&last, "state").unwrap_or("?");
        println!("job {state}");
    }
    Ok(())
}

/// Shared flag parsing for the client verbs: pulls out `--socket ADDR`
/// (default `cirfix.sock` in the current directory) and returns the
/// remaining arguments untouched.
fn split_socket(args: &[String]) -> Result<(ServeAddr, Vec<String>), Box<dyn std::error::Error>> {
    let mut addr = ServeAddr::Unix(PathBuf::from("cirfix.sock"));
    let mut rest = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--socket" {
            let value = args.get(i + 1).ok_or("--socket needs a value")?;
            addr = ServeAddr::parse(value);
            i += 2;
        } else {
            rest.push(args[i].clone());
            i += 1;
        }
    }
    Ok((addr, rest))
}

/// Prints a job line from a response's fields. Submit/cancel replies
/// carry the id under `job`; full records (status listings) under `id`.
fn print_job_line(line: &JsonValue) {
    let job = field_str(line, "job")
        .or_else(|| field_str(line, "id"))
        .unwrap_or("?");
    let state = field_str(line, "state").unwrap_or("?");
    let detail = field_str(line, "detail").unwrap_or("");
    if detail.is_empty() {
        println!("{job}  {state}");
    } else {
        println!("{job}  {state}  {detail}");
    }
}

/// `cirfix serve`: run the repair daemon over a store directory.
///
/// Blocks until a client sends `shutdown` (or the process is killed —
/// the store's job registry makes that safe: the next daemon over the
/// same store resumes every in-flight job from its checkpoint).
fn cmd_serve(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let serve_usage = "usage: cirfix serve <store-dir> [--socket PATH|tcp:ADDR] [--max-active N] \
                       [--max-queue N] [--max-evals-per-job N] [--max-seconds-per-job N] \
                       [--trace-out PATH] [--gc-interval-s N]";
    let (store_dir, flags) = args.split_first().ok_or(serve_usage)?;
    let (addr, flags) = split_socket(flags)?;
    let mut opts = ServeOpts::new(store_dir);
    let mut i = 0;
    while i < flags.len() {
        let value = |i: usize| -> Result<&String, Box<dyn std::error::Error>> {
            flags
                .get(i + 1)
                .ok_or_else(|| format!("{} needs a value\n{serve_usage}", flags[i]).into())
        };
        match flags[i].as_str() {
            "--max-active" => opts.max_active = value(i)?.parse()?,
            "--max-queue" => opts.max_queue = value(i)?.parse()?,
            "--max-evals-per-job" => opts.max_evals_per_job = Some(value(i)?.parse()?),
            "--max-seconds-per-job" => opts.max_seconds_per_job = Some(value(i)?.parse()?),
            "--trace-out" => opts.trace_out = Some(PathBuf::from(value(i)?)),
            "--gc-interval-s" => {
                opts.gc_interval = Some(Duration::from_secs(value(i)?.parse()?));
            }
            other => return Err(format!("unknown serve flag `{other}`\n{serve_usage}").into()),
        }
        i += 2;
    }
    println!(
        "cirfix daemon: store {} socket {addr} (max {} active, {} queued)",
        store_dir, opts.max_active, opts.max_queue
    );
    cirfix_serve::serve(&addr, opts)?;
    println!("daemon stopped");
    Ok(())
}

/// `cirfix submit`: queue a repair job on a running daemon. Config
/// overrides after the conf path are forwarded verbatim, so a daemon
/// job is specified exactly like a `cirfix repair` invocation.
fn cmd_submit(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let submit_usage = "usage: cirfix submit <repair.conf> [--socket ADDR] [--key value ...]";
    let (conf_path, flags) = args.split_first().ok_or(submit_usage)?;
    let (addr, flags) = split_socket(flags)?;
    // Same `--key value` grammar as `cirfix repair`, forwarded as
    // `(key, value)` pairs for the daemon to apply.
    let mut overrides: Vec<(String, String)> = Vec::new();
    let mut i = 0;
    while i < flags.len() {
        let key = flags[i]
            .strip_prefix("--")
            .ok_or_else(|| ConfigError(format!("expected --key, got `{}`", flags[i])))?;
        let key = key.replace('-', "_");
        if conf::BOOL_FLAGS.contains(&key.as_str()) {
            overrides.push((key, "true".to_string()));
            i += 1;
            continue;
        }
        let value = flags
            .get(i + 1)
            .ok_or_else(|| ConfigError(format!("--{key} needs a value")))?;
        overrides.push((key, value.clone()));
        i += 2;
    }
    // The daemon resolves the conf relative to its own cwd; send an
    // absolute path so submissions work from anywhere.
    let conf_abs =
        std::fs::canonicalize(conf_path).map_err(|e| format!("cannot resolve {conf_path}: {e}"))?;
    let mut client =
        Client::connect(&addr).map_err(|e| format!("cannot connect to daemon at {addr}: {e}"))?;
    let line = client.request(&Request::Submit {
        conf: conf_abs.display().to_string(),
        overrides,
    })?;
    if !cirfix_serve::client::response_ok(&line) {
        return Err(cirfix_serve::client::response_error(&line).into());
    }
    print_job_line(&line);
    Ok(())
}

/// `cirfix status`: list the daemon's jobs (or one, by id).
fn cmd_status(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let (addr, rest) = split_socket(args)?;
    let job = match rest.as_slice() {
        [] => None,
        [id] => Some(id.clone()),
        _ => return Err("usage: cirfix status [JOB] [--socket ADDR]".into()),
    };
    let mut client =
        Client::connect(&addr).map_err(|e| format!("cannot connect to daemon at {addr}: {e}"))?;
    let line = client.request(&Request::Status { job })?;
    if !cirfix_serve::client::response_ok(&line) {
        return Err(cirfix_serve::client::response_error(&line).into());
    }
    match field(&line, "jobs") {
        Some(JsonValue::Array(jobs)) if !jobs.is_empty() => {
            for job in jobs {
                print_job_line(job);
            }
        }
        _ => println!("no jobs"),
    }
    Ok(())
}

/// `cirfix cancel`: stop a queued or running job. The job keeps its
/// checkpoint — a later daemon over the same store resumes it.
fn cmd_cancel(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let (addr, rest) = split_socket(args)?;
    let [job] = rest.as_slice() else {
        return Err("usage: cirfix cancel <JOB> [--socket ADDR]".into());
    };
    let mut client =
        Client::connect(&addr).map_err(|e| format!("cannot connect to daemon at {addr}: {e}"))?;
    let line = client.request(&Request::Cancel { job: job.clone() })?;
    if !cirfix_serve::client::response_ok(&line) {
        return Err(cirfix_serve::client::response_error(&line).into());
    }
    print_job_line(&line);
    Ok(())
}

/// `cirfix shutdown`: drain and stop the daemon. Running jobs stop at
/// their next batch boundary with resumable checkpoints.
fn cmd_shutdown(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let (addr, rest) = split_socket(args)?;
    if !rest.is_empty() {
        return Err("usage: cirfix shutdown [--socket ADDR]".into());
    }
    let mut client =
        Client::connect(&addr).map_err(|e| format!("cannot connect to daemon at {addr}: {e}"))?;
    let line = client.request(&Request::Shutdown)?;
    if !cirfix_serve::client::response_ok(&line) {
        return Err(cirfix_serve::client::response_error(&line).into());
    }
    println!("daemon draining");
    Ok(())
}

/// `cirfix verify`: simulate the design named by `verify_design` (default:
/// the `output` of a previous repair) and the golden design under the
/// held-out `verify_testbench`, and compare the recorded traces.
fn cmd_verify(config: &Config) -> Result<(), Box<dyn std::error::Error>> {
    let read_path = |p: &Path| -> Result<String, Box<dyn std::error::Error>> {
        Ok(std::fs::read_to_string(p)
            .map_err(|e| ConfigError(format!("cannot read {}: {e}", p.display())))?)
    };
    let repaired_path = match config.required("verify_design") {
        Ok(_) => config.path("verify_design")?,
        Err(_) => PathBuf::from(config.string_or("output", "repaired.v")),
    };
    let repaired = cirfix_parser::parse(&read_path(&repaired_path)?)?;
    let golden = cirfix_parser::parse(&read_path(&config.path("golden")?)?)?;
    let verification = cirfix::Verification {
        testbench: cirfix_parser::parse(&read_path(&config.path("verify_testbench")?)?)?,
        top: config.required("verify_top")?.to_string(),
        probe: ProbeSpec::periodic(
            config.list("probe_signals")?,
            config.num_or("probe_start", 5u64)?,
            config.num_or("probe_period", 10u64)?,
        ),
        sim: SimConfig {
            max_time: config.num_or("max_time", 100_000u64)? * 4,
            ..SimConfig::default()
        },
    };
    let design_modules = config.list("design_modules")?;
    let correct = cirfix::verify_repair(&repaired, &design_modules, &golden, &verification)?;
    if correct {
        println!("CORRECT: the design matches the golden design on the held-out bench");
        Ok(())
    } else {
        println!("OVERFIT: the design diverges from the golden design on the held-out bench");
        Err("verification failed".into())
    }
}
