//! Node identity.

/// A unique number attached to every AST node.
///
/// CirFix patches reference nodes by id, so ids must be unique within one
/// design variant. The parser numbers nodes in creation order; mutation
/// operators allocate fresh ids for inserted copies via [`NodeIdGen`].
pub type NodeId = u32;

/// Allocator for fresh [`NodeId`]s.
///
/// # Examples
///
/// ```
/// use cirfix_ast::NodeIdGen;
/// let mut ids = NodeIdGen::new();
/// let a = ids.fresh();
/// let b = ids.fresh();
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeIdGen {
    next: NodeId,
}

impl NodeIdGen {
    /// A generator starting at id 1 (0 is reserved as "no node").
    pub fn new() -> NodeIdGen {
        NodeIdGen { next: 1 }
    }

    /// A generator whose first id is `first` — used to continue numbering
    /// past an existing AST's maximum id when applying patches.
    pub fn starting_at(first: NodeId) -> NodeIdGen {
        NodeIdGen { next: first }
    }

    /// Allocates the next id.
    pub fn fresh(&mut self) -> NodeId {
        let id = self.next;
        self.next += 1;
        id
    }

    /// The id the next call to [`NodeIdGen::fresh`] would return.
    pub fn peek(&self) -> NodeId {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_sequential_and_unique() {
        let mut g = NodeIdGen::new();
        let ids: Vec<_> = (0..100).map(|_| g.fresh()).collect();
        let mut sorted = ids.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), 100);
        assert_eq!(ids[0], 1);
    }

    #[test]
    fn starting_at_continues_numbering() {
        let mut g = NodeIdGen::starting_at(500);
        assert_eq!(g.fresh(), 500);
        assert_eq!(g.peek(), 501);
    }
}
