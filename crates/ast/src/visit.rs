//! Traversal, lookup and in-place mutation of the AST by node id.
//!
//! CirFix patches are sequences of edits addressed by node number; this
//! module provides the primitives those edits are implemented with:
//! pre-order walks ([`walk_module`]), id collection ([`ids_in_stmt`]),
//! lookup-and-clone ([`find_stmt`], [`find_expr`]), in-place replacement
//! ([`replace_stmt`], [`replace_expr`]), statement insertion
//! ([`insert_stmt_after`]) and fresh renumbering of inserted copies
//! ([`renumber_stmt`]).

use crate::expr::Expr;
use crate::module::{Connection, Decl, Instance, Item, Module, ParamDecl, SourceFile};
use crate::node::{NodeId, NodeIdGen};
use crate::stmt::{CaseArm, LValue, Sensitivity, Stmt};

/// A borrowed reference to any AST node, yielded by the walkers.
#[derive(Debug, Clone, Copy)]
pub enum NodeRef<'a> {
    /// A module.
    Module(&'a Module),
    /// A module item.
    Item(&'a Item),
    /// A statement.
    Stmt(&'a Stmt),
    /// An expression.
    Expr(&'a Expr),
    /// An assignment target.
    LValue(&'a LValue),
    /// A case arm.
    CaseArm(&'a CaseArm),
    /// A declaration variable.
    DeclVar(&'a crate::module::DeclVar),
    /// An instantiation connection.
    Connection(&'a Connection),
}

impl NodeRef<'_> {
    /// The node id.
    pub fn id(&self) -> NodeId {
        match self {
            NodeRef::Module(m) => m.id,
            NodeRef::Item(i) => i.id(),
            NodeRef::Stmt(s) => s.id(),
            NodeRef::Expr(e) => e.id(),
            NodeRef::LValue(l) => l.id(),
            NodeRef::CaseArm(a) => a.id,
            NodeRef::DeclVar(v) => v.id,
            NodeRef::Connection(c) => c.id,
        }
    }
}

// ---------------------------------------------------------------------------
// Read-only walks (pre-order).
// ---------------------------------------------------------------------------

/// Walks every node of every module in pre-order.
pub fn walk_source<'a>(file: &'a SourceFile, f: &mut impl FnMut(NodeRef<'a>)) {
    for m in &file.modules {
        walk_module(m, f);
    }
}

/// Walks every node of a module in pre-order.
pub fn walk_module<'a>(module: &'a Module, f: &mut impl FnMut(NodeRef<'a>)) {
    f(NodeRef::Module(module));
    for item in &module.items {
        walk_item(item, f);
    }
}

/// Walks an item subtree in pre-order.
pub fn walk_item<'a>(item: &'a Item, f: &mut impl FnMut(NodeRef<'a>)) {
    f(NodeRef::Item(item));
    match item {
        Item::Decl(d) => walk_decl(d, f),
        Item::Param(p) => walk_param(p, f),
        Item::Assign { lhs, rhs, .. } => {
            walk_lvalue(lhs, f);
            walk_expr(rhs, f);
        }
        Item::Always { body, .. } | Item::Initial { body, .. } => walk_stmt(body, f),
        Item::Instance(inst) => walk_instance(inst, f),
    }
}

fn walk_decl<'a>(d: &'a Decl, f: &mut impl FnMut(NodeRef<'a>)) {
    if let Some((msb, lsb)) = &d.range {
        walk_expr(msb, f);
        walk_expr(lsb, f);
    }
    for v in &d.vars {
        f(NodeRef::DeclVar(v));
        if let Some((hi, lo)) = &v.array {
            walk_expr(hi, f);
            walk_expr(lo, f);
        }
        if let Some(init) = &v.init {
            walk_expr(init, f);
        }
    }
}

fn walk_param<'a>(p: &'a ParamDecl, f: &mut impl FnMut(NodeRef<'a>)) {
    walk_expr(&p.value, f);
}

fn walk_instance<'a>(inst: &'a Instance, f: &mut impl FnMut(NodeRef<'a>)) {
    for c in inst.params.iter().chain(&inst.ports) {
        f(NodeRef::Connection(c));
        if let Some(e) = &c.expr {
            walk_expr(e, f);
        }
    }
}

/// Walks a statement subtree in pre-order.
pub fn walk_stmt<'a>(stmt: &'a Stmt, f: &mut impl FnMut(NodeRef<'a>)) {
    f(NodeRef::Stmt(stmt));
    match stmt {
        Stmt::Block { stmts, .. } => {
            for s in stmts {
                walk_stmt(s, f);
            }
        }
        Stmt::If {
            cond,
            then_s,
            else_s,
            ..
        } => {
            walk_expr(cond, f);
            walk_stmt(then_s, f);
            if let Some(e) = else_s {
                walk_stmt(e, f);
            }
        }
        Stmt::Case {
            subject,
            arms,
            default,
            ..
        } => {
            walk_expr(subject, f);
            for arm in arms {
                f(NodeRef::CaseArm(arm));
                for l in &arm.labels {
                    walk_expr(l, f);
                }
                walk_stmt(&arm.body, f);
            }
            if let Some(d) = default {
                walk_stmt(d, f);
            }
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            walk_stmt(init, f);
            walk_expr(cond, f);
            walk_stmt(step, f);
            walk_stmt(body, f);
        }
        Stmt::While { cond, body, .. } => {
            walk_expr(cond, f);
            walk_stmt(body, f);
        }
        Stmt::Repeat { count, body, .. } => {
            walk_expr(count, f);
            walk_stmt(body, f);
        }
        Stmt::Forever { body, .. } => walk_stmt(body, f),
        Stmt::Blocking {
            lhs, delay, rhs, ..
        }
        | Stmt::NonBlocking {
            lhs, delay, rhs, ..
        } => {
            walk_lvalue(lhs, f);
            if let Some(d) = delay {
                walk_expr(d, f);
            }
            walk_expr(rhs, f);
        }
        Stmt::Delay { amount, body, .. } => {
            walk_expr(amount, f);
            if let Some(b) = body {
                walk_stmt(b, f);
            }
        }
        Stmt::EventControl {
            sensitivity, body, ..
        } => {
            if let Sensitivity::List(events) = sensitivity {
                for ev in events {
                    walk_expr(&ev.expr, f);
                }
            }
            if let Some(b) = body {
                walk_stmt(b, f);
            }
        }
        Stmt::Wait { cond, body, .. } => {
            walk_expr(cond, f);
            if let Some(b) = body {
                walk_stmt(b, f);
            }
        }
        Stmt::SysCall { args, .. } => {
            for a in args {
                walk_expr(a, f);
            }
        }
        Stmt::EventTrigger { .. } | Stmt::Null { .. } => {}
    }
}

/// Walks an expression subtree in pre-order.
pub fn walk_expr<'a>(expr: &'a Expr, f: &mut impl FnMut(NodeRef<'a>)) {
    f(NodeRef::Expr(expr));
    match expr {
        Expr::Literal { .. } | Expr::Ident { .. } | Expr::Str { .. } => {}
        Expr::Unary { arg, .. } => walk_expr(arg, f),
        Expr::Binary { lhs, rhs, .. } => {
            walk_expr(lhs, f);
            walk_expr(rhs, f);
        }
        Expr::Cond {
            cond,
            then_e,
            else_e,
            ..
        } => {
            walk_expr(cond, f);
            walk_expr(then_e, f);
            walk_expr(else_e, f);
        }
        Expr::Index { index, .. } => walk_expr(index, f),
        Expr::Range { msb, lsb, .. } => {
            walk_expr(msb, f);
            walk_expr(lsb, f);
        }
        Expr::Concat { parts, .. } => {
            for p in parts {
                walk_expr(p, f);
            }
        }
        Expr::Repeat { count, parts, .. } => {
            walk_expr(count, f);
            for p in parts {
                walk_expr(p, f);
            }
        }
        Expr::SysCall { args, .. } => {
            for a in args {
                walk_expr(a, f);
            }
        }
    }
}

/// Walks an lvalue subtree in pre-order.
pub fn walk_lvalue<'a>(lv: &'a LValue, f: &mut impl FnMut(NodeRef<'a>)) {
    f(NodeRef::LValue(lv));
    match lv {
        LValue::Ident { .. } => {}
        LValue::Index { index, .. } => walk_expr(index, f),
        LValue::Range { msb, lsb, .. } => {
            walk_expr(msb, f);
            walk_expr(lsb, f);
        }
        LValue::Concat { parts, .. } => {
            for p in parts {
                walk_lvalue(p, f);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Id queries.
// ---------------------------------------------------------------------------

/// All node ids in a statement subtree.
pub fn ids_in_stmt(stmt: &Stmt) -> Vec<NodeId> {
    let mut ids = Vec::new();
    walk_stmt(stmt, &mut |n| ids.push(n.id()));
    ids
}

/// All node ids in an expression subtree.
pub fn ids_in_expr(expr: &Expr) -> Vec<NodeId> {
    let mut ids = Vec::new();
    walk_expr(expr, &mut |n| ids.push(n.id()));
    ids
}

/// The maximum node id used anywhere in the file (0 if empty).
pub fn max_id(file: &SourceFile) -> NodeId {
    let mut max = 0;
    walk_source(file, &mut |n| max = max.max(n.id()));
    max
}

/// All identifier names read in an expression subtree (including
/// index/range bases), with duplicates.
pub fn idents_in_expr(expr: &Expr) -> Vec<String> {
    expr.identifiers().iter().map(|s| s.to_string()).collect()
}

// ---------------------------------------------------------------------------
// Lookup (find & clone).
// ---------------------------------------------------------------------------

/// Finds the statement with id `target` anywhere in the module.
pub fn find_stmt<'a>(module: &'a Module, target: NodeId) -> Option<&'a Stmt> {
    let mut found: Option<&'a Stmt> = None;
    walk_module(module, &mut |n| {
        if found.is_none() {
            if let NodeRef::Stmt(s) = n {
                if s.id() == target {
                    found = Some(s);
                }
            }
        }
    });
    found
}

/// Finds the expression with id `target` anywhere in the module.
pub fn find_expr<'a>(module: &'a Module, target: NodeId) -> Option<&'a Expr> {
    let mut found: Option<&'a Expr> = None;
    walk_module(module, &mut |n| {
        if found.is_none() {
            if let NodeRef::Expr(e) = n {
                if e.id() == target {
                    found = Some(e);
                }
            }
        }
    });
    found
}

/// All statements of the module, pre-order.
pub fn stmts_of_module(module: &Module) -> Vec<&Stmt> {
    let mut out = Vec::new();
    walk_module(module, &mut |n| {
        if let NodeRef::Stmt(s) = n {
            out.push(s);
        }
    });
    out
}

/// All expressions of the module, pre-order.
pub fn exprs_of_module(module: &Module) -> Vec<&Expr> {
    let mut out = Vec::new();
    walk_module(module, &mut |n| {
        if let NodeRef::Expr(e) = n {
            out.push(e);
        }
    });
    out
}

// ---------------------------------------------------------------------------
// In-place mutation by id.
// ---------------------------------------------------------------------------

/// Replaces the statement with id `target` by `new`, returning `true` on
/// success. The first match in pre-order wins.
pub fn replace_stmt(module: &mut Module, target: NodeId, new: &Stmt) -> bool {
    for item in &mut module.items {
        match item {
            Item::Always { body, .. } | Item::Initial { body, .. } => {
                if body.id() == target {
                    *body = new.clone();
                    return true;
                }
                if replace_stmt_rec(body, target, new) {
                    return true;
                }
            }
            _ => {}
        }
    }
    false
}

fn replace_in_box(slot: &mut Box<Stmt>, target: NodeId, new: &Stmt) -> bool {
    if slot.id() == target {
        **slot = new.clone();
        true
    } else {
        replace_stmt_rec(slot, target, new)
    }
}

fn replace_in_opt(slot: &mut Option<Box<Stmt>>, target: NodeId, new: &Stmt) -> bool {
    match slot {
        Some(b) => replace_in_box(b, target, new),
        None => false,
    }
}

fn replace_stmt_rec(stmt: &mut Stmt, target: NodeId, new: &Stmt) -> bool {
    match stmt {
        Stmt::Block { stmts, .. } => {
            for s in stmts.iter_mut() {
                if s.id() == target {
                    *s = new.clone();
                    return true;
                }
                if replace_stmt_rec(s, target, new) {
                    return true;
                }
            }
            false
        }
        Stmt::If { then_s, else_s, .. } => {
            replace_in_box(then_s, target, new) || replace_in_opt(else_s, target, new)
        }
        Stmt::Case { arms, default, .. } => {
            for arm in arms.iter_mut() {
                if arm.body.id() == target {
                    arm.body = new.clone();
                    return true;
                }
                if replace_stmt_rec(&mut arm.body, target, new) {
                    return true;
                }
            }
            replace_in_opt(default, target, new)
        }
        Stmt::For {
            init, step, body, ..
        } => {
            replace_in_box(init, target, new)
                || replace_in_box(step, target, new)
                || replace_in_box(body, target, new)
        }
        Stmt::While { body, .. } | Stmt::Repeat { body, .. } | Stmt::Forever { body, .. } => {
            replace_in_box(body, target, new)
        }
        Stmt::Delay { body, .. } | Stmt::EventControl { body, .. } | Stmt::Wait { body, .. } => {
            replace_in_opt(body, target, new)
        }
        Stmt::Blocking { .. }
        | Stmt::NonBlocking { .. }
        | Stmt::EventTrigger { .. }
        | Stmt::SysCall { .. }
        | Stmt::Null { .. } => false,
    }
}

/// Replaces the expression with id `target` by `new` anywhere in the
/// module (statement expressions, continuous assigns, parameters,
/// declarations, connections). Returns `true` on success.
pub fn replace_expr(module: &mut Module, target: NodeId, new: &Expr) -> bool {
    for item in &mut module.items {
        let done = match item {
            Item::Decl(d) => {
                let mut hit = false;
                if let Some((msb, lsb)) = &mut d.range {
                    hit =
                        replace_expr_slot(msb, target, new) || replace_expr_slot(lsb, target, new);
                }
                if !hit {
                    for v in &mut d.vars {
                        if let Some((hi, lo)) = &mut v.array {
                            if replace_expr_slot(hi, target, new)
                                || replace_expr_slot(lo, target, new)
                            {
                                hit = true;
                                break;
                            }
                        }
                        if let Some(init) = &mut v.init {
                            if replace_expr_slot(init, target, new) {
                                hit = true;
                                break;
                            }
                        }
                    }
                }
                hit
            }
            Item::Param(p) => replace_expr_slot(&mut p.value, target, new),
            Item::Assign { lhs, rhs, .. } => {
                replace_expr_in_lvalue(lhs, target, new) || replace_expr_slot(rhs, target, new)
            }
            Item::Always { body, .. } | Item::Initial { body, .. } => {
                replace_expr_in_stmt(body, target, new)
            }
            Item::Instance(inst) => {
                let mut hit = false;
                for c in inst.params.iter_mut().chain(inst.ports.iter_mut()) {
                    if let Some(e) = &mut c.expr {
                        if replace_expr_slot(e, target, new) {
                            hit = true;
                            break;
                        }
                    }
                }
                hit
            }
        };
        if done {
            return true;
        }
    }
    false
}

fn replace_expr_slot(slot: &mut Expr, target: NodeId, new: &Expr) -> bool {
    if slot.id() == target {
        *slot = new.clone();
        return true;
    }
    match slot {
        Expr::Literal { .. } | Expr::Ident { .. } | Expr::Str { .. } => false,
        Expr::Unary { arg, .. } => replace_expr_slot(arg, target, new),
        Expr::Binary { lhs, rhs, .. } => {
            replace_expr_slot(lhs, target, new) || replace_expr_slot(rhs, target, new)
        }
        Expr::Cond {
            cond,
            then_e,
            else_e,
            ..
        } => {
            replace_expr_slot(cond, target, new)
                || replace_expr_slot(then_e, target, new)
                || replace_expr_slot(else_e, target, new)
        }
        Expr::Index { index, .. } => replace_expr_slot(index, target, new),
        Expr::Range { msb, lsb, .. } => {
            replace_expr_slot(msb, target, new) || replace_expr_slot(lsb, target, new)
        }
        Expr::Concat { parts, .. } => parts.iter_mut().any(|p| replace_expr_slot(p, target, new)),
        Expr::Repeat { count, parts, .. } => {
            replace_expr_slot(count, target, new)
                || parts.iter_mut().any(|p| replace_expr_slot(p, target, new))
        }
        Expr::SysCall { args, .. } => args.iter_mut().any(|a| replace_expr_slot(a, target, new)),
    }
}

fn replace_expr_in_lvalue(lv: &mut LValue, target: NodeId, new: &Expr) -> bool {
    match lv {
        LValue::Ident { .. } => false,
        LValue::Index { index, .. } => replace_expr_slot(index, target, new),
        LValue::Range { msb, lsb, .. } => {
            replace_expr_slot(msb, target, new) || replace_expr_slot(lsb, target, new)
        }
        LValue::Concat { parts, .. } => parts
            .iter_mut()
            .any(|p| replace_expr_in_lvalue(p, target, new)),
    }
}

fn replace_expr_in_stmt(stmt: &mut Stmt, target: NodeId, new: &Expr) -> bool {
    match stmt {
        Stmt::Block { stmts, .. } => stmts
            .iter_mut()
            .any(|s| replace_expr_in_stmt(s, target, new)),
        Stmt::If {
            cond,
            then_s,
            else_s,
            ..
        } => {
            replace_expr_slot(cond, target, new)
                || replace_expr_in_stmt(then_s, target, new)
                || else_s
                    .as_mut()
                    .is_some_and(|e| replace_expr_in_stmt(e, target, new))
        }
        Stmt::Case {
            subject,
            arms,
            default,
            ..
        } => {
            replace_expr_slot(subject, target, new)
                || arms.iter_mut().any(|arm| {
                    arm.labels
                        .iter_mut()
                        .any(|l| replace_expr_slot(l, target, new))
                        || replace_expr_in_stmt(&mut arm.body, target, new)
                })
                || default
                    .as_mut()
                    .is_some_and(|d| replace_expr_in_stmt(d, target, new))
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            replace_expr_in_stmt(init, target, new)
                || replace_expr_slot(cond, target, new)
                || replace_expr_in_stmt(step, target, new)
                || replace_expr_in_stmt(body, target, new)
        }
        Stmt::While { cond, body, .. } => {
            replace_expr_slot(cond, target, new) || replace_expr_in_stmt(body, target, new)
        }
        Stmt::Repeat { count, body, .. } => {
            replace_expr_slot(count, target, new) || replace_expr_in_stmt(body, target, new)
        }
        Stmt::Forever { body, .. } => replace_expr_in_stmt(body, target, new),
        Stmt::Blocking {
            lhs, delay, rhs, ..
        }
        | Stmt::NonBlocking {
            lhs, delay, rhs, ..
        } => {
            replace_expr_in_lvalue(lhs, target, new)
                || delay
                    .as_mut()
                    .is_some_and(|d| replace_expr_slot(d, target, new))
                || replace_expr_slot(rhs, target, new)
        }
        Stmt::Delay { amount, body, .. } => {
            replace_expr_slot(amount, target, new)
                || body
                    .as_mut()
                    .is_some_and(|b| replace_expr_in_stmt(b, target, new))
        }
        Stmt::EventControl {
            sensitivity, body, ..
        } => {
            let mut hit = false;
            if let Sensitivity::List(events) = sensitivity {
                for ev in events.iter_mut() {
                    if replace_expr_slot(&mut ev.expr, target, new) {
                        hit = true;
                        break;
                    }
                }
            }
            hit || body
                .as_mut()
                .is_some_and(|b| replace_expr_in_stmt(b, target, new))
        }
        Stmt::Wait { cond, body, .. } => {
            replace_expr_slot(cond, target, new)
                || body
                    .as_mut()
                    .is_some_and(|b| replace_expr_in_stmt(b, target, new))
        }
        Stmt::SysCall { args, .. } => args.iter_mut().any(|a| replace_expr_slot(a, target, new)),
        Stmt::EventTrigger { .. } | Stmt::Null { .. } => false,
    }
}

/// Inserts `new` immediately after the statement with id `anchor`, which
/// must be a direct child of a `begin…end` block. Returns `true` on
/// success.
///
/// Statements only occur inside `always`/`initial` processes, so a
/// successful insertion is always into procedural code — the constraint
/// CirFix's fix localization imposes (§3.6).
pub fn insert_stmt_after(module: &mut Module, anchor: NodeId, new: &Stmt) -> bool {
    for item in &mut module.items {
        if let Item::Always { body, .. } | Item::Initial { body, .. } = item {
            if insert_after_rec(body, anchor, new) {
                return true;
            }
        }
    }
    false
}

fn insert_after_rec(stmt: &mut Stmt, anchor: NodeId, new: &Stmt) -> bool {
    match stmt {
        Stmt::Block { stmts, .. } => {
            if let Some(pos) = stmts.iter().position(|s| s.id() == anchor) {
                stmts.insert(pos + 1, new.clone());
                return true;
            }
            stmts.iter_mut().any(|s| insert_after_rec(s, anchor, new))
        }
        Stmt::If { then_s, else_s, .. } => {
            insert_after_rec(then_s, anchor, new)
                || else_s
                    .as_mut()
                    .is_some_and(|e| insert_after_rec(e, anchor, new))
        }
        Stmt::Case { arms, default, .. } => {
            arms.iter_mut()
                .any(|arm| insert_after_rec(&mut arm.body, anchor, new))
                || default
                    .as_mut()
                    .is_some_and(|d| insert_after_rec(d, anchor, new))
        }
        Stmt::For { body, .. }
        | Stmt::While { body, .. }
        | Stmt::Repeat { body, .. }
        | Stmt::Forever { body, .. } => insert_after_rec(body, anchor, new),
        Stmt::Delay { body, .. } | Stmt::EventControl { body, .. } | Stmt::Wait { body, .. } => {
            body.as_mut()
                .is_some_and(|b| insert_after_rec(b, anchor, new))
        }
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// Renumbering.
// ---------------------------------------------------------------------------

/// Gives every node in a statement subtree a fresh id.
pub fn renumber_stmt(stmt: &mut Stmt, ids: &mut NodeIdGen) {
    match stmt {
        Stmt::Block { id, stmts, .. } => {
            *id = ids.fresh();
            for s in stmts {
                renumber_stmt(s, ids);
            }
        }
        Stmt::If {
            id,
            cond,
            then_s,
            else_s,
        } => {
            *id = ids.fresh();
            renumber_expr(cond, ids);
            renumber_stmt(then_s, ids);
            if let Some(e) = else_s {
                renumber_stmt(e, ids);
            }
        }
        Stmt::Case {
            id,
            subject,
            arms,
            default,
            ..
        } => {
            *id = ids.fresh();
            renumber_expr(subject, ids);
            for arm in arms {
                arm.id = ids.fresh();
                for l in &mut arm.labels {
                    renumber_expr(l, ids);
                }
                renumber_stmt(&mut arm.body, ids);
            }
            if let Some(d) = default {
                renumber_stmt(d, ids);
            }
        }
        Stmt::For {
            id,
            init,
            cond,
            step,
            body,
        } => {
            *id = ids.fresh();
            renumber_stmt(init, ids);
            renumber_expr(cond, ids);
            renumber_stmt(step, ids);
            renumber_stmt(body, ids);
        }
        Stmt::While { id, cond, body } => {
            *id = ids.fresh();
            renumber_expr(cond, ids);
            renumber_stmt(body, ids);
        }
        Stmt::Repeat { id, count, body } => {
            *id = ids.fresh();
            renumber_expr(count, ids);
            renumber_stmt(body, ids);
        }
        Stmt::Forever { id, body } => {
            *id = ids.fresh();
            renumber_stmt(body, ids);
        }
        Stmt::Blocking {
            id,
            lhs,
            delay,
            rhs,
        }
        | Stmt::NonBlocking {
            id,
            lhs,
            delay,
            rhs,
        } => {
            *id = ids.fresh();
            renumber_lvalue(lhs, ids);
            if let Some(d) = delay {
                renumber_expr(d, ids);
            }
            renumber_expr(rhs, ids);
        }
        Stmt::Delay { id, amount, body } => {
            *id = ids.fresh();
            renumber_expr(amount, ids);
            if let Some(b) = body {
                renumber_stmt(b, ids);
            }
        }
        Stmt::EventControl {
            id,
            sensitivity,
            body,
        } => {
            *id = ids.fresh();
            if let Sensitivity::List(events) = sensitivity {
                for ev in events {
                    ev.id = ids.fresh();
                    renumber_expr(&mut ev.expr, ids);
                }
            }
            if let Some(b) = body {
                renumber_stmt(b, ids);
            }
        }
        Stmt::Wait { id, cond, body } => {
            *id = ids.fresh();
            renumber_expr(cond, ids);
            if let Some(b) = body {
                renumber_stmt(b, ids);
            }
        }
        Stmt::SysCall { id, args, .. } => {
            *id = ids.fresh();
            for a in args {
                renumber_expr(a, ids);
            }
        }
        Stmt::EventTrigger { id, .. } | Stmt::Null { id } => *id = ids.fresh(),
    }
}

/// Gives every node in an expression subtree a fresh id.
pub fn renumber_expr(expr: &mut Expr, ids: &mut NodeIdGen) {
    match expr {
        Expr::Literal { id, .. } | Expr::Ident { id, .. } | Expr::Str { id, .. } => {
            *id = ids.fresh()
        }
        Expr::Unary { id, arg, .. } => {
            *id = ids.fresh();
            renumber_expr(arg, ids);
        }
        Expr::Binary { id, lhs, rhs, .. } => {
            *id = ids.fresh();
            renumber_expr(lhs, ids);
            renumber_expr(rhs, ids);
        }
        Expr::Cond {
            id,
            cond,
            then_e,
            else_e,
        } => {
            *id = ids.fresh();
            renumber_expr(cond, ids);
            renumber_expr(then_e, ids);
            renumber_expr(else_e, ids);
        }
        Expr::Index { id, index, .. } => {
            *id = ids.fresh();
            renumber_expr(index, ids);
        }
        Expr::Range { id, msb, lsb, .. } => {
            *id = ids.fresh();
            renumber_expr(msb, ids);
            renumber_expr(lsb, ids);
        }
        Expr::Concat { id, parts } => {
            *id = ids.fresh();
            for p in parts {
                renumber_expr(p, ids);
            }
        }
        Expr::Repeat { id, count, parts } => {
            *id = ids.fresh();
            renumber_expr(count, ids);
            for p in parts {
                renumber_expr(p, ids);
            }
        }
        Expr::SysCall { id, args, .. } => {
            *id = ids.fresh();
            for a in args {
                renumber_expr(a, ids);
            }
        }
    }
}

/// Gives every node in an lvalue subtree a fresh id.
pub fn renumber_lvalue(lv: &mut LValue, ids: &mut NodeIdGen) {
    match lv {
        LValue::Ident { id, .. } => *id = ids.fresh(),
        LValue::Index { id, index, .. } => {
            *id = ids.fresh();
            renumber_expr(index, ids);
        }
        LValue::Range { id, msb, lsb, .. } => {
            *id = ids.fresh();
            renumber_expr(msb, ids);
            renumber_expr(lsb, ids);
        }
        LValue::Concat { id, parts } => {
            *id = ids.fresh();
            for p in parts {
                renumber_lvalue(p, ids);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinaryOp;
    use crate::module::{Item, Module};

    fn sample_module() -> (Module, NodeIdGen) {
        let mut g = NodeIdGen::new();
        let body = Stmt::Block {
            id: g.fresh(),
            name: None,
            stmts: vec![
                Stmt::Blocking {
                    id: g.fresh(),
                    lhs: LValue::Ident {
                        id: g.fresh(),
                        name: "a".into(),
                    },
                    delay: None,
                    rhs: {
                        let b = Expr::ident(&mut g, "b");
                        let one = Expr::literal_u64(&mut g, 1, 4);
                        Expr::binary(&mut g, BinaryOp::Add, b, one)
                    },
                },
                Stmt::If {
                    id: g.fresh(),
                    cond: Expr::ident(&mut g, "c"),
                    then_s: Box::new(Stmt::Null { id: g.fresh() }),
                    else_s: None,
                },
            ],
        };
        let m = Module {
            id: g.fresh(),
            name: "m".into(),
            ports: vec![],
            items: vec![Item::Always {
                id: g.fresh(),
                body,
            }],
        };
        (m, g)
    }

    #[test]
    fn walk_visits_every_id_once() {
        let (m, g) = sample_module();
        let mut ids = Vec::new();
        walk_module(&m, &mut |n| ids.push(n.id()));
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len(), "ids must be unique");
        // Every allocated id below the generator's watermark that belongs
        // to the module must be visited.
        assert_eq!(ids.len() as u32, g.peek() - 1);
    }

    #[test]
    fn find_and_replace_stmt() {
        let (mut m, mut g) = sample_module();
        let all: Vec<NodeId> = stmts_of_module(&m).iter().map(|s| s.id()).collect();
        // Find the If statement.
        let if_id = *all
            .iter()
            .find(|id| matches!(find_stmt(&m, **id), Some(Stmt::If { .. })))
            .expect("module has an if");
        let replacement = Stmt::Null { id: g.fresh() };
        assert!(replace_stmt(&mut m, if_id, &replacement));
        assert!(find_stmt(&m, if_id).is_none());
        assert!(find_stmt(&m, replacement.id()).is_some());
        // Replacing a missing id fails.
        assert!(!replace_stmt(&mut m, 9999, &replacement));
    }

    #[test]
    fn replace_expr_in_rhs() {
        let (mut m, mut g) = sample_module();
        // Find the literal 1.
        let lit_id = exprs_of_module(&m)
            .iter()
            .find(|e| matches!(e, Expr::Literal { .. }))
            .map(|e| e.id())
            .expect("has literal");
        let two = Expr::literal_u64(&mut g, 2, 4);
        assert!(replace_expr(&mut m, lit_id, &two));
        let found = find_expr(&m, two.id()).expect("replaced");
        match found {
            Expr::Literal { value, .. } => assert_eq!(value.to_u64(), Some(2)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn insert_after_block_child() {
        let (mut m, mut g) = sample_module();
        let first = stmts_of_module(&m)
            .iter()
            .find(|s| s.is_assignment())
            .map(|s| s.id())
            .expect("has assignment");
        let new_stmt = Stmt::Null { id: g.fresh() };
        assert!(insert_stmt_after(&mut m, first, &new_stmt));
        // Anchor must be a direct block child: the module id is not.
        let module_id = m.id;
        assert!(!insert_stmt_after(&mut m, module_id, &new_stmt));
        // The block now has three statements.
        if let Item::Always { body, .. } = &m.items[0] {
            if let Stmt::Block { stmts, .. } = body {
                assert_eq!(stmts.len(), 3);
                assert_eq!(stmts[1].id(), new_stmt.id());
            } else {
                panic!("expected block");
            }
        } else {
            panic!("expected always");
        }
    }

    #[test]
    fn renumbering_gives_unique_fresh_ids() {
        let (m, g) = sample_module();
        let mut body = match &m.items[0] {
            Item::Always { body, .. } => body.clone(),
            _ => unreachable!(),
        };
        let old_ids = ids_in_stmt(&body);
        let mut gen = NodeIdGen::starting_at(g.peek());
        renumber_stmt(&mut body, &mut gen);
        let new_ids = ids_in_stmt(&body);
        assert_eq!(old_ids.len(), new_ids.len());
        for id in &new_ids {
            assert!(!old_ids.contains(id), "fresh ids must not collide");
        }
    }

    #[test]
    fn max_id_spans_all_modules() {
        let (m, g) = sample_module();
        let file = SourceFile { modules: vec![m] };
        assert_eq!(max_id(&file), g.peek() - 1);
    }
}
