#![warn(missing_docs)]

//! A Verilog abstract syntax tree with unique node numbering.
//!
//! The CirFix paper modified PyVerilog to attach a unique number to every
//! AST node; patches are sequences of edits parameterized by those numbers
//! (§3 of the paper). This crate provides the equivalent structure:
//!
//! * every node ([`Expr`], [`LValue`], [`Stmt`], [`Item`], [`Module`], …)
//!   carries a [`NodeId`];
//! * [`visit`] provides read-only traversal, node lookup by id, subtree
//!   cloning, and in-place subtree replacement/insertion — the primitives
//!   the repair operators are built from;
//! * [`mod@print`] regenerates Verilog source text from the AST, used for
//!   showing repairs to developers and for round-trip testing.
//!
//! # Examples
//!
//! ```
//! use cirfix_ast::{Expr, NodeIdGen};
//!
//! let mut ids = NodeIdGen::new();
//! let lhs = Expr::ident(&mut ids, "counter_out");
//! let rhs = Expr::literal_u64(&mut ids, 1, 4);
//! let sum = Expr::binary(&mut ids, cirfix_ast::BinaryOp::Add, lhs, rhs);
//! assert_eq!(cirfix_ast::print::expr_to_string(&sum), "counter_out + 4'd1");
//! ```

mod expr;
mod module;
mod node;
pub mod print;
mod stmt;
pub mod visit;

pub use expr::{BinaryOp, Expr, UnaryOp};
pub use module::{
    Connection, Decl, DeclKind, DeclVar, Instance, Item, Module, ParamDecl, SourceFile,
};
pub use node::{NodeId, NodeIdGen};
pub use stmt::{CaseArm, CaseKind, EventExpr, LValue, Sensitivity, Stmt};
