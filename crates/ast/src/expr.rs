//! Expression nodes.

use cirfix_logic::{LiteralBase, LogicVec};

use crate::node::{NodeId, NodeIdGen};

/// Unary expression operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// `!e` — logical not.
    LogicNot,
    /// `~e` — bitwise not.
    BitNot,
    /// `-e` — arithmetic negation.
    Minus,
    /// `+e` — no-op.
    Plus,
    /// `&e` — reduction and.
    RedAnd,
    /// `|e` — reduction or.
    RedOr,
    /// `^e` — reduction xor.
    RedXor,
    /// `~&e` — reduction nand.
    RedNand,
    /// `~|e` — reduction nor.
    RedNor,
    /// `~^e` — reduction xnor.
    RedXnor,
}

impl UnaryOp {
    /// Source-text spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            UnaryOp::LogicNot => "!",
            UnaryOp::BitNot => "~",
            UnaryOp::Minus => "-",
            UnaryOp::Plus => "+",
            UnaryOp::RedAnd => "&",
            UnaryOp::RedOr => "|",
            UnaryOp::RedXor => "^",
            UnaryOp::RedNand => "~&",
            UnaryOp::RedNor => "~|",
            UnaryOp::RedXnor => "~^",
        }
    }
}

/// Binary expression operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Neq,
    /// `===`
    CaseEq,
    /// `!==`
    CaseNeq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    LogicAnd,
    /// `||`
    LogicOr,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `~^` / `^~`
    BitXnor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
}

impl BinaryOp {
    /// Source-text spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Rem => "%",
            BinaryOp::Eq => "==",
            BinaryOp::Neq => "!=",
            BinaryOp::CaseEq => "===",
            BinaryOp::CaseNeq => "!==",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::LogicAnd => "&&",
            BinaryOp::LogicOr => "||",
            BinaryOp::BitAnd => "&",
            BinaryOp::BitOr => "|",
            BinaryOp::BitXor => "^",
            BinaryOp::BitXnor => "~^",
            BinaryOp::Shl => "<<",
            BinaryOp::Shr => ">>",
        }
    }

    /// Precedence for the pretty-printer (higher binds tighter), following
    /// IEEE 1364 Table 5-4.
    pub fn precedence(self) -> u8 {
        match self {
            BinaryOp::Mul | BinaryOp::Div | BinaryOp::Rem => 10,
            BinaryOp::Add | BinaryOp::Sub => 9,
            BinaryOp::Shl | BinaryOp::Shr => 8,
            BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge => 7,
            BinaryOp::Eq | BinaryOp::Neq | BinaryOp::CaseEq | BinaryOp::CaseNeq => 6,
            BinaryOp::BitAnd => 5,
            BinaryOp::BitXor | BinaryOp::BitXnor => 4,
            BinaryOp::BitOr => 3,
            BinaryOp::LogicAnd => 2,
            BinaryOp::LogicOr => 1,
        }
    }
}

/// A Verilog expression.
///
/// Every variant carries a [`NodeId`]; see the crate docs for why.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A sized or unsized literal, e.g. `4'b1010`, `500`.
    Literal {
        /// Unique node id.
        id: NodeId,
        /// The four-state value (already width-extended).
        value: LogicVec,
        /// The base the literal was written in, for faithful printing.
        base: LiteralBase,
        /// Whether the source spelled an explicit width.
        sized: bool,
    },
    /// An identifier reference (`counter_out`).
    Ident {
        /// Unique node id.
        id: NodeId,
        /// Signal, parameter or genvar name.
        name: String,
    },
    /// A unary operation.
    Unary {
        /// Unique node id.
        id: NodeId,
        /// Operator.
        op: UnaryOp,
        /// Operand.
        arg: Box<Expr>,
    },
    /// A binary operation.
    Binary {
        /// Unique node id.
        id: NodeId,
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// The ternary conditional `cond ? a : b`.
    Cond {
        /// Unique node id.
        id: NodeId,
        /// Condition.
        cond: Box<Expr>,
        /// Value when true.
        then_e: Box<Expr>,
        /// Value when false.
        else_e: Box<Expr>,
    },
    /// A bit select or memory word select, `name[index]`.
    Index {
        /// Unique node id.
        id: NodeId,
        /// Target signal or memory name.
        base: String,
        /// Index expression.
        index: Box<Expr>,
    },
    /// A constant part select, `name[msb:lsb]`.
    Range {
        /// Unique node id.
        id: NodeId,
        /// Target signal name.
        base: String,
        /// Most significant bit (constant expression).
        msb: Box<Expr>,
        /// Least significant bit (constant expression).
        lsb: Box<Expr>,
    },
    /// A concatenation `{a, b, c}` (first part is most significant).
    Concat {
        /// Unique node id.
        id: NodeId,
        /// Parts, MSB first.
        parts: Vec<Expr>,
    },
    /// A replication `{count{a, b}}`.
    Repeat {
        /// Unique node id.
        id: NodeId,
        /// Replication count (constant expression).
        count: Box<Expr>,
        /// Replicated parts.
        parts: Vec<Expr>,
    },
    /// A string literal (only meaningful as a system-task argument).
    Str {
        /// Unique node id.
        id: NodeId,
        /// The string contents, unescaped.
        value: String,
    },
    /// A system function call such as `$time` or `$random`.
    SysCall {
        /// Unique node id.
        id: NodeId,
        /// Function name without the `$`.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
}

impl Expr {
    /// The node id.
    pub fn id(&self) -> NodeId {
        match self {
            Expr::Literal { id, .. }
            | Expr::Ident { id, .. }
            | Expr::Unary { id, .. }
            | Expr::Binary { id, .. }
            | Expr::Cond { id, .. }
            | Expr::Index { id, .. }
            | Expr::Range { id, .. }
            | Expr::Concat { id, .. }
            | Expr::Repeat { id, .. }
            | Expr::Str { id, .. }
            | Expr::SysCall { id, .. } => *id,
        }
    }

    /// Convenience constructor: a decimal literal of `value` at `width`.
    pub fn literal_u64(ids: &mut NodeIdGen, value: u64, width: usize) -> Expr {
        Expr::Literal {
            id: ids.fresh(),
            value: LogicVec::from_u64(value, width),
            base: LiteralBase::Decimal,
            sized: true,
        }
    }

    /// Convenience constructor: a literal from an existing [`LogicVec`].
    pub fn literal_vec(ids: &mut NodeIdGen, value: LogicVec, base: LiteralBase) -> Expr {
        Expr::Literal {
            id: ids.fresh(),
            value,
            base,
            sized: true,
        }
    }

    /// Convenience constructor: an identifier reference.
    pub fn ident(ids: &mut NodeIdGen, name: impl Into<String>) -> Expr {
        Expr::Ident {
            id: ids.fresh(),
            name: name.into(),
        }
    }

    /// Convenience constructor: a unary operation.
    pub fn unary(ids: &mut NodeIdGen, op: UnaryOp, arg: Expr) -> Expr {
        Expr::Unary {
            id: ids.fresh(),
            op,
            arg: Box::new(arg),
        }
    }

    /// Convenience constructor: a binary operation.
    pub fn binary(ids: &mut NodeIdGen, op: BinaryOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            id: ids.fresh(),
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Collects every identifier name referenced in this expression
    /// (including index/range bases), in source order with duplicates.
    pub fn identifiers(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_identifiers(&mut out);
        out
    }

    fn collect_identifiers<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Literal { .. } | Expr::Str { .. } => {}
            Expr::Ident { name, .. } => out.push(name),
            Expr::Unary { arg, .. } => arg.collect_identifiers(out),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.collect_identifiers(out);
                rhs.collect_identifiers(out);
            }
            Expr::Cond {
                cond,
                then_e,
                else_e,
                ..
            } => {
                cond.collect_identifiers(out);
                then_e.collect_identifiers(out);
                else_e.collect_identifiers(out);
            }
            Expr::Index { base, index, .. } => {
                out.push(base);
                index.collect_identifiers(out);
            }
            Expr::Range { base, msb, lsb, .. } => {
                out.push(base);
                msb.collect_identifiers(out);
                lsb.collect_identifiers(out);
            }
            Expr::Concat { parts, .. } => {
                for p in parts {
                    p.collect_identifiers(out);
                }
            }
            Expr::Repeat { count, parts, .. } => {
                count.collect_identifiers(out);
                for p in parts {
                    p.collect_identifiers(out);
                }
            }
            Expr::SysCall { args, .. } => {
                for a in args {
                    a.collect_identifiers(out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_attached() {
        let mut g = NodeIdGen::new();
        let a = Expr::ident(&mut g, "a");
        let one = Expr::literal_u64(&mut g, 1, 4);
        let e = Expr::binary(&mut g, BinaryOp::Add, a, one);
        assert!(e.id() > 0);
        if let Expr::Binary { lhs, rhs, .. } = &e {
            assert_ne!(lhs.id(), rhs.id());
            assert_ne!(lhs.id(), e.id());
        } else {
            unreachable!();
        }
    }

    #[test]
    fn identifiers_are_collected_transitively() {
        let mut g = NodeIdGen::new();
        let state = Expr::ident(&mut g, "state");
        let idle = Expr::ident(&mut g, "IDLE");
        let cond = Expr::binary(&mut g, BinaryOp::Eq, state, idle);
        let addr = Expr::ident(&mut g, "addr");
        let zero = Expr::literal_u64(&mut g, 0, 8);
        let e = Expr::Cond {
            id: g.fresh(),
            cond: Box::new(cond),
            then_e: Box::new(Expr::Index {
                id: g.fresh(),
                base: "mem".into(),
                index: Box::new(addr),
            }),
            else_e: Box::new(zero),
        };
        assert_eq!(e.identifiers(), vec!["state", "IDLE", "mem", "addr"]);
    }

    #[test]
    fn precedence_ordering_is_sane() {
        assert!(BinaryOp::Mul.precedence() > BinaryOp::Add.precedence());
        assert!(BinaryOp::Add.precedence() > BinaryOp::Eq.precedence());
        assert!(BinaryOp::Eq.precedence() > BinaryOp::LogicAnd.precedence());
        assert!(BinaryOp::LogicAnd.precedence() > BinaryOp::LogicOr.precedence());
    }
}
