//! Module-level nodes: declarations, continuous assigns, processes,
//! instantiations, and the source file.

use crate::expr::Expr;
use crate::node::NodeId;
use crate::stmt::{LValue, Stmt};

/// What a declaration declares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeclKind {
    /// `input` port.
    Input,
    /// `output` port (add `reg` via [`Decl::also_reg`]).
    Output,
    /// `inout` port (parsed but rejected at elaboration).
    Inout,
    /// `wire` net.
    Wire,
    /// `reg` variable.
    Reg,
    /// `integer` variable (a 32-bit reg).
    Integer,
    /// Named `event`.
    Event,
}

impl DeclKind {
    /// Source keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            DeclKind::Input => "input",
            DeclKind::Output => "output",
            DeclKind::Inout => "inout",
            DeclKind::Wire => "wire",
            DeclKind::Reg => "reg",
            DeclKind::Integer => "integer",
            DeclKind::Event => "event",
        }
    }

    /// `true` for port directions.
    pub fn is_port(self) -> bool {
        matches!(self, DeclKind::Input | DeclKind::Output | DeclKind::Inout)
    }
}

/// One declared name within a declaration, e.g. the `q` of `reg [3:0] q;`
/// or the `mem` of `reg [7:0] mem [0:255];`.
#[derive(Debug, Clone, PartialEq)]
pub struct DeclVar {
    /// Unique node id.
    pub id: NodeId,
    /// Declared name.
    pub name: String,
    /// Memory dimension `[hi:lo]`, if any (constant expressions).
    pub array: Option<(Expr, Expr)>,
    /// Initializer (`reg q = 0;`), if any.
    pub init: Option<Expr>,
}

/// A wire/reg/port/integer/event declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct Decl {
    /// Unique node id.
    pub id: NodeId,
    /// What is being declared.
    pub kind: DeclKind,
    /// Vector range `[msb:lsb]`, if any (constant expressions).
    pub range: Option<(Expr, Expr)>,
    /// `output reg` combines a direction and a kind in one declaration.
    pub also_reg: bool,
    /// The declared names.
    pub vars: Vec<DeclVar>,
}

/// A `parameter` or `localparam` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamDecl {
    /// Unique node id.
    pub id: NodeId,
    /// `localparam` (not overridable) vs `parameter`.
    pub local: bool,
    /// Parameter name.
    pub name: String,
    /// Default value (constant expression).
    pub value: Expr,
}

/// A named or positional connection in an instantiation.
#[derive(Debug, Clone, PartialEq)]
pub struct Connection {
    /// Unique node id.
    pub id: NodeId,
    /// Port/parameter name for named connections (`.clk(clk)`).
    pub name: Option<String>,
    /// Connected expression; `None` for explicitly unconnected ports.
    pub expr: Option<Expr>,
}

/// A module instantiation.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// Unique node id.
    pub id: NodeId,
    /// Name of the instantiated module.
    pub module: String,
    /// Instance name.
    pub name: String,
    /// Parameter overrides (`#(…)`).
    pub params: Vec<Connection>,
    /// Port connections.
    pub ports: Vec<Connection>,
}

/// A top-level item within a module body.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// Signal/port/event declaration.
    Decl(Decl),
    /// Parameter declaration.
    Param(ParamDecl),
    /// Continuous assignment `assign lhs = rhs;`.
    Assign {
        /// Unique node id.
        id: NodeId,
        /// Target net.
        lhs: LValue,
        /// Driving expression.
        rhs: Expr,
    },
    /// An `always` process.
    Always {
        /// Unique node id.
        id: NodeId,
        /// The process body (usually an event-control statement).
        body: Stmt,
    },
    /// An `initial` process.
    Initial {
        /// Unique node id.
        id: NodeId,
        /// The process body.
        body: Stmt,
    },
    /// A module instantiation.
    Instance(Instance),
}

impl Item {
    /// The node id.
    pub fn id(&self) -> NodeId {
        match self {
            Item::Decl(d) => d.id,
            Item::Param(p) => p.id,
            Item::Assign { id, .. } | Item::Always { id, .. } | Item::Initial { id, .. } => *id,
            Item::Instance(i) => i.id,
        }
    }
}

/// A Verilog module.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Unique node id.
    pub id: NodeId,
    /// Module name.
    pub name: String,
    /// Port names in header order (used for positional connections).
    pub ports: Vec<String>,
    /// Body items in source order.
    pub items: Vec<Item>,
}

impl Module {
    /// Finds the declaration of `name`, if any, searching all
    /// declarations (a name may be declared twice: `output q; reg q;`).
    pub fn decls_of<'a>(&'a self, name: &str) -> Vec<&'a Decl> {
        self.items
            .iter()
            .filter_map(|item| match item {
                Item::Decl(d) if d.vars.iter().any(|v| v.name == name) => Some(d),
                _ => None,
            })
            .collect()
    }
}

/// A parsed source file: one or more modules.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceFile {
    /// Modules in source order.
    pub modules: Vec<Module>,
}

impl SourceFile {
    /// Finds a module by name.
    pub fn module(&self, name: &str) -> Option<&Module> {
        self.modules.iter().find(|m| m.name == name)
    }

    /// Finds a module by name, mutably.
    pub fn module_mut(&mut self, name: &str) -> Option<&mut Module> {
        self.modules.iter_mut().find(|m| m.name == name)
    }

    /// Merges the modules of `other` into `self` (testbench + design).
    pub fn extend_from(&mut self, other: SourceFile) {
        self.modules.extend(other.modules);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeIdGen;

    #[test]
    fn decls_of_finds_all_declarations() {
        let mut g = NodeIdGen::new();
        let m = Module {
            id: g.fresh(),
            name: "t".into(),
            ports: vec!["q".into()],
            items: vec![
                Item::Decl(Decl {
                    id: g.fresh(),
                    kind: DeclKind::Output,
                    range: None,
                    also_reg: false,
                    vars: vec![DeclVar {
                        id: g.fresh(),
                        name: "q".into(),
                        array: None,
                        init: None,
                    }],
                }),
                Item::Decl(Decl {
                    id: g.fresh(),
                    kind: DeclKind::Reg,
                    range: None,
                    also_reg: false,
                    vars: vec![DeclVar {
                        id: g.fresh(),
                        name: "q".into(),
                        array: None,
                        init: None,
                    }],
                }),
            ],
        };
        assert_eq!(m.decls_of("q").len(), 2);
        assert!(m.decls_of("missing").is_empty());
    }

    #[test]
    fn source_file_lookup_and_merge() {
        let mut g = NodeIdGen::new();
        let mk = |g: &mut NodeIdGen, name: &str| Module {
            id: g.fresh(),
            name: name.into(),
            ports: vec![],
            items: vec![],
        };
        let mut f = SourceFile {
            modules: vec![mk(&mut g, "dut")],
        };
        let tb = SourceFile {
            modules: vec![mk(&mut g, "tb")],
        };
        f.extend_from(tb);
        assert!(f.module("dut").is_some());
        assert!(f.module("tb").is_some());
        assert!(f.module_mut("tb").is_some());
        assert!(f.module("nope").is_none());
    }
}
