//! Statement and procedural-control nodes.

use cirfix_logic::EdgeKind;

use crate::expr::Expr;
use crate::node::NodeId;

/// The target of an assignment.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// Whole-signal assignment, `q = …`.
    Ident {
        /// Unique node id.
        id: NodeId,
        /// Signal name.
        name: String,
    },
    /// Bit-select or memory-word assignment, `q[i] = …`.
    Index {
        /// Unique node id.
        id: NodeId,
        /// Signal or memory name.
        base: String,
        /// Index expression.
        index: Expr,
    },
    /// Part-select assignment, `q[7:4] = …`.
    Range {
        /// Unique node id.
        id: NodeId,
        /// Signal name.
        base: String,
        /// Most significant bit (constant expression).
        msb: Expr,
        /// Least significant bit (constant expression).
        lsb: Expr,
    },
    /// Concatenated assignment, `{c, s} = …` (first part gets the MSBs).
    Concat {
        /// Unique node id.
        id: NodeId,
        /// Parts, MSB first.
        parts: Vec<LValue>,
    },
}

impl LValue {
    /// The node id.
    pub fn id(&self) -> NodeId {
        match self {
            LValue::Ident { id, .. }
            | LValue::Index { id, .. }
            | LValue::Range { id, .. }
            | LValue::Concat { id, .. } => *id,
        }
    }

    /// The names of all signals this lvalue writes.
    pub fn target_names(&self) -> Vec<&str> {
        match self {
            LValue::Ident { name, .. } => vec![name],
            LValue::Index { base, .. } | LValue::Range { base, .. } => vec![base],
            LValue::Concat { parts, .. } => parts.iter().flat_map(|p| p.target_names()).collect(),
        }
    }
}

/// One term of a sensitivity list, e.g. `posedge clk` or `reset`.
#[derive(Debug, Clone, PartialEq)]
pub struct EventExpr {
    /// Unique node id.
    pub id: NodeId,
    /// Which transition to wait for.
    pub edge: EdgeKind,
    /// The watched expression (an identifier in well-formed designs).
    pub expr: Expr,
}

/// The sensitivity of an event control.
#[derive(Debug, Clone, PartialEq)]
pub enum Sensitivity {
    /// `@*` / `@(*)` — sensitive to every signal read in the body.
    Star,
    /// `@(a or posedge b, …)`.
    List(Vec<EventExpr>),
}

/// The flavor of a `case` statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CaseKind {
    /// Four-state exact matching.
    Case,
    /// `z`/`?` bits are wildcards.
    Casez,
    /// `x` and `z` bits are wildcards.
    Casex,
}

impl CaseKind {
    /// Source keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            CaseKind::Case => "case",
            CaseKind::Casez => "casez",
            CaseKind::Casex => "casex",
        }
    }
}

/// One labelled arm of a `case` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseArm {
    /// Unique node id.
    pub id: NodeId,
    /// Comma-separated labels.
    pub labels: Vec<Expr>,
    /// Arm body.
    pub body: Stmt,
}

/// A procedural statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `begin … end`, optionally named (`begin : COUNTER`).
    Block {
        /// Unique node id.
        id: NodeId,
        /// Optional block label.
        name: Option<String>,
        /// Statements in order.
        stmts: Vec<Stmt>,
    },
    /// `if (cond) then_s [else else_s]`.
    If {
        /// Unique node id.
        id: NodeId,
        /// Condition.
        cond: Expr,
        /// True branch.
        then_s: Box<Stmt>,
        /// Optional false branch.
        else_s: Option<Box<Stmt>>,
    },
    /// `case`/`casez`/`casex`.
    Case {
        /// Unique node id.
        id: NodeId,
        /// Flavor of matching.
        kind: CaseKind,
        /// Scrutinee.
        subject: Expr,
        /// Labelled arms in order.
        arms: Vec<CaseArm>,
        /// Optional `default:` arm.
        default: Option<Box<Stmt>>,
    },
    /// `for (init; cond; step) body`.
    For {
        /// Unique node id.
        id: NodeId,
        /// Initialization assignment.
        init: Box<Stmt>,
        /// Loop condition.
        cond: Expr,
        /// Step assignment.
        step: Box<Stmt>,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `while (cond) body`.
    While {
        /// Unique node id.
        id: NodeId,
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `repeat (count) body`.
    Repeat {
        /// Unique node id.
        id: NodeId,
        /// Iteration count, evaluated once on entry.
        count: Expr,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `forever body`.
    Forever {
        /// Unique node id.
        id: NodeId,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// Blocking assignment `lhs = [#delay] rhs;`.
    Blocking {
        /// Unique node id.
        id: NodeId,
        /// Target.
        lhs: LValue,
        /// Optional intra-assignment delay.
        delay: Option<Expr>,
        /// Source expression.
        rhs: Expr,
    },
    /// Non-blocking assignment `lhs <= [#delay] rhs;`.
    NonBlocking {
        /// Unique node id.
        id: NodeId,
        /// Target.
        lhs: LValue,
        /// Optional intra-assignment delay.
        delay: Option<Expr>,
        /// Source expression.
        rhs: Expr,
    },
    /// Delay control `#amount [stmt]`.
    Delay {
        /// Unique node id.
        id: NodeId,
        /// Delay amount (constant or parameter expression).
        amount: Expr,
        /// Optional controlled statement.
        body: Option<Box<Stmt>>,
    },
    /// Event control `@(…) [stmt]`.
    EventControl {
        /// Unique node id.
        id: NodeId,
        /// What to wait for.
        sensitivity: Sensitivity,
        /// Optional controlled statement.
        body: Option<Box<Stmt>>,
    },
    /// Named-event trigger `-> ev;`.
    EventTrigger {
        /// Unique node id.
        id: NodeId,
        /// Event name.
        name: String,
    },
    /// `wait (cond) [stmt]`.
    Wait {
        /// Unique node id.
        id: NodeId,
        /// Condition to wait for (level-sensitive).
        cond: Expr,
        /// Optional controlled statement.
        body: Option<Box<Stmt>>,
    },
    /// A system task call such as `$display(…)` or `$finish;`.
    SysCall {
        /// Unique node id.
        id: NodeId,
        /// Task name without the `$`.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// The empty statement `;` — also the result of the delete operator.
    Null {
        /// Unique node id.
        id: NodeId,
    },
}

impl Stmt {
    /// The node id.
    pub fn id(&self) -> NodeId {
        match self {
            Stmt::Block { id, .. }
            | Stmt::If { id, .. }
            | Stmt::Case { id, .. }
            | Stmt::For { id, .. }
            | Stmt::While { id, .. }
            | Stmt::Repeat { id, .. }
            | Stmt::Forever { id, .. }
            | Stmt::Blocking { id, .. }
            | Stmt::NonBlocking { id, .. }
            | Stmt::Delay { id, .. }
            | Stmt::EventControl { id, .. }
            | Stmt::EventTrigger { id, .. }
            | Stmt::Wait { id, .. }
            | Stmt::SysCall { id, .. }
            | Stmt::Null { id } => *id,
        }
    }

    /// `true` for assignment statements (blocking or non-blocking).
    pub fn is_assignment(&self) -> bool {
        matches!(self, Stmt::Blocking { .. } | Stmt::NonBlocking { .. })
    }

    /// `true` for statements that branch on a condition (`if`, `case`,
    /// `while`, `for`) — the targets of the paper's Impl-Ctrl rule.
    pub fn is_conditional(&self) -> bool {
        matches!(
            self,
            Stmt::If { .. } | Stmt::Case { .. } | Stmt::While { .. } | Stmt::For { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeIdGen;

    #[test]
    fn lvalue_target_names() {
        let mut g = NodeIdGen::new();
        let lv = LValue::Concat {
            id: g.fresh(),
            parts: vec![
                LValue::Ident {
                    id: g.fresh(),
                    name: "carry".into(),
                },
                LValue::Index {
                    id: g.fresh(),
                    base: "sum".into(),
                    index: Expr::literal_u64(&mut g, 0, 1),
                },
            ],
        };
        assert_eq!(lv.target_names(), vec!["carry", "sum"]);
    }

    #[test]
    fn classification_helpers() {
        let mut g = NodeIdGen::new();
        let assign = Stmt::Blocking {
            id: g.fresh(),
            lhs: LValue::Ident {
                id: g.fresh(),
                name: "a".into(),
            },
            delay: None,
            rhs: Expr::literal_u64(&mut g, 0, 1),
        };
        assert!(assign.is_assignment());
        assert!(!assign.is_conditional());
        let iff = Stmt::If {
            id: g.fresh(),
            cond: Expr::ident(&mut g, "c"),
            then_s: Box::new(Stmt::Null { id: g.fresh() }),
            else_s: None,
        };
        assert!(iff.is_conditional());
        assert!(!iff.is_assignment());
    }

    #[test]
    fn case_kind_keywords() {
        assert_eq!(CaseKind::Case.keyword(), "case");
        assert_eq!(CaseKind::Casez.keyword(), "casez");
        assert_eq!(CaseKind::Casex.keyword(), "casex");
    }
}
