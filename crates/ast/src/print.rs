//! Regenerating Verilog source text from the AST.
//!
//! CirFix shows candidate repairs to human developers as source code; this
//! module is the equivalent of PyVerilog's code generator. The output is
//! normalized (canonical spacing and indentation) but parses back to an
//! equal AST modulo node ids — see the round-trip tests in the parser
//! crate.

use std::fmt::Write as _;

use crate::expr::Expr;
use crate::module::{Decl, Instance, Item, Module, ParamDecl, SourceFile};
use crate::stmt::{LValue, Sensitivity, Stmt};

/// Renders a whole source file.
pub fn source_to_string(file: &SourceFile) -> String {
    let mut out = String::new();
    for (i, m) in file.modules.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        write_module(&mut out, m);
    }
    out
}

/// Renders one module.
pub fn module_to_string(module: &Module) -> String {
    let mut out = String::new();
    write_module(&mut out, module);
    out
}

/// Renders one statement at indent level 0.
pub fn stmt_to_string(stmt: &Stmt) -> String {
    let mut out = String::new();
    write_stmt(&mut out, stmt, 0);
    out
}

/// Renders one expression.
pub fn expr_to_string(expr: &Expr) -> String {
    let mut out = String::new();
    write_expr(&mut out, expr, 0);
    out
}

/// Renders one lvalue.
pub fn lvalue_to_string(lv: &LValue) -> String {
    let mut out = String::new();
    write_lvalue(&mut out, lv);
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn write_module(out: &mut String, m: &Module) {
    write!(out, "module {}", m.name).expect("infallible write");
    if !m.ports.is_empty() {
        out.push_str(" (");
        out.push_str(&m.ports.join(", "));
        out.push(')');
    }
    out.push_str(";\n");
    for item in &m.items {
        write_item(out, item, 1);
    }
    out.push_str("endmodule\n");
}

fn write_item(out: &mut String, item: &Item, level: usize) {
    match item {
        Item::Decl(d) => {
            indent(out, level);
            write_decl(out, d);
            out.push('\n');
        }
        Item::Param(p) => {
            indent(out, level);
            write_param(out, p);
            out.push('\n');
        }
        Item::Assign { lhs, rhs, .. } => {
            indent(out, level);
            out.push_str("assign ");
            write_lvalue(out, lhs);
            out.push_str(" = ");
            write_expr(out, rhs, 0);
            out.push_str(";\n");
        }
        Item::Always { body, .. } => {
            indent(out, level);
            out.push_str("always ");
            write_stmt_inline(out, body, level);
            out.push('\n');
        }
        Item::Initial { body, .. } => {
            indent(out, level);
            out.push_str("initial ");
            write_stmt_inline(out, body, level);
            out.push('\n');
        }
        Item::Instance(inst) => {
            indent(out, level);
            write_instance(out, inst);
            out.push('\n');
        }
    }
}

fn write_decl(out: &mut String, d: &Decl) {
    out.push_str(d.kind.keyword());
    if d.also_reg {
        out.push_str(" reg");
    }
    if let Some((msb, lsb)) = &d.range {
        out.push_str(" [");
        write_expr(out, msb, 0);
        out.push(':');
        write_expr(out, lsb, 0);
        out.push(']');
    }
    out.push(' ');
    for (i, v) in d.vars.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&v.name);
        if let Some((hi, lo)) = &v.array {
            out.push_str(" [");
            write_expr(out, hi, 0);
            out.push(':');
            write_expr(out, lo, 0);
            out.push(']');
        }
        if let Some(init) = &v.init {
            out.push_str(" = ");
            write_expr(out, init, 0);
        }
    }
    out.push(';');
}

fn write_param(out: &mut String, p: &ParamDecl) {
    out.push_str(if p.local { "localparam" } else { "parameter" });
    out.push(' ');
    out.push_str(&p.name);
    out.push_str(" = ");
    write_expr(out, &p.value, 0);
    out.push(';');
}

fn write_instance(out: &mut String, inst: &Instance) {
    out.push_str(&inst.module);
    if !inst.params.is_empty() {
        out.push_str(" #(");
        for (i, c) in inst.params.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_connection(out, c);
        }
        out.push(')');
    }
    out.push(' ');
    out.push_str(&inst.name);
    out.push_str(" (");
    for (i, c) in inst.ports.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_connection(out, c);
    }
    out.push_str(");");
}

fn write_connection(out: &mut String, c: &crate::module::Connection) {
    match (&c.name, &c.expr) {
        (Some(name), Some(e)) => {
            out.push('.');
            out.push_str(name);
            out.push('(');
            write_expr(out, e, 0);
            out.push(')');
        }
        (Some(name), None) => {
            out.push('.');
            out.push_str(name);
            out.push_str("()");
        }
        (None, Some(e)) => write_expr(out, e, 0),
        (None, None) => {}
    }
}

/// Writes a statement that follows a keyword on the same line
/// (e.g. `always …`); blocks open on the same line.
fn write_stmt_inline(out: &mut String, stmt: &Stmt, level: usize) {
    let mut s = String::new();
    write_stmt(&mut s, stmt, level);
    out.push_str(s.trim_start());
    // Remove the trailing newline; the caller adds it.
    while out.ends_with('\n') {
        out.pop();
    }
}

fn write_stmt(out: &mut String, stmt: &Stmt, level: usize) {
    match stmt {
        Stmt::Block { name, stmts, .. } => {
            indent(out, level);
            out.push_str("begin");
            if let Some(n) = name {
                out.push_str(" : ");
                out.push_str(n);
            }
            out.push('\n');
            for s in stmts {
                write_stmt(out, s, level + 1);
            }
            indent(out, level);
            out.push_str("end\n");
        }
        Stmt::If {
            cond,
            then_s,
            else_s,
            ..
        } => {
            indent(out, level);
            out.push_str("if (");
            write_expr(out, cond, 0);
            out.push_str(") ");
            write_stmt_inline(out, then_s, level);
            out.push('\n');
            if let Some(e) = else_s {
                indent(out, level);
                out.push_str("else ");
                write_stmt_inline(out, e, level);
                out.push('\n');
            }
        }
        Stmt::Case {
            kind,
            subject,
            arms,
            default,
            ..
        } => {
            indent(out, level);
            out.push_str(kind.keyword());
            out.push_str(" (");
            write_expr(out, subject, 0);
            out.push_str(")\n");
            for arm in arms {
                indent(out, level + 1);
                for (i, l) in arm.labels.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_expr(out, l, 0);
                }
                out.push_str(" : ");
                write_stmt_inline(out, &arm.body, level + 1);
                out.push('\n');
            }
            if let Some(d) = default {
                indent(out, level + 1);
                out.push_str("default : ");
                write_stmt_inline(out, d, level + 1);
                out.push('\n');
            }
            indent(out, level);
            out.push_str("endcase\n");
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            indent(out, level);
            out.push_str("for (");
            write_assign_headless(out, init);
            out.push_str("; ");
            write_expr(out, cond, 0);
            out.push_str("; ");
            write_assign_headless(out, step);
            out.push_str(") ");
            write_stmt_inline(out, body, level);
            out.push('\n');
        }
        Stmt::While { cond, body, .. } => {
            indent(out, level);
            out.push_str("while (");
            write_expr(out, cond, 0);
            out.push_str(") ");
            write_stmt_inline(out, body, level);
            out.push('\n');
        }
        Stmt::Repeat { count, body, .. } => {
            indent(out, level);
            out.push_str("repeat (");
            write_expr(out, count, 0);
            out.push_str(") ");
            write_stmt_inline(out, body, level);
            out.push('\n');
        }
        Stmt::Forever { body, .. } => {
            indent(out, level);
            out.push_str("forever ");
            write_stmt_inline(out, body, level);
            out.push('\n');
        }
        Stmt::Blocking {
            lhs, delay, rhs, ..
        } => {
            indent(out, level);
            write_lvalue(out, lhs);
            out.push_str(" = ");
            if let Some(d) = delay {
                out.push('#');
                write_expr(out, d, 20);
                out.push(' ');
            }
            write_expr(out, rhs, 0);
            out.push_str(";\n");
        }
        Stmt::NonBlocking {
            lhs, delay, rhs, ..
        } => {
            indent(out, level);
            write_lvalue(out, lhs);
            out.push_str(" <= ");
            if let Some(d) = delay {
                out.push('#');
                write_expr(out, d, 20);
                out.push(' ');
            }
            write_expr(out, rhs, 0);
            out.push_str(";\n");
        }
        Stmt::Delay { amount, body, .. } => {
            indent(out, level);
            out.push('#');
            write_expr(out, amount, 20);
            match body {
                // A deleted (null) body prints like no body at all, so
                // the print is a canonical form: parsing it back and
                // re-printing yields the same text.
                Some(b) if !matches!(**b, Stmt::Null { .. }) => {
                    out.push(' ');
                    write_stmt_inline(out, b, level);
                    out.push('\n');
                }
                _ => out.push_str(";\n"),
            }
        }
        Stmt::EventControl {
            sensitivity, body, ..
        } => {
            indent(out, level);
            out.push('@');
            match sensitivity {
                Sensitivity::Star => out.push('*'),
                Sensitivity::List(events) => {
                    out.push('(');
                    for (i, ev) in events.iter().enumerate() {
                        if i > 0 {
                            out.push_str(" or ");
                        }
                        match ev.edge {
                            cirfix_logic::EdgeKind::Pos => out.push_str("posedge "),
                            cirfix_logic::EdgeKind::Neg => out.push_str("negedge "),
                            cirfix_logic::EdgeKind::Any => {}
                        }
                        write_expr(out, &ev.expr, 0);
                    }
                    out.push(')');
                }
            }
            match body {
                Some(b) if !matches!(**b, Stmt::Null { .. }) => {
                    out.push(' ');
                    write_stmt_inline(out, b, level);
                    out.push('\n');
                }
                _ => out.push_str(";\n"),
            }
        }
        Stmt::EventTrigger { name, .. } => {
            indent(out, level);
            out.push_str("-> ");
            out.push_str(name);
            out.push_str(";\n");
        }
        Stmt::Wait { cond, body, .. } => {
            indent(out, level);
            out.push_str("wait (");
            write_expr(out, cond, 0);
            out.push(')');
            match body {
                Some(b) if !matches!(**b, Stmt::Null { .. }) => {
                    out.push(' ');
                    write_stmt_inline(out, b, level);
                    out.push('\n');
                }
                _ => out.push_str(";\n"),
            }
        }
        Stmt::SysCall { name, args, .. } => {
            indent(out, level);
            out.push('$');
            out.push_str(name);
            if !args.is_empty() {
                out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_expr(out, a, 0);
                }
                out.push(')');
            }
            out.push_str(";\n");
        }
        Stmt::Null { .. } => {
            indent(out, level);
            out.push_str(";\n");
        }
    }
}

/// Prints a `for` header assignment without indentation or semicolon.
fn write_assign_headless(out: &mut String, stmt: &Stmt) {
    match stmt {
        Stmt::Blocking { lhs, rhs, .. } => {
            write_lvalue(out, lhs);
            out.push_str(" = ");
            write_expr(out, rhs, 0);
        }
        other => {
            // Degenerate mutants can put non-assignments here; print the
            // statement body inline so output is still parseable-ish.
            let mut s = String::new();
            write_stmt(&mut s, other, 0);
            out.push_str(s.trim());
        }
    }
}

fn write_lvalue(out: &mut String, lv: &LValue) {
    match lv {
        LValue::Ident { name, .. } => out.push_str(name),
        LValue::Index { base, index, .. } => {
            out.push_str(base);
            out.push('[');
            write_expr(out, index, 0);
            out.push(']');
        }
        LValue::Range { base, msb, lsb, .. } => {
            out.push_str(base);
            out.push('[');
            write_expr(out, msb, 0);
            out.push(':');
            write_expr(out, lsb, 0);
            out.push(']');
        }
        LValue::Concat { parts, .. } => {
            out.push('{');
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_lvalue(out, p);
            }
            out.push('}');
        }
    }
}

/// `min_prec` is the loosest precedence allowed without parentheses.
fn write_expr(out: &mut String, expr: &Expr, min_prec: u8) {
    match expr {
        Expr::Literal {
            value, base, sized, ..
        } => {
            if *sized {
                out.push_str(&value.to_based_string(*base));
            } else if let Some(v) = value.to_u128() {
                write!(out, "{v}").expect("infallible write");
            } else {
                // Unsized x/z literal.
                out.push('\'');
                out.push(base.to_char());
                out.push(value.bit(0).to_char());
            }
        }
        Expr::Ident { name, .. } => out.push_str(name),
        Expr::Unary { op, arg, .. } => {
            out.push_str(op.symbol());
            // A directly nested unary must be parenthesized: `&&x` would
            // re-lex as logical AND and `^~x` as XNOR.
            if matches!(**arg, Expr::Unary { .. }) {
                out.push('(');
                write_expr(out, arg, 0);
                out.push(')');
            } else {
                write_expr(out, arg, 15);
            }
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            let prec = op.precedence();
            let parens = prec < min_prec;
            if parens {
                out.push('(');
            }
            write_expr(out, lhs, prec);
            out.push(' ');
            out.push_str(op.symbol());
            out.push(' ');
            // Right operand needs strictly higher precedence to avoid
            // reassociation, e.g. `a - (b - c)`.
            write_expr(out, rhs, prec + 1);
            if parens {
                out.push(')');
            }
        }
        Expr::Cond {
            cond,
            then_e,
            else_e,
            ..
        } => {
            let parens = min_prec > 0;
            if parens {
                out.push('(');
            }
            write_expr(out, cond, 1);
            out.push_str(" ? ");
            write_expr(out, then_e, 1);
            out.push_str(" : ");
            write_expr(out, else_e, 0);
            if parens {
                out.push(')');
            }
        }
        Expr::Index { base, index, .. } => {
            out.push_str(base);
            out.push('[');
            write_expr(out, index, 0);
            out.push(']');
        }
        Expr::Range { base, msb, lsb, .. } => {
            out.push_str(base);
            out.push('[');
            write_expr(out, msb, 0);
            out.push(':');
            write_expr(out, lsb, 0);
            out.push(']');
        }
        Expr::Concat { parts, .. } => {
            out.push('{');
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, p, 0);
            }
            out.push('}');
        }
        Expr::Repeat { count, parts, .. } => {
            out.push('{');
            write_expr(out, count, 20);
            out.push('{');
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, p, 0);
            }
            out.push_str("}}");
        }
        Expr::Str { value, .. } => {
            out.push('"');
            for c in value.chars() {
                match c {
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    other => out.push(other),
                }
            }
            out.push('"');
        }
        Expr::SysCall { name, args, .. } => {
            out.push('$');
            out.push_str(name);
            if !args.is_empty() {
                out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_expr(out, a, 0);
                }
                out.push(')');
            }
        }
    }
}

/// Prints a literal for a delay or replication count context (tight).
#[allow(dead_code)]
fn write_tight(out: &mut String, expr: &Expr) {
    write_expr(out, expr, 20);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinaryOp;
    use crate::node::NodeIdGen;

    #[test]
    fn expr_precedence_printing() {
        let mut g = NodeIdGen::new();
        // (a + b) * c needs parens; a + b * c does not.
        let a = Expr::ident(&mut g, "a");
        let b = Expr::ident(&mut g, "b");
        let c = Expr::ident(&mut g, "c");
        let sum = Expr::binary(&mut g, BinaryOp::Add, a, b);
        let prod = Expr::binary(&mut g, BinaryOp::Mul, sum, c);
        assert_eq!(expr_to_string(&prod), "(a + b) * c");

        let a = Expr::ident(&mut g, "a");
        let b = Expr::ident(&mut g, "b");
        let c = Expr::ident(&mut g, "c");
        let prod = Expr::binary(&mut g, BinaryOp::Mul, b, c);
        let sum = Expr::binary(&mut g, BinaryOp::Add, a, prod);
        assert_eq!(expr_to_string(&sum), "a + b * c");
    }

    #[test]
    fn subtraction_is_left_associative() {
        let mut g = NodeIdGen::new();
        let a = Expr::ident(&mut g, "a");
        let b = Expr::ident(&mut g, "b");
        let c = Expr::ident(&mut g, "c");
        let inner = Expr::binary(&mut g, BinaryOp::Sub, b, c);
        let outer = Expr::binary(&mut g, BinaryOp::Sub, a, inner);
        assert_eq!(expr_to_string(&outer), "a - (b - c)");
    }

    #[test]
    fn statement_printing() {
        let mut g = NodeIdGen::new();
        let s = Stmt::NonBlocking {
            id: g.fresh(),
            lhs: LValue::Ident {
                id: g.fresh(),
                name: "counter_out".into(),
            },
            delay: Some(Expr::literal_u64(&mut g, 1, 32)),
            rhs: {
                let c = Expr::ident(&mut g, "counter_out");
                let one = Expr::literal_u64(&mut g, 1, 32);
                Expr::binary(&mut g, BinaryOp::Add, c, one)
            },
        };
        assert_eq!(
            stmt_to_string(&s).trim(),
            "counter_out <= #32'd1 counter_out + 32'd1;"
        );
    }

    #[test]
    fn string_escaping() {
        let mut g = NodeIdGen::new();
        let e = Expr::Str {
            id: g.fresh(),
            value: "a\n\"b\"".into(),
        };
        assert_eq!(expr_to_string(&e), "\"a\\n\\\"b\\\"\"");
    }
}
