//! Seeded property tests for the shrinker: whatever the input and
//! whatever the (deterministic) finding predicate, the shrunk
//! reproducer must still trigger the original finding class and never
//! grow.

use cirfix_fuzz::shrink;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random multi-line "source": a mix of filler lines and marker lines.
fn random_source(rng: &mut StdRng) -> String {
    let lines = rng.gen_range(1usize..=40);
    (0..lines)
        .map(|_| match rng.gen_range(0usize..5) {
            0 => format!("MARK_{}", rng.gen_range(0u64..4)),
            1 => "wire w;".to_string(),
            2 => format!("assign x = {};", rng.gen_range(0u64..100)),
            3 => String::new(),
            _ => "// filler".to_string(),
        })
        .collect::<Vec<String>>()
        .join("\n")
}

/// A family of synthetic finding predicates, mirroring the shapes real
/// findings take: a single trigger, a conjunction, and a threshold.
fn predicate(kind: usize) -> Box<dyn Fn(&str) -> bool> {
    match kind {
        0 => Box::new(|s: &str| s.contains("MARK_0")),
        1 => Box::new(|s: &str| s.contains("MARK_1") && s.contains("MARK_2")),
        _ => Box::new(|s: &str| s.lines().filter(|l| l.starts_with("MARK_")).count() >= 3),
    }
}

#[test]
fn shrunk_reproducers_still_trigger_the_original_finding() {
    let mut rng = StdRng::seed_from_u64(0xC1F1);
    let mut exercised = 0;
    for _ in 0..200 {
        let source = random_source(&mut rng);
        let kind = rng.gen_range(0usize..3);
        let pred = predicate(kind);
        if !pred(&source) {
            continue;
        }
        exercised += 1;
        let shrunk = shrink(&source, pred.as_ref());
        assert!(
            pred(&shrunk),
            "shrunk text no longer triggers predicate {kind}:\n--- original\n{source}\n--- shrunk\n{shrunk}"
        );
        assert!(
            shrunk.len() <= source.len(),
            "shrinking must never grow the input"
        );
    }
    assert!(exercised >= 30, "property exercised on {exercised} inputs");
}

#[test]
fn shrinking_is_deterministic() {
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..20 {
        let source = random_source(&mut rng);
        let pred = |s: &str| s.contains("MARK_0") || s.lines().count() >= 10;
        if !pred(&source) {
            continue;
        }
        let a = shrink(&source, &pred);
        let b = shrink(&source, &pred);
        assert_eq!(a, b);
    }
}
