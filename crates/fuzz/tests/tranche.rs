//! Integrity checks for the generated tranche committed under
//! `crates/benchmarks/src/generated/`: every scenario's fingerprint
//! must recompute from its source, and every defect must still be
//! caught by its search testbench. Together with the benchmarks
//! crate's manifest cross-check, this pins the committed files to the
//! generator that produced them.

use cirfix::{evaluate, variant_fingerprint, FitnessParams, Patch};
use cirfix_benchmarks::generated_scenarios;
use cirfix_fuzz::gen::project_digest;

#[test]
fn tranche_fingerprints_recompute_from_sources() {
    for s in generated_scenarios() {
        let file = cirfix_parser::parse(s.source).unwrap_or_else(|e| panic!("{}: {e}", s.id));
        let project = s.project_ref();
        let fp = variant_fingerprint(
            project_digest(s.project),
            &file,
            &project.design_module_names(),
        );
        assert_eq!(fp.to_hex(), s.fingerprint, "{}: fingerprint drift", s.id);
    }
}

#[test]
fn tranche_defects_are_caught_and_within_template_distance() {
    // One scenario per difficulty class keeps this cheap while still
    // exercising all three; the full sweep runs opt-in in the
    // benchmarks crate under CIRFIX_GENERATED=1.
    for class in ["easy", "medium", "hard"] {
        let s = generated_scenarios()
            .iter()
            .find(|s| s.class == class)
            .unwrap_or_else(|| panic!("tranche covers the {class} class"));
        let problem = s.problem().unwrap_or_else(|e| panic!("{}: {e}", s.id));
        let eval = evaluate(&problem, &Patch::empty(), FitnessParams::default());
        assert!(
            eval.score < 1.0,
            "{}: defect must be caught (fitness {})",
            s.id,
            eval.score
        );
    }
}
