//! Gating regression-corpus replay.
//!
//! `crates/fuzz/corpus/crashes.jsonl` is a committed, checksummed
//! store segment holding every finding the fuzzer (or hand analysis)
//! has surfaced, shrunk to a minimal reproducer, after the underlying
//! defect was fixed. Replaying it through the full differential
//! harness must be clean: any recurrence is a regression and fails
//! this test (and the matching CI step).
//!
//! To add a record, append it to `canonical_records` and run
//! `cargo test -p cirfix-fuzz --test corpus_replay -- --ignored` to
//! regenerate the committed segment.

use cirfix_fuzz::{replay, CrashRecord};
use cirfix_store::{read_segment, SegmentWriter};
use std::path::PathBuf;

fn corpus_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus/crashes.jsonl")
}

/// The source-of-truth regression list. Each entry names a historical
/// frontend defect; the reproducer is the shrunk input that used to
/// trigger it.
fn canonical_records() -> Vec<CrashRecord> {
    vec![
        CrashRecord::new(
            "panic",
            0,
            "$ ;",
            "tb",
            "lexer: bare `$` hit an unconditional expect()",
        ),
        CrashRecord::new("panic", 0, "$", "tb", "lexer: trailing `$` at end of input"),
        CrashRecord::new(
            "panic",
            0,
            &format!(
                "module tb; initial x = {}0{}; endmodule",
                "(".repeat(2000),
                ")".repeat(2000)
            ),
            "tb",
            "parser: unbounded expression recursion overflowed the stack",
        ),
        CrashRecord::new(
            "panic",
            0,
            &format!("module tb; initial {} end module", "begin ".repeat(2000)),
            "tb",
            "parser: unbounded statement recursion overflowed the stack",
        ),
        CrashRecord::new(
            "panic",
            0,
            &format!("module tb; initial x = {}1; endmodule", "!".repeat(4000)),
            "tb",
            "parser: unbounded unary recursion overflowed the stack",
        ),
        CrashRecord::new(
            "panic",
            0,
            "module tb; initial x = \u{1}; endmodule",
            "tb",
            "lexer: unknown control byte hit unreachable!()",
        ),
    ]
}

#[test]
fn committed_corpus_replays_clean() {
    let (bodies, health) = read_segment(&corpus_path()).expect("committed corpus reads");
    assert!(health.is_clean(), "committed corpus is undamaged");
    let records: Vec<CrashRecord> = bodies.iter().filter_map(CrashRecord::from_json).collect();
    assert_eq!(records.len(), bodies.len(), "every record decodes");
    assert!(!records.is_empty(), "corpus is non-empty");

    // The committed segment may carry more than the canonical list
    // (fuzz runs append), but never less.
    let ids: Vec<&str> = records.iter().map(|r| r.id.as_str()).collect();
    for canonical in canonical_records() {
        assert!(
            ids.contains(&canonical.id.as_str()),
            "canonical record missing from committed corpus: {}",
            canonical.detail
        );
    }

    let report = replay(&records, 0);
    assert_eq!(report.replayed, records.len());
    assert!(
        report.is_clean(),
        "corpus records reproduced findings: {:?}",
        report.regressions
    );
}

/// Regeneration hook, not a test: rewrites the committed segment from
/// `canonical_records`. Run with `-- --ignored` after adding a record.
#[test]
#[ignore = "regenerates the committed corpus; run explicitly"]
fn regenerate_committed_corpus() {
    let path = corpus_path();
    std::fs::create_dir_all(path.parent().expect("corpus dir")).expect("mkdir");
    let _ = std::fs::remove_file(&path);
    let mut w = SegmentWriter::append(&path).expect("open corpus segment");
    for record in canonical_records() {
        w.write_record(&record.to_json()).expect("write record");
    }
    w.sync().expect("sync");
}
