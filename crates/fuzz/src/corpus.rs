//! The crash corpus: shrunk findings persisted as checksummed store
//! records (`<store>/crashes/crashes.jsonl`) and replayed as gating
//! regression tests.
//!
//! Replay semantics are inverted from discovery: a corpus record is a
//! finding that has been *fixed*, so replay asserts the pipeline now
//! handles the input cleanly — any recurrence (panic, hang, or
//! divergence) fails the replay.

use crate::harness::{run_harness, FuzzInput, HarnessConfig, InputOrigin};
use cirfix_sim::{ProbeSpec, SimConfig};
use cirfix_store::{field_str, field_u64, Fnv128};
use cirfix_telemetry::JsonValue;

/// One shrunk, fixed finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashRecord {
    /// Content digest (hex) — stable id, independent of discovery order.
    pub id: String,
    /// Finding class at discovery time (`panic`, `hang`, `divergence`).
    pub class: String,
    /// Seed of the run that found it.
    pub seed: u64,
    /// The shrunk reproducer source.
    pub source: String,
    /// Module elaborated as top during discovery.
    pub top: String,
    /// Human-readable detail from the original finding.
    pub detail: String,
}

impl CrashRecord {
    /// Builds a record, deriving the content id from class + source.
    pub fn new(class: &str, seed: u64, source: &str, top: &str, detail: &str) -> CrashRecord {
        let mut h = Fnv128::new();
        h.write_str("cirfix-crash-v1");
        h.write_str(class);
        h.write_str(source);
        CrashRecord {
            id: h.finish().to_hex(),
            class: class.to_string(),
            seed,
            source: source.to_string(),
            top: top.to_string(),
            detail: detail.to_string(),
        }
    }

    /// Serializes to a store record body.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("id", JsonValue::Str(self.id.clone())),
            ("class", JsonValue::Str(self.class.clone())),
            ("seed", JsonValue::Uint(self.seed)),
            ("source", JsonValue::Str(self.source.clone())),
            ("top", JsonValue::Str(self.top.clone())),
            ("detail", JsonValue::Str(self.detail.clone())),
        ])
    }

    /// Deserializes from a store record body.
    pub fn from_json(v: &JsonValue) -> Option<CrashRecord> {
        Some(CrashRecord {
            id: field_str(v, "id")?.to_string(),
            class: field_str(v, "class")?.to_string(),
            seed: field_u64(v, "seed")?,
            source: field_str(v, "source")?.to_string(),
            top: field_str(v, "top")?.to_string(),
            detail: field_str(v, "detail").unwrap_or_default().to_string(),
        })
    }

    /// The harness input replaying this record. Conservative resource
    /// limits: a regression input must finish fast or it *is* a hang.
    pub fn to_input(&self) -> FuzzInput {
        FuzzInput {
            id: format!("corpus-{}", &self.id[..12.min(self.id.len())]),
            source: self.source.clone(),
            top: self.top.clone(),
            probe: ProbeSpec::periodic(Vec::new(), 0, 1),
            sim: SimConfig {
                max_time: 1_000,
                max_deltas: 800,
                max_ops_per_resume: 50_000,
                max_total_ops: 120_000,
                ..SimConfig::default()
            },
            origin: InputOrigin::Corpus,
        }
    }
}

/// Result of replaying a corpus.
#[derive(Debug, Clone, Default)]
pub struct ReplayReport {
    /// Records replayed.
    pub replayed: usize,
    /// Records that *still* trigger a finding — regressions. Pairs of
    /// (record id, finding class).
    pub regressions: Vec<(String, String)>,
}

impl ReplayReport {
    /// True when no record reproduced a finding.
    pub fn is_clean(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Replays every record through the full differential harness and
/// reports any that still trigger a finding of *any* class (a fixed
/// panic that resurfaces as a divergence is still a regression).
pub fn replay(records: &[CrashRecord], jobs: usize) -> ReplayReport {
    let inputs: Vec<FuzzInput> = records.iter().map(CrashRecord::to_input).collect();
    let report = run_harness(
        &inputs,
        &HarnessConfig {
            jobs,
            ..HarnessConfig::default()
        },
    );
    let mut out = ReplayReport {
        replayed: records.len(),
        ..ReplayReport::default()
    };
    for finding in report.findings {
        let id = finding
            .input_id
            .strip_prefix("corpus-")
            .unwrap_or(&finding.input_id)
            .to_string();
        out.regressions.push((id, finding.class.to_string()));
    }
    out
}

/// Loads corpus records from a store's `crashes/` family, skipping
/// records that fail to decode (they count as damage, not findings).
///
/// # Errors
///
/// Propagates I/O errors from the store.
pub fn load_store_corpus(store: &cirfix_store::Store) -> std::io::Result<Vec<CrashRecord>> {
    let (bodies, _) = store.load_crashes()?;
    Ok(bodies.iter().filter_map(CrashRecord::from_json).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_round_trip_through_json() {
        let r = CrashRecord::new("panic", 9, "module m; endmodule", "m", "boom");
        let back = CrashRecord::from_json(&r.to_json()).expect("decodes");
        assert_eq!(r, back);
    }

    #[test]
    fn id_depends_on_class_and_source_only() {
        let a = CrashRecord::new("panic", 1, "module m; endmodule", "m", "x");
        let b = CrashRecord::new("panic", 2, "module m; endmodule", "m", "y");
        let c = CrashRecord::new("hang", 1, "module m; endmodule", "m", "x");
        assert_eq!(a.id, b.id);
        assert_ne!(a.id, c.id);
    }

    #[test]
    fn fixed_records_replay_clean() {
        let records = vec![
            // Both of these used to panic the frontend (lexer `$` and
            // unbounded recursion); they are fixed, so replay is clean.
            CrashRecord::new("panic", 0, "$ ;", "tb", "lexer: bare dollar"),
            CrashRecord::new(
                "panic",
                0,
                &format!(
                    "module tb; initial x = {}0{}; endmodule",
                    "(".repeat(500),
                    ")".repeat(500)
                ),
                "tb",
                "parser: deep nesting",
            ),
        ];
        let report = replay(&records, 2);
        assert_eq!(report.replayed, 2);
        assert!(report.is_clean(), "regressions: {:?}", report.regressions);
    }
}
