//! Finding shrinker: delta-debugging over source lines, followed by a
//! printer/parser round-trip that canonicalizes whatever survives.
//!
//! The predicate is abstract (`&str → bool`, "does this reduced source
//! still trigger the original finding class"), so the same shrinker
//! serves panics, hangs, and backend divergences — and is testable
//! with synthetic predicates that never touch the simulator.

use cirfix_ast::print::source_to_string;

/// Shrinks `source` to a (locally) minimal text for which `interesting`
/// still holds. `interesting(source)` must be true on entry; the
/// result is guaranteed interesting and no larger than the input.
///
/// Three passes: classic ddmin over lines, a one-line-at-a-time
/// elimination loop to a fixpoint, and — when the reduced text still
/// parses — a reprint through the canonical printer (kept only if the
/// canonical form is itself interesting and not larger).
pub fn shrink(source: &str, interesting: &dyn Fn(&str) -> bool) -> String {
    debug_assert!(interesting(source), "shrink precondition");
    let lines: Vec<&str> = source.lines().collect();
    let kept = ddmin(&lines, interesting);
    let kept = eliminate_single_lines(kept, interesting);
    let mut best = kept.join("\n");
    if let Ok(file) = cirfix_parser::parse(&best) {
        let printed = source_to_string(&file);
        if printed.len() <= best.len() && interesting(&printed) {
            best = printed;
        }
    }
    best
}

/// Zeller's ddmin over a line vector: try dropping complement chunks
/// at increasing granularity until no chunk can be removed.
fn ddmin<'a>(lines: &[&'a str], interesting: &dyn Fn(&str) -> bool) -> Vec<&'a str> {
    let mut current: Vec<&str> = lines.to_vec();
    let mut chunks = 2usize;
    while current.len() >= 2 {
        let chunk_size = current.len().div_ceil(chunks);
        let mut reduced = false;
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk_size).min(current.len());
            let mut candidate: Vec<&str> = Vec::with_capacity(current.len() - (end - start));
            candidate.extend_from_slice(&current[..start]);
            candidate.extend_from_slice(&current[end..]);
            if !candidate.is_empty() && interesting(&candidate.join("\n")) {
                current = candidate;
                chunks = chunks.saturating_sub(1).max(2);
                reduced = true;
                // Restart the sweep on the reduced input.
                start = 0;
                continue;
            }
            start = end;
        }
        if !reduced {
            if chunk_size <= 1 {
                break;
            }
            chunks = (chunks * 2).min(current.len());
        }
    }
    current
}

/// Final polish: drop lines one at a time until a whole sweep removes
/// nothing.
fn eliminate_single_lines<'a>(
    mut current: Vec<&'a str>,
    interesting: &dyn Fn(&str) -> bool,
) -> Vec<&'a str> {
    loop {
        let mut removed = false;
        let mut i = 0;
        while i < current.len() && current.len() > 1 {
            let mut candidate = current.clone();
            candidate.remove(i);
            if interesting(&candidate.join("\n")) {
                current = candidate;
                removed = true;
            } else {
                i += 1;
            }
        }
        if !removed {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_to_the_single_triggering_line() {
        let source = "line a\nline b\nTRIGGER\nline c\nline d\nline e\nline f\nline g";
        let shrunk = shrink(source, &|s: &str| s.contains("TRIGGER"));
        assert_eq!(shrunk, "TRIGGER");
    }

    #[test]
    fn keeps_a_pair_of_jointly_required_lines() {
        let source = "x\nALPHA\ny\nz\nBETA\nw";
        let shrunk = shrink(source, &|s: &str| s.contains("ALPHA") && s.contains("BETA"));
        assert_eq!(shrunk, "ALPHA\nBETA");
    }

    #[test]
    fn result_is_always_interesting_and_no_larger() {
        // A mildly adversarial predicate: interesting iff the text has
        // an odd number of `#` lines.
        let pred = |s: &str| s.lines().filter(|l| l.starts_with('#')).count() % 2 == 1;
        let source = "#1\na\n#2\nb\n#3\nc";
        assert!(pred(source));
        let shrunk = shrink(source, &pred);
        assert!(pred(&shrunk), "postcondition: still interesting");
        assert!(shrunk.len() <= source.len());
    }

    #[test]
    fn parseable_results_are_canonicalized() {
        let source = "junk before\nmodule m; wire w; endmodule";
        let shrunk = shrink(source, &|s: &str| s.contains("module m"));
        assert!(
            cirfix_parser::parse(&shrunk).is_ok(),
            "shrunk to valid Verilog: {shrunk}"
        );
    }
}
