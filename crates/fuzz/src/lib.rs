//! `cirfix-fuzz`: seeded defect-transplantation fuzzer and frontend
//! robustness harness.
//!
//! Three planes (see DESIGN.md):
//!
//! 1. **Generator** ([`gen`]) — runs the Table-1 repair-template
//!    catalog *forward* over the golden benchmark designs, keeping
//!    variants whose testbench catches the transplanted defect.
//! 2. **Harness** ([`harness`]) — drives generated variants plus
//!    byte/token mutations of valid sources through the whole
//!    frontend with panics contained and a differential oracle
//!    cross-checking the packed and per-bit logic backends and the
//!    bytecode and tree-walk executors.
//! 3. **Triage** ([`shrink`], [`corpus`]) — delta-debugs each finding
//!    to a minimal reproducer and persists it as a checksummed store
//!    record, replayed afterwards as a gating regression test.
//!
//! Everything is seed-deterministic: for a fixed `(seed, budget)` the
//! manifest is byte-identical across reruns and worker counts.

pub mod corpus;
pub mod gen;
pub mod harness;
pub mod mutate;
pub mod shrink;

pub use corpus::{load_store_corpus, replay, CrashRecord, ReplayReport};
pub use gen::{generate_scenarios, Difficulty, GenConfig, GenScenario};
pub use harness::{
    run_harness, run_one, Finding, FuzzInput, HarnessConfig, HarnessReport, InputOrigin, RunStatus,
};
pub use mutate::mutated_inputs;
pub use shrink::shrink;

use cirfix_sim::ProbeSpec;
use cirfix_telemetry::JsonValue;
use std::time::Duration;

/// Top-level fuzz run configuration.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed: drives generator sampling and input mutation.
    pub seed: u64,
    /// Total inputs through the harness (generated scenarios first,
    /// mutated inputs fill the remainder).
    pub budget: usize,
    /// Worker threads (`0` = auto). Output is identical for any value.
    pub jobs: usize,
    /// Generator knobs (`classify` stays off during fuzzing — it is a
    /// tranche-building concern).
    pub generator: GenConfig,
    /// Per-input wall-clock backstop.
    pub per_input_timeout: Duration,
    /// Run the reference-backend differential phase.
    pub differential: bool,
    /// Shrink findings to minimal reproducers (slow when findings
    /// exist; free when there are none).
    pub shrink: bool,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            seed: 1,
            budget: 200,
            jobs: 0,
            generator: GenConfig::default(),
            per_input_timeout: Duration::from_secs(10),
            differential: true,
            shrink: true,
        }
    }
}

/// Aggregated outcome counts over one phase-A pass, in input order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FuzzStats {
    /// Inputs driven through the harness.
    pub inputs: usize,
    /// Generated defect scenarios among them.
    pub generated: usize,
    /// Inputs the frontend rejected.
    pub parse_errors: usize,
    /// Inputs that simulated to completion.
    pub sim_ok: usize,
    /// Inputs that hit a deterministic simulator error.
    pub sim_errors: usize,
}

/// The result of [`run_fuzz`].
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Seed the run used.
    pub seed: u64,
    /// Outcome counts.
    pub stats: FuzzStats,
    /// Findings, shrunk (when configured) and deduped by content id.
    pub findings: Vec<CrashRecord>,
    /// The generated scenarios that fed the run.
    pub scenarios: Vec<GenScenario>,
}

impl FuzzReport {
    /// Deterministic single-line JSON manifest. Byte-identical across
    /// reruns and worker counts for the same `(seed, budget)`.
    pub fn manifest_json(&self) -> String {
        let findings: Vec<JsonValue> = self
            .findings
            .iter()
            .map(|f| {
                JsonValue::obj(vec![
                    ("id", JsonValue::Str(f.id.clone())),
                    ("class", JsonValue::Str(f.class.clone())),
                    ("source", JsonValue::Str(f.source.clone())),
                    ("detail", JsonValue::Str(f.detail.clone())),
                ])
            })
            .collect();
        JsonValue::obj(vec![
            ("seed", JsonValue::Uint(self.seed)),
            ("inputs", JsonValue::Uint(self.stats.inputs as u64)),
            ("generated", JsonValue::Uint(self.stats.generated as u64)),
            (
                "parse_errors",
                JsonValue::Uint(self.stats.parse_errors as u64),
            ),
            ("sim_ok", JsonValue::Uint(self.stats.sim_ok as u64)),
            ("sim_errors", JsonValue::Uint(self.stats.sim_errors as u64)),
            ("findings", JsonValue::Array(findings)),
        ])
        .to_json()
    }
}

/// Builds the harness input for one generated scenario.
fn scenario_input(index: usize, s: &GenScenario) -> FuzzInput {
    let project = cirfix_benchmarks::project(s.project).expect("generated from a known project");
    FuzzInput {
        id: format!("generated-{index}"),
        source: s.source.clone(),
        top: project.top.to_string(),
        probe: ProbeSpec::periodic(
            project
                .probe_signals
                .iter()
                .map(|sig| sig.to_string())
                .collect(),
            project.probe_start,
            project.probe_period,
        ),
        sim: project.sim_config(),
        origin: InputOrigin::Generated,
    }
}

/// One full fuzz run: generate, mutate, drive, triage.
pub fn run_fuzz(config: &FuzzConfig) -> FuzzReport {
    let generator = GenConfig {
        seed: config.seed,
        jobs: config.jobs,
        classify: false,
        ..config.generator.clone()
    };
    let scenarios = generate_scenarios(&generator);

    // Generated scenarios take at most half the budget, so grammar
    // mutation always gets its share of frontend coverage.
    let mut inputs: Vec<FuzzInput> = scenarios
        .iter()
        .take(config.budget.div_ceil(2))
        .enumerate()
        .map(|(i, s)| scenario_input(i, s))
        .collect();
    let remainder = config.budget.saturating_sub(inputs.len());
    inputs.extend(mutated_inputs(config.seed, remainder));

    let harness_config = HarnessConfig {
        jobs: config.jobs,
        per_input_timeout: config.per_input_timeout,
        differential: config.differential,
    };
    let report = run_harness(&inputs, &harness_config);

    let mut stats = FuzzStats {
        inputs: inputs.len(),
        generated: inputs.len() - remainder,
        ..FuzzStats::default()
    };
    for status in &report.statuses {
        match status {
            RunStatus::ParseError => stats.parse_errors += 1,
            RunStatus::SimOk(_) => stats.sim_ok += 1,
            RunStatus::SimError(_) => stats.sim_errors += 1,
            RunStatus::Cancelled | RunStatus::Panic(_) => {}
        }
    }

    let mut findings = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for finding in &report.findings {
        let input = inputs
            .iter()
            .find(|i| i.id == finding.input_id)
            .expect("finding references its input");
        let source = if config.shrink {
            shrink_finding(input, finding, &harness_config)
        } else {
            finding.source.clone()
        };
        let record = CrashRecord::new(
            finding.class,
            config.seed,
            &source,
            &input.top,
            &finding.detail,
        );
        if seen.insert(record.id.clone()) {
            findings.push(record);
        }
    }
    findings.sort_by(|a, b| a.id.cmp(&b.id));

    FuzzReport {
        seed: config.seed,
        stats,
        findings,
        scenarios,
    }
}

/// Shrinks one finding with a class-preserving predicate: a candidate
/// reduction is interesting iff replaying it through the (single-input)
/// differential harness still yields a finding of the same class.
fn shrink_finding(input: &FuzzInput, finding: &Finding, config: &HarnessConfig) -> String {
    let probe_config = HarnessConfig {
        jobs: 1,
        ..config.clone()
    };
    let reproduces = |source: &str| -> bool {
        let candidate = FuzzInput {
            source: source.to_string(),
            ..input.clone()
        };
        run_harness(std::slice::from_ref(&candidate), &probe_config)
            .findings
            .iter()
            .any(|f| f.class == finding.class)
    };
    if !reproduces(&finding.source) {
        // Flaky finding (e.g. a wall-clock hang that does not recur):
        // keep the original text rather than shrinking against noise.
        return finding.source.clone();
    }
    shrink::shrink(&finding.source, &reproduces)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(jobs: usize) -> FuzzConfig {
        FuzzConfig {
            seed: 11,
            budget: 24,
            jobs,
            generator: GenConfig {
                max_candidates: 6,
                max_per_project: 2,
                ..GenConfig::default()
            },
            ..FuzzConfig::default()
        }
    }

    #[test]
    fn manifest_is_byte_identical_across_jobs_and_reruns() {
        let a = run_fuzz(&quick_config(1)).manifest_json();
        let b = run_fuzz(&quick_config(4)).manifest_json();
        let c = run_fuzz(&quick_config(1)).manifest_json();
        assert_eq!(a, b, "jobs=1 vs jobs=4");
        assert_eq!(a, c, "rerun");
    }

    #[test]
    fn run_covers_generated_and_mutated_inputs() {
        let report = run_fuzz(&quick_config(0));
        assert_eq!(report.stats.inputs, 24);
        assert!(report.stats.generated > 0, "some generated scenarios");
        assert!(report.stats.generated < 24, "mutated inputs fill the rest");
        assert!(
            report.stats.parse_errors + report.stats.sim_ok + report.stats.sim_errors > 0,
            "statuses are tallied"
        );
        assert!(
            report.findings.is_empty(),
            "findings: {:?}",
            report.findings
        );
    }
}
