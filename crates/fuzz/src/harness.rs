//! Robustness harness: drives inputs through the full frontend
//! (parse → lint → elaborate → compile → simulate) with every panic
//! contained, then cross-checks the two logic backends and the two
//! expression execution modes against each other.
//!
//! The backend (`cirfix_logic::set_backend`) and execution mode
//! (`cirfix_sim::set_exec_mode`) are process-wide atomics, so the
//! differential oracle runs in sequential *phases*: phase A simulates
//! every input under the production pair (packed words + bytecode),
//! phase B re-simulates under the reference pair (per-bit + tree-walk),
//! and the per-input outcomes are compared afterwards. Each phase is
//! internally parallel; the two configurations are never mixed across
//! threads.

use cirfix::simulate_with_probe_cancellable;
use cirfix_logic::Backend;
use cirfix_sim::{CancelToken, ExecMode, ProbeSpec, SimConfig, SimError};
use cirfix_store::Fnv128;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Where a fuzz input came from (recorded in findings for triage).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputOrigin {
    /// A generated defect scenario (valid Verilog by construction).
    Generated,
    /// A byte/token-level mutation of a valid benchmark source.
    Mutated,
    /// A replayed corpus record.
    Corpus,
}

impl InputOrigin {
    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            InputOrigin::Generated => "generated",
            InputOrigin::Mutated => "mutated",
            InputOrigin::Corpus => "corpus",
        }
    }
}

/// One input to the harness: a source text plus the elaboration and
/// instrumentation context it should be driven under.
#[derive(Debug, Clone)]
pub struct FuzzInput {
    /// Stable id (`<origin>-<n>` or a corpus digest).
    pub id: String,
    /// Verilog source text.
    pub source: String,
    /// Module to elaborate as top.
    pub top: String,
    /// Instrumentation to attach.
    pub probe: ProbeSpec,
    /// Simulation resource limits (these, not wall clock, are what
    /// normally bound a run — keeping outcomes machine-independent).
    pub sim: SimConfig,
    /// Provenance.
    pub origin: InputOrigin,
}

/// Outcome of running one input through the pipeline under one
/// backend/exec-mode configuration. Everything in here is a pure
/// function of the input (wall-clock cancellation aside), so two
/// configurations can be compared field by field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunStatus {
    /// The frontend rejected the source (expected for mutated inputs).
    ParseError,
    /// Simulated to completion; carries the trace/log digest.
    SimOk(String),
    /// A deterministic simulator error (elaboration, oscillation,
    /// runaway, step-limit, runtime), by stable kind label.
    SimError(&'static str),
    /// The wall-clock backstop fired. Excluded from differential
    /// comparison (machine-dependent) but reported as a hang finding.
    Cancelled,
    /// A contained panic; carries the (truncated) panic message.
    Panic(String),
}

/// A confirmed robustness finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Id of the offending input.
    pub input_id: String,
    /// Provenance of the offending input.
    pub origin: InputOrigin,
    /// Finding class: `panic`, `hang`, or `divergence`.
    pub class: &'static str,
    /// Offending source text (pre-shrink).
    pub source: String,
    /// Human-readable detail (panic message, diverging statuses).
    pub detail: String,
}

/// Harness knobs.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Worker threads per phase (`0` = auto).
    pub jobs: usize,
    /// Wall-clock backstop per input. The simulator's own operation
    /// budgets are expected to bind long before this does; if this
    /// fires it *is* a finding (class `hang`).
    pub per_input_timeout: Duration,
    /// Cross-check packed/bytecode against reference/tree-walk.
    pub differential: bool,
}

impl Default for HarnessConfig {
    fn default() -> HarnessConfig {
        HarnessConfig {
            jobs: 0,
            per_input_timeout: Duration::from_secs(10),
            differential: true,
        }
    }
}

/// Result of a harness run: per-input statuses (production phase,
/// input order) plus the findings distilled from both phases.
#[derive(Debug, Clone)]
pub struct HarnessReport {
    /// Phase-A (packed + bytecode) status per input, in input order.
    pub statuses: Vec<RunStatus>,
    /// Confirmed findings, in input order.
    pub findings: Vec<Finding>,
}

/// Serializes harness runs within one process: the differential phases
/// flip process-wide backend state, so two concurrent harnesses (e.g.
/// two tests in one binary) must not interleave.
static HARNESS_LOCK: Mutex<()> = Mutex::new(());

/// Runs every input through both differential phases and distills
/// findings. Restores the production backend/exec-mode on exit.
pub fn run_harness(inputs: &[FuzzInput], config: &HarnessConfig) -> HarnessReport {
    let _guard = HARNESS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let jobs = cirfix::resolve_jobs(config.jobs);

    cirfix_logic::set_backend(Backend::Packed);
    cirfix_sim::set_exec_mode(ExecMode::Bytecode);
    let phase_a = run_phase(inputs, jobs, config.per_input_timeout);

    let phase_b = if config.differential {
        cirfix_logic::set_backend(Backend::Reference);
        cirfix_sim::set_exec_mode(ExecMode::TreeWalk);
        // Parsing and linting are backend-independent; only inputs
        // that reached the simulator need a reference run.
        let rerun: Vec<bool> = phase_a
            .iter()
            .map(|s| !matches!(s, RunStatus::ParseError))
            .collect();
        let statuses = run_phase_filtered(inputs, &rerun, jobs, config.per_input_timeout);
        cirfix_logic::set_backend(Backend::Packed);
        cirfix_sim::set_exec_mode(ExecMode::Bytecode);
        Some(statuses)
    } else {
        None
    };

    let mut findings = Vec::new();
    for (i, input) in inputs.iter().enumerate() {
        let a = &phase_a[i];
        let b = phase_b.as_ref().map(|p| &p[i]);
        collect_findings(input, a, b, &mut findings);
    }
    HarnessReport {
        statuses: phase_a,
        findings,
    }
}

/// Distills findings for one input from its phase outcomes.
fn collect_findings(
    input: &FuzzInput,
    a: &RunStatus,
    b: Option<&RunStatus>,
    findings: &mut Vec<Finding>,
) {
    let mut push = |class, detail: String| {
        findings.push(Finding {
            input_id: input.id.clone(),
            origin: input.origin,
            class,
            source: input.source.clone(),
            detail,
        });
    };
    for (phase, status) in [("packed/bytecode", Some(a)), ("reference/tree-walk", b)] {
        match status {
            Some(RunStatus::Panic(msg)) => push("panic", format!("{phase}: {msg}")),
            Some(RunStatus::Cancelled) => {
                push("hang", format!("{phase}: wall-clock backstop fired"));
            }
            _ => {}
        }
    }
    if let Some(b) = b {
        let comparable = |s: &RunStatus| {
            !matches!(
                s,
                RunStatus::Cancelled | RunStatus::Panic(_) | RunStatus::ParseError
            )
        };
        if comparable(a) && comparable(b) && a != b {
            push(
                "divergence",
                format!("packed/bytecode: {a:?} vs reference/tree-walk: {b:?}"),
            );
        }
    }
}

/// Runs one phase over all inputs on a scoped worker pool, returning
/// statuses in input order (independent of worker scheduling).
fn run_phase(inputs: &[FuzzInput], jobs: usize, timeout: Duration) -> Vec<RunStatus> {
    let all = vec![true; inputs.len()];
    run_phase_filtered(inputs, &all, jobs, timeout)
}

/// Like [`run_phase`], but skips inputs whose `selected` flag is
/// false (their slot repeats [`RunStatus::ParseError`]).
fn run_phase_filtered(
    inputs: &[FuzzInput],
    selected: &[bool],
    jobs: usize,
    timeout: Duration,
) -> Vec<RunStatus> {
    if inputs.is_empty() {
        return Vec::new();
    }
    let workers = jobs.max(1).min(inputs.len());
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<RunStatus>>> = inputs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= inputs.len() {
                    break;
                }
                let status = if selected[i] {
                    run_one(&inputs[i], timeout)
                } else {
                    RunStatus::ParseError
                };
                *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(status);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .unwrap_or(RunStatus::ParseError)
        })
        .collect()
}

/// Longest panic message kept in findings and corpus records.
const PANIC_MSG_LIMIT: usize = 200;

/// Drives one input through parse → lint → simulate with the panic
/// contained. This is *the* pipeline the fuzzer hardens; the corpus
/// replayer calls it too.
pub fn run_one(input: &FuzzInput, timeout: Duration) -> RunStatus {
    let result = catch_unwind(AssertUnwindSafe(|| run_one_inner(input, timeout)));
    match result {
        Ok(status) => status,
        Err(payload) => RunStatus::Panic(truncate(&panic_message(payload), PANIC_MSG_LIMIT)),
    }
}

fn run_one_inner(input: &FuzzInput, timeout: Duration) -> RunStatus {
    let Ok(file) = cirfix_parser::parse(&input.source) else {
        return RunStatus::ParseError;
    };
    // Lint must never panic, whatever the tree shape; its findings are
    // irrelevant here.
    let _ = cirfix_lint::lint_file(&file);
    let cancel = CancelToken::with_deadline(Instant::now() + timeout);
    match simulate_with_probe_cancellable(&file, &input.top, &input.probe, &input.sim, Some(cancel))
    {
        Ok((outcome, trace, log)) => {
            let mut h = Fnv128::new();
            h.write_str("cirfix-fuzz-trace-v1");
            h.write_str(&trace.to_csv());
            for line in &log {
                h.write_str(line);
                h.write_str("\n");
            }
            h.write(&outcome.end_time.to_le_bytes());
            h.write(&[u8::from(outcome.finished)]);
            RunStatus::SimOk(h.finish().to_hex())
        }
        Err(SimError::Cancelled { .. }) => RunStatus::Cancelled,
        Err(SimError::Elaboration(_)) => RunStatus::SimError("elaboration"),
        Err(SimError::Oscillation { .. }) => RunStatus::SimError("oscillation"),
        Err(SimError::RunawayProcess { .. }) => RunStatus::SimError("runaway"),
        Err(SimError::StepLimit { .. }) => RunStatus::SimError("step-limit"),
        Err(_) => RunStatus::SimError("runtime"),
    }
}

/// Extracts the human-readable part of a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn truncate(s: &str, limit: usize) -> String {
    if s.len() <= limit {
        return s.to_string();
    }
    let mut end = limit;
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    s[..end].to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(source: &str) -> FuzzInput {
        FuzzInput {
            id: "t-0".to_string(),
            source: source.to_string(),
            top: "tb".to_string(),
            probe: ProbeSpec::periodic(vec!["q".to_string()], 0, 1),
            sim: SimConfig {
                max_time: 20,
                max_deltas: 100,
                max_ops_per_resume: 10_000,
                max_total_ops: 50_000,
                ..SimConfig::default()
            },
            origin: InputOrigin::Mutated,
        }
    }

    const TB: &str = "module tb; reg q; initial begin q = 0; #1 q = 1; #1 $finish; end endmodule";

    #[test]
    fn valid_source_simulates_identically_in_both_phases() {
        let inputs = vec![input(TB)];
        let report = run_harness(&inputs, &HarnessConfig::default());
        assert!(matches!(report.statuses[0], RunStatus::SimOk(_)));
        assert!(
            report.findings.is_empty(),
            "no findings: {:?}",
            report.findings
        );
    }

    #[test]
    fn garbage_is_a_parse_error_not_a_finding() {
        let inputs = vec![input("]]]] module garbage \u{7f}")];
        let report = run_harness(&inputs, &HarnessConfig::default());
        assert_eq!(report.statuses[0], RunStatus::ParseError);
        assert!(report.findings.is_empty());
    }

    #[test]
    fn statuses_are_identical_across_jobs() {
        let sources = [
            TB,
            "module tb; endmodule",
            "garbage",
            "module tb; reg q; endmodule",
        ];
        let inputs: Vec<FuzzInput> = sources.iter().map(|s| input(s)).collect();
        let runs: Vec<HarnessReport> = [1usize, 4]
            .iter()
            .map(|&jobs| {
                run_harness(
                    &inputs,
                    &HarnessConfig {
                        jobs,
                        ..HarnessConfig::default()
                    },
                )
            })
            .collect();
        assert_eq!(runs[0].statuses, runs[1].statuses);
    }
}
