//! Defect-transplantation scenario generator.
//!
//! Repair templates map faulty code to fixed code; running the same
//! catalog *forward on a golden design* transplants a defect that is —
//! by construction — within template-repair distance of the original.
//! The generator enumerates every applicable template instance over
//! each golden benchmark design, keeps only the variants whose search
//! testbench actually *catches* the defect (the fitness score against
//! the golden oracle drops below 1.0 while the design still compiles),
//! dedups structurally identical variants by store fingerprint, and —
//! when asked — classifies each survivor by how deep the brute-force
//! baseline must search before repairing it.

use cirfix::{
    all_stmt_ids, applicable_templates, apply_patch, brute_force_repair, evaluate_many,
    variant_fingerprint, BruteConfig, Edit, FaultLoc, FitnessParams, Patch, RepairProblem,
    RepairStatus,
};
use cirfix_ast::print::source_to_string;
use cirfix_ast::SourceFile;
use cirfix_benchmarks::{projects, Project};
use cirfix_store::{Digest, Fnv128};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::time::Duration;

/// How deep the brute-force baseline had to search to repair a
/// generated defect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Difficulty {
    /// Repaired within phase 1 (systematic single edits).
    Easy,
    /// Repaired, but only by the random multi-edit phase.
    Medium,
    /// Not repaired within the classification budget.
    Hard,
}

impl Difficulty {
    /// Stable lowercase label (used in manifests and file names).
    pub fn label(self) -> &'static str {
        match self {
            Difficulty::Easy => "easy",
            Difficulty::Medium => "medium",
            Difficulty::Hard => "hard",
        }
    }
}

/// One generated defect scenario: a golden design with a transplanted,
/// testbench-caught fault.
#[derive(Debug, Clone)]
pub struct GenScenario {
    /// Owning benchmark project name.
    pub project: &'static str,
    /// The single-edit defect patch (relative to the golden design).
    pub patch: Patch,
    /// Full variant source (design modules + search testbench), printed.
    pub source: String,
    /// Structural fingerprint of the variant design modules.
    pub fingerprint: Digest,
    /// Fitness of the defective variant against the golden oracle
    /// (strictly below 1.0 — that is what "caught" means).
    pub score: f64,
    /// Brute-force difficulty class, when classification ran.
    pub difficulty: Option<Difficulty>,
}

/// Generator knobs. All defaults are deterministic; the `seed` only
/// controls which candidate edits are *sampled* when a project has
/// more applicable template instances than `max_candidates`.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// RNG seed for candidate sampling.
    pub seed: u64,
    /// Candidate edits evaluated per project (sampled when exceeded).
    pub max_candidates: usize,
    /// Kept scenarios per project (first-caught order).
    pub max_per_project: usize,
    /// Additional multi-edit (2–3 template) defect candidates sampled
    /// per project. Compound defects are what pushes scenarios out of
    /// the brute-force single-edit phase into the medium/hard classes.
    pub multi_candidates: usize,
    /// Run the brute-force difficulty classification (slow).
    pub classify: bool,
    /// Evaluation worker threads (`0` = auto). Results are identical
    /// for every value.
    pub jobs: usize,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            seed: 1,
            max_candidates: 48,
            max_per_project: 12,
            multi_candidates: 12,
            classify: false,
            jobs: 0,
        }
    }
}

/// Digest naming a project inside variant fingerprints, so the same
/// structural variant of two different projects never collides.
/// Public so the committed tranche's fingerprints can be re-verified.
pub fn project_digest(name: &str) -> Digest {
    let mut h = Fnv128::new();
    h.write_str("cirfix-fuzz-project-v1");
    h.write_str(name);
    h.finish()
}

/// Lint error count over the design modules — used to reject defects
/// that a static pass would flag before any simulation runs. The fuzz
/// corpus wants *dynamically* caught defects.
fn lint_errors(file: &SourceFile, design_modules: &[String]) -> usize {
    cirfix_lint::lint_modules(file, design_modules)
        .iter()
        .filter(|(_, d)| matches!(d.severity, cirfix_lint::Severity::Error))
        .count()
}

/// Generates defect scenarios for every benchmark project.
///
/// Deterministic for a fixed config: candidate enumeration follows
/// template order, sampling uses the seeded RNG, the catch-check runs
/// through [`evaluate_many`] (submission-ordered results, identical
/// for every `jobs`), and classification pins its own seed and an
/// effectively unbounded wall clock so only the evaluation budget
/// binds.
pub fn generate_scenarios(config: &GenConfig) -> Vec<GenScenario> {
    let mut out = Vec::new();
    for project in projects() {
        out.extend(generate_for_project(project, config));
    }
    out
}

/// Generates defect scenarios for one project. See
/// [`generate_scenarios`].
pub fn generate_for_project(project: &Project, config: &GenConfig) -> Vec<GenScenario> {
    let Ok(problem) = project.golden_problem() else {
        return Vec::new();
    };
    let golden = &problem.source;
    let design_modules = &problem.design_modules;
    let baseline_errors = lint_errors(golden, design_modules);

    // Candidate defects: every template instance, sampled down when
    // the catalog is large. Sampling (not truncation) keeps coverage
    // spread over the whole design rather than its first statements.
    let all_edits = applicable_templates(golden, design_modules, &FaultLoc::default());
    let mut rng = StdRng::seed_from_u64(config.seed ^ cirfix_store::fnv64(project.name.as_bytes()));
    let singles: Vec<Patch> = {
        let mut singles = all_edits.clone();
        if singles.len() > config.max_candidates {
            singles.shuffle(&mut rng);
            singles.truncate(config.max_candidates);
        }
        singles.into_iter().map(Patch::single).collect()
    };
    // Compound defects: 2–3 independent template edits stacked. These
    // usually need the brute-force random phase (or defeat it) to
    // repair, populating the medium/hard classes.
    let mut multis: Vec<Patch> = Vec::new();
    if all_edits.len() >= 2 {
        for _ in 0..config.multi_candidates {
            let k = 2 + usize::from(rng.gen_bool(0.4));
            let edits: Vec<Edit> = (0..k)
                .map(|_| all_edits[rng.gen_range(0..all_edits.len())].clone())
                .collect();
            multis.push(Patch { edits });
        }
    }
    // Interleave so the per-project cap keeps a mix of both kinds
    // (singles alone would fill it before any compound defect is
    // considered).
    let mut candidates: Vec<Patch> = Vec::with_capacity(singles.len() + multis.len());
    let mut s = singles.into_iter();
    let mut m = multis.into_iter();
    loop {
        match (s.next(), m.next()) {
            (None, None) => break,
            (a, b) => candidates.extend(a.into_iter().chain(b)),
        }
    }

    // Static filter first (cheap): a defect the linter would flag is
    // not interesting to transplant. Then the catch-check: one
    // simulation per surviving candidate, batched across the pool.
    let mut patches = Vec::new();
    let mut variants = Vec::new();
    for patch in candidates {
        let (variant, stats) = apply_patch(golden, design_modules, &patch);
        // Every edit must land: a compound patch whose later edits went
        // stale degenerates into a duplicate of a simpler defect.
        if stats.applied < patch.edits.len() {
            continue;
        }
        if lint_errors(&variant, design_modules) > baseline_errors {
            continue;
        }
        patches.push(patch);
        variants.push(variant);
    }
    let evals = evaluate_many(&problem, &patches, FitnessParams::default(), config.jobs);

    let mut seen: HashSet<Digest> = HashSet::new();
    let scenario = project_digest(project.name);
    let mut kept = Vec::new();
    for ((patch, variant), eval) in patches.into_iter().zip(variants).zip(evals) {
        if kept.len() >= config.max_per_project {
            break;
        }
        // "Caught" = the variant still elaborates and simulates, but
        // no longer matches the oracle. Variants the testbench cannot
        // distinguish from golden are useless as repair scenarios.
        if !eval.compiled || eval.score >= 1.0 {
            continue;
        }
        let fingerprint = variant_fingerprint(scenario, &variant, design_modules);
        if !seen.insert(fingerprint) {
            continue;
        }
        let difficulty = config
            .classify
            .then(|| classify(&problem, &variant, config.jobs));
        kept.push(GenScenario {
            project: project.name,
            patch,
            source: source_to_string(&variant),
            fingerprint,
            score: eval.score,
            difficulty,
        });
    }
    kept
}

/// Extra random-phase evaluations granted beyond phase 1 before a
/// defect is declared [`Difficulty::Hard`].
const CLASSIFY_EXTRA_EVALS: u64 = 2500;

/// Classifies a variant by replaying the brute-force baseline against
/// it: repaired within the systematic single-edit phase → easy; within
/// the random multi-edit budget → medium; otherwise hard. The wall
/// clock is set far beyond any real run so only `max_evals` binds and
/// the class is machine-independent.
fn classify(problem: &RepairProblem, variant: &SourceFile, jobs: usize) -> Difficulty {
    let faulty = RepairProblem {
        source: variant.clone(),
        ..problem.clone()
    };
    let singles = applicable_templates(variant, &faulty.design_modules, &FaultLoc::default()).len()
        as u64
        + all_stmt_ids(variant, &faulty.design_modules).len() as u64;
    let result = brute_force_repair(
        &faulty,
        BruteConfig {
            timeout: Duration::from_secs(1 << 20),
            max_evals: singles + CLASSIFY_EXTRA_EVALS,
            seed: 7,
            jobs,
            ..BruteConfig::default()
        },
    );
    match result.status {
        RepairStatus::Plausible if result.fitness_evals <= singles => Difficulty::Easy,
        RepairStatus::Plausible => Difficulty::Medium,
        _ => Difficulty::Hard,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> GenConfig {
        GenConfig {
            max_candidates: 12,
            max_per_project: 4,
            ..GenConfig::default()
        }
    }

    #[test]
    fn generated_scenarios_are_caught_and_deduped() {
        let project = cirfix_benchmarks::project("decoder_3_to_8").expect("project exists");
        let scenarios = generate_for_project(project, &small_config());
        assert!(!scenarios.is_empty(), "decoder yields at least one defect");
        let mut seen = HashSet::new();
        for s in &scenarios {
            assert!(s.score < 1.0, "defect is caught by the testbench");
            assert!(seen.insert(s.fingerprint), "fingerprints are unique");
            assert!(s.source.contains("module"), "source is printable");
        }
    }

    #[test]
    fn generation_is_deterministic_across_jobs() {
        let project = cirfix_benchmarks::project("decoder_3_to_8").expect("project exists");
        let runs: Vec<Vec<GenScenario>> = [1usize, 4]
            .iter()
            .map(|&jobs| {
                generate_for_project(
                    project,
                    &GenConfig {
                        jobs,
                        ..small_config()
                    },
                )
            })
            .collect();
        let keys = |v: &[GenScenario]| -> Vec<(Digest, String)> {
            v.iter()
                .map(|s| (s.fingerprint, s.source.clone()))
                .collect()
        };
        assert_eq!(keys(&runs[0]), keys(&runs[1]));
    }
}
