//! Grammar-level input mutation: seeded byte/token corruption of the
//! valid benchmark sources. These inputs exercise the frontend's error
//! paths — most fail to parse (which is fine: a clean `ParseError` is
//! the expected outcome), and the survivors probe elaboration and
//! simulation with shapes no hand-written design would take.

use crate::harness::{FuzzInput, InputOrigin};
use cirfix_benchmarks::{projects, Project};
use cirfix_sim::ProbeSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Verilog-ish tokens inserted whole, so mutations reach past the
/// lexer into parser and elaboration territory instead of always
/// dying on an illegal character.
const TOKENS: &[&str] = &[
    "begin",
    "end",
    "if",
    "else",
    "always",
    "initial",
    "assign",
    "module",
    "endmodule",
    "posedge",
    "negedge",
    "wire",
    "reg",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
    ";",
    ",",
    "=",
    "<=",
    "@",
    "#",
    "~",
    "^",
    "&",
    "|",
    "!",
    "?",
    ":",
    "1'b1",
    "1'bx",
    "8'hff",
    "32'd0",
    "$finish",
    "$display",
];

/// SplitMix64 — derives one independent per-input seed from the master
/// seed, so inputs can be generated in any order (or in parallel)
/// without sharing RNG state.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Builds `count` mutated inputs from the benchmark sources,
/// deterministically from `seed`. Input `i` of a given seed is always
/// the same byte string.
pub fn mutated_inputs(seed: u64, count: usize) -> Vec<FuzzInput> {
    let pool = projects();
    (0..count)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(splitmix64(
                seed ^ (i as u64).wrapping_mul(0x9e3779b97f4a7c15),
            ));
            let project = &pool[rng.gen_range(0..pool.len())];
            let source = mutate_source(project, pool, &mut rng);
            FuzzInput {
                id: format!("mutated-{i}"),
                source,
                top: project.top.to_string(),
                probe: ProbeSpec::periodic(
                    project
                        .probe_signals
                        .iter()
                        .map(|s| s.to_string())
                        .collect(),
                    project.probe_start,
                    project.probe_period,
                ),
                sim: project.sim_config(),
                origin: InputOrigin::Mutated,
            }
        })
        .collect()
}

/// Applies 1–4 random mutation operators to a project's full source.
fn mutate_source(project: &Project, pool: &[Project], rng: &mut StdRng) -> String {
    let mut bytes: Vec<u8> = format!("{}\n{}", project.design, project.testbench).into_bytes();
    let ops = rng.gen_range(1usize..=4);
    for _ in 0..ops {
        apply_op(&mut bytes, pool, rng);
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

fn apply_op(bytes: &mut Vec<u8>, pool: &[Project], rng: &mut StdRng) {
    if bytes.is_empty() {
        bytes.extend_from_slice(b"module m; endmodule");
        return;
    }
    match rng.gen_range(0usize..6) {
        // Flip one byte to a random printable character.
        0 => {
            let i = rng.gen_range(0..bytes.len());
            bytes[i] = rng.gen_range(0x20..0x7fu8);
        }
        // Delete a short span.
        1 => {
            let start = rng.gen_range(0..bytes.len());
            let len = rng.gen_range(1usize..=16).min(bytes.len() - start);
            bytes.drain(start..start + len);
        }
        // Duplicate a short span in place.
        2 => {
            let start = rng.gen_range(0..bytes.len());
            let len = rng.gen_range(1usize..=16).min(bytes.len() - start);
            let span: Vec<u8> = bytes[start..start + len].to_vec();
            let at = rng.gen_range(0..=bytes.len());
            bytes.splice(at..at, span);
        }
        // Insert a whole Verilog token.
        3 => {
            let token = TOKENS[rng.gen_range(0..TOKENS.len())];
            let at = rng.gen_range(0..=bytes.len());
            let mut ins = Vec::with_capacity(token.len() + 2);
            ins.push(b' ');
            ins.extend_from_slice(token.as_bytes());
            ins.push(b' ');
            bytes.splice(at..at, ins);
        }
        // Splice a random line from another project's design.
        4 => {
            let donor = &pool[rng.gen_range(0..pool.len())];
            let lines: Vec<&str> = donor.design.lines().collect();
            if !lines.is_empty() {
                let line = lines[rng.gen_range(0..lines.len())];
                let at = rng.gen_range(0..=bytes.len());
                let mut ins = vec![b'\n'];
                ins.extend_from_slice(line.as_bytes());
                ins.push(b'\n');
                bytes.splice(at..at, ins);
            }
        }
        // Swap two lines.
        _ => {
            let text = String::from_utf8_lossy(bytes).into_owned();
            let mut lines: Vec<&str> = text.lines().collect();
            if lines.len() >= 2 {
                let a = rng.gen_range(0..lines.len());
                let b = rng.gen_range(0..lines.len());
                lines.swap(a, b);
                *bytes = lines.join("\n").into_bytes();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutated_inputs_are_seed_deterministic() {
        let a = mutated_inputs(42, 20);
        let b = mutated_inputs(42, 20);
        let c = mutated_inputs(43, 20);
        let srcs =
            |v: &[FuzzInput]| -> Vec<String> { v.iter().map(|i| i.source.clone()).collect() };
        assert_eq!(srcs(&a), srcs(&b));
        assert_ne!(srcs(&a), srcs(&c), "different seeds mutate differently");
    }

    #[test]
    fn a_prefix_of_a_longer_run_matches_a_shorter_run() {
        let long = mutated_inputs(7, 30);
        let short = mutated_inputs(7, 10);
        for (l, s) in long.iter().zip(&short) {
            assert_eq!(
                l.source, s.source,
                "per-input seeds are independent of count"
            );
        }
    }
}
