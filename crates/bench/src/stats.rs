//! Statistics for the experiment harness: the two-tailed Mann-Whitney U
//! test the paper uses for RQ2 (repair-time comparison between defect
//! categories), with a normal approximation for the p-value.

/// The result of a two-tailed Mann-Whitney U test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MannWhitney {
    /// The U statistic (minimum of U1/U2).
    pub u: f64,
    /// Standard-normal z-score (tie-corrected).
    pub z: f64,
    /// Two-tailed p-value under the normal approximation.
    pub p: f64,
}

/// Runs a two-tailed Mann-Whitney U test on two independent samples.
///
/// Returns `None` when either sample is empty. Uses midranks for ties
/// and the tie-corrected normal approximation, which is accurate for
/// sample sizes ≥ 8 and conservative below.
pub fn mann_whitney_u(a: &[f64], b: &[f64]) -> Option<MannWhitney> {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    let n1 = a.len() as f64;
    let n2 = b.len() as f64;
    // Rank the pooled sample with midranks for ties.
    let mut pooled: Vec<(f64, usize)> = a
        .iter()
        .map(|v| (*v, 0usize))
        .chain(b.iter().map(|v| (*v, 1usize)))
        .collect();
    pooled.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap_or(std::cmp::Ordering::Equal));
    let n = pooled.len();
    let mut ranks = vec![0.0f64; n];
    let mut tie_term = 0.0f64;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && pooled[j + 1].0 == pooled[i].0 {
            j += 1;
        }
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for rank in ranks.iter_mut().take(j + 1).skip(i) {
            *rank = midrank;
        }
        let t = (j - i + 1) as f64;
        tie_term += t * t * t - t;
        i = j + 1;
    }
    let r1: f64 = pooled
        .iter()
        .zip(&ranks)
        .filter(|((_, group), _)| *group == 0)
        .map(|(_, r)| *r)
        .sum();
    let u1 = r1 - n1 * (n1 + 1.0) / 2.0;
    let u2 = n1 * n2 - u1;
    let u = u1.min(u2);
    let mean = n1 * n2 / 2.0;
    let nf = n as f64;
    let var = n1 * n2 / 12.0 * ((nf + 1.0) - tie_term / (nf * (nf - 1.0)).max(1.0));
    if var <= 0.0 {
        return Some(MannWhitney { u, z: 0.0, p: 1.0 });
    }
    // Continuity correction.
    let z = (u - mean + 0.5) / var.sqrt();
    let p = (2.0 * normal_cdf(z)).min(1.0);
    Some(MannWhitney { u, z, p })
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (absolute error < 1.5e-7).
fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_are_not_significant() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let r = mann_whitney_u(&a, &a).unwrap();
        assert!(r.p > 0.9, "p = {}", r.p);
    }

    #[test]
    fn separated_samples_are_significant() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let b = [101.0, 102.0, 103.0, 104.0, 105.0, 106.0, 107.0, 108.0];
        let r = mann_whitney_u(&a, &b).unwrap();
        assert_eq!(r.u, 0.0);
        assert!(r.p < 0.01, "p = {}", r.p);
    }

    #[test]
    fn overlapping_samples_are_insignificant() {
        let a = [5.0, 7.0, 9.0, 11.0, 13.0, 6.5];
        let b = [6.0, 8.0, 10.0, 12.0, 5.5, 12.5];
        let r = mann_whitney_u(&a, &b).unwrap();
        assert!(r.p > 0.3, "p = {}", r.p);
    }

    #[test]
    fn handles_ties_and_small_samples() {
        let a = [1.0, 1.0, 1.0];
        let b = [1.0, 1.0, 1.0];
        let r = mann_whitney_u(&a, &b).unwrap();
        assert!(r.p >= 0.99);
        assert!(mann_whitney_u(&[], &a).is_none());
        assert!(mann_whitney_u(&a, &[]).is_none());
    }

    #[test]
    fn erf_matches_known_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.8427008).abs() < 1e-5);
        assert!((erf(-1.0) + 0.8427008).abs() < 1e-5);
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
    }
}
