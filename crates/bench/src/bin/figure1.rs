//! Regenerates Figure 1: the motivating 4-bit counter example — the
//! faulty design (1a) and the testbench logic (1b), printed from our
//! parsed-and-regenerated ASTs.

use cirfix_ast::print::source_to_string;
use cirfix_benchmarks::{project, scenario};

fn main() {
    let s = scenario("counter_reset").expect("motivating example");
    let p = project("counter").expect("counter project");
    println!("=== Figure 1a: 4-bit counter with the overflow reset missing ===\n");
    let faulty = s.faulty_design_file().expect("parses");
    println!("{}", source_to_string(&faulty));
    println!("=== Figure 1b: main testing logic from the counter testbench ===\n");
    let tb = cirfix_parser::parse(p.testbench).expect("parses");
    println!("{}", source_to_string(&tb));
}
