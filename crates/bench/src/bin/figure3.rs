//! Regenerates Figure 3: a representative multi-edit repair for the
//! sdram_controller synchronous-reset defect (wrong read-data constant
//! plus a missing busy clear), showing the defective and repaired reset
//! blocks.

use cirfix_bench::{experiment_config, experiment_trials, run_scenario};
use cirfix_benchmarks::{project, scenario};

fn main() {
    let s = scenario("sdram_sync_reset").expect("figure 3 scenario");
    let p = project("sdram_controller").expect("project");
    println!("=== Original (defective) synchronous reset block ===\n");
    print_reset_block(s.faulty_design);
    println!("\n=== Golden reset block ===\n");
    print_reset_block(p.design);

    let config = experiment_config(7);
    let outcome = run_scenario(s, &config, experiment_trials());
    println!(
        "\nCirFix: plausible={} correct={} edits(minimized)={} in {:.1}s / {} evals",
        outcome.plausible,
        outcome.correct,
        outcome.patch_len,
        outcome.repair_time.as_secs_f64(),
        outcome.evals
    );
    if let Some(src) = &outcome.result.repaired_source {
        println!("\n=== Repaired design (regenerated source) ===\n");
        print_reset_block(src);
        let problem = s.problem().expect("problem");
        println!(
            "\nEdit narrative:\n{}",
            cirfix::explain::describe_patch(
                &problem.source,
                &problem.design_modules,
                &outcome.result.patch
            )
        );
    } else {
        println!("(no repair under the current budget; raise CIRFIX_POP/CIRFIX_GENS)");
    }
    println!(
        "\nThe paper repaired this Category 2 defect in 4.6 hours with an \
         insert and a replace (Figure 3); the same two edit kinds apply here."
    );
}

/// Prints the lines of the `if (~rst_n)` reset block.
fn print_reset_block(src: &str) {
    let mut in_block = false;
    let mut depth = 0;
    for line in src.lines() {
        if line.contains("~rst_n") {
            in_block = true;
        }
        if in_block {
            println!("{line}");
            depth += line.matches("begin").count();
            depth -= line.matches("end").count().min(depth);
            if depth == 0 && line.trim_start().starts_with("end") {
                break;
            }
        }
    }
}
