//! RQ3: quality of the fitness function — the incremental
//! best-fitness trajectory of a multi-edit repair (the paper's
//! 0 → 0.58 → 0.77 → 1.0 example on the counter), plus the
//! fitness-distance correlation on hand-constructed partial repairs.

use cirfix::{evaluate, Edit, FitnessParams, Patch};
use cirfix_ast::{visit, Stmt};
use cirfix_bench::{experiment_config, print_table};
use cirfix_benchmarks::scenario;

fn main() {
    // Part 1: hand-constructed partial repairs for the missing-reset
    // counter defect show monotonically increasing fitness.
    let s = scenario("counter_reset").expect("scenario");
    let problem = s.problem().expect("problem");
    let faulty = s.faulty_design_file().expect("parses");
    let module = faulty.module("counter").expect("module");

    // The defect removed `overflow_out <= #1 1'b0;` from the reset
    // branch. Step 1 inserts a copy of the (wrong-valued) overflow
    // assignment; step 2 decrements the copied literal to 0.
    let donor = visit::stmts_of_module(module)
        .into_iter()
        .find(|st| match st {
            Stmt::NonBlocking { lhs, .. } => lhs.target_names() == vec!["overflow_out"],
            _ => false,
        })
        .expect("overflow assignment")
        .id();
    let anchor = visit::stmts_of_module(module)
        .into_iter()
        .find(|st| match st {
            Stmt::NonBlocking { lhs, rhs, .. } => {
                lhs.target_names() == vec!["counter_out"]
                    && matches!(rhs, cirfix_ast::Expr::Literal { .. })
            }
            _ => false,
        })
        .expect("counter reset assignment")
        .id();

    let step0 = Patch::empty();
    let step1 = step0.with(Edit::InsertStmt {
        donor,
        after: anchor,
    });
    // The inserted copy's literal gets a fresh id; find it by applying.
    let (variant, _) = cirfix::apply_patch(&problem.source, &problem.design_modules, &step1);
    let vmodule = variant.module("counter").expect("module");
    let max_original = visit::max_id(&faulty);
    let new_literal = visit::exprs_of_module(vmodule)
        .into_iter()
        .filter(|e| e.id() > max_original)
        .find(|e| matches!(e, cirfix_ast::Expr::Literal { value, .. } if value.width() == 1))
        .expect("copied literal")
        .id();
    let step2 = step1.with(Edit::DecrementExpr {
        target: new_literal,
    });

    let mut rows = Vec::new();
    for (label, patch) in [
        ("original defect", &step0),
        ("+ insert overflow assignment (wrong value)", &step1),
        ("+ decrement copied literal to 1'b0", &step2),
    ] {
        let eval = evaluate(&problem, patch, FitnessParams::default());
        rows.push(vec![label.to_string(), format!("{:.3}", eval.score)]);
    }
    println!("RQ3 part 1: fitness of incremental repair steps (counter_reset)\n");
    print_table(&["Candidate", "Fitness"], &rows);
    println!(
        "\nPaper: the triple-edit counter repair raised best fitness \
         0 -> 0.58 -> 0.77 -> 1.0."
    );

    // Part 2: the best-fitness trajectory of an actual GP run.
    let config = experiment_config(3);
    let result = cirfix::repair(&problem, config);
    println!(
        "\nRQ3 part 2: GP improvement steps: {:?} (plausible = {})",
        result
            .improvement_steps
            .iter()
            .map(|f| (f * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>(),
        result.is_plausible()
    );
}
