//! Ablation A1 (§3.6): fix localization reduces the fraction of mutants
//! that fail to compile. The paper reports 35% → 10%.
//!
//! We sample single-edit mutants across several scenarios with fix
//! localization on and off, and measure the rate of elaboration
//! failures (the "does not compile" signal).

use cirfix::{
    apply_patch, evaluate, fault_localization, mutate, FitnessParams, MutationParams, Patch,
};
use cirfix_bench::print_table;
use cirfix_benchmarks::scenarios;
use rand::SeedableRng;

fn main() {
    let sample_per_scenario = 200;
    let mut rows = Vec::new();
    for fix_localization in [true, false] {
        let mut invalid = 0u64;
        let mut total = 0u64;
        for s in scenarios().iter().take(12) {
            let problem = s.problem().expect("problem builds");
            let base = evaluate(&problem, &Patch::empty(), FitnessParams::default());
            let faulty = s.faulty_design_file().expect("parses");
            let modules: Vec<&cirfix_ast::Module> = faulty.modules.iter().collect();
            let fl = fault_localization(&modules, &base.mismatched);
            let mut rng = rand::rngs::StdRng::seed_from_u64(5);
            let params = MutationParams {
                fix_localization,
                ..MutationParams::default()
            };
            for _ in 0..sample_per_scenario {
                let Some(edit) = mutate(
                    &problem.source,
                    &problem.design_modules,
                    &fl,
                    params,
                    &mut rng,
                ) else {
                    continue;
                };
                let patch = Patch::single(edit);
                let (variant, stats) =
                    apply_patch(&problem.source, &problem.design_modules, &patch);
                if stats.applied == 0 {
                    continue;
                }
                total += 1;
                let compiles = cirfix_sim::elaborate(&variant, &problem.top).is_ok();
                if !compiles {
                    invalid += 1;
                }
            }
        }
        let rate = invalid as f64 / total as f64 * 100.0;
        rows.push(vec![
            if fix_localization {
                "on (CirFix)"
            } else {
                "off (ablation)"
            }
            .to_string(),
            total.to_string(),
            invalid.to_string(),
            format!("{rate:.1}%"),
        ]);
    }
    println!("Ablation A1: invalid (non-compiling) mutant rate\n");
    print_table(&["Fix localization", "Mutants", "Invalid", "Rate"], &rows);
    println!("\nPaper: fix localization reduced invalid mutants from 35% to 10%.");
}
