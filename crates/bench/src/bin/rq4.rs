//! RQ4: sensitivity to the quality of the expected-behaviour
//! information — rerunning the repairable scenarios with the oracle
//! degraded to 100% / 50% / 25% of its rows.

use cirfix::{apply_patch, degrade_oracle, repair, verify_repair, RepairConfig};
use cirfix_bench::{experiment_config, experiment_trials, print_table};
use cirfix_benchmarks::{project, scenarios};

fn main() {
    let base = experiment_config(99);
    let trials = experiment_trials();
    // The paper considers the defects repaired under full information.
    let fractions = [1.0f64, 0.5, 0.25];
    let mut rows = Vec::new();
    for fraction in fractions {
        let mut plausible = 0;
        let mut correct = 0;
        let mut considered = 0;
        for s in scenarios() {
            // Restrict to the scenarios the paper repaired, mirroring
            // §5.4's setup.
            if !s.paper.is_plausible() {
                continue;
            }
            considered += 1;
            let mut problem = s.problem().expect("problem builds");
            problem.oracle = degrade_oracle(&problem.oracle, fraction, 1234);
            let mut found = None;
            for t in 0..trials {
                let config = RepairConfig {
                    seed: base.seed + u64::from(t) * 7,
                    ..base.clone()
                };
                let r = repair(&problem, config);
                if r.is_plausible() {
                    found = Some(r);
                    break;
                }
            }
            if let Some(r) = found {
                plausible += 1;
                let p = project(s.project).expect("project");
                let (repaired_full, _) =
                    apply_patch(&problem.source, &problem.design_modules, &r.patch);
                if verify_repair(
                    &repaired_full,
                    &problem.design_modules,
                    &p.golden_design().expect("golden"),
                    &p.verification().expect("verification"),
                )
                .unwrap_or(false)
                {
                    correct += 1;
                }
                eprintln!(
                    "[{}] {}%: plausible (correct={})",
                    s.id,
                    fraction * 100.0,
                    correct
                );
            } else {
                eprintln!("[{}] {}%: no repair", s.id, fraction * 100.0);
            }
        }
        rows.push(vec![
            format!("{:.0}%", fraction * 100.0),
            format!("{plausible}/{considered}"),
            format!("{correct}/{considered}"),
        ]);
    }
    println!("RQ4: oracle-quality sweep over the paper-repairable scenarios\n");
    print_table(&["Correctness info", "Plausible", "Correct"], &rows);
    println!(
        "\nPaper (all 32 scenarios): plausible 21 -> 20 -> 20, correct \
         16 -> 12 -> 10 as information drops 100% -> 50% -> 25%."
    );
}
