//! Measured simulation baseline: how fast does one core evaluate
//! candidates, and where does the time go?
//!
//! Three measurements, all on the `counter_reset` scenario:
//!
//! 1. **Throughput** — a serial `evaluate_many` over ≥256 single-edit
//!    patches, reporting `evals_per_s` and `events_per_s` (simulator
//!    events retired per second, summed from each evaluation's
//!    [`SimMetrics`]).
//! 2. **Phase attribution** — a bounded brute-force run with the span
//!    profiler enabled, folded through [`RunReport`] so the per-phase
//!    busy breakdown comes from the same introspection path users see.
//! 3. **Profiler overhead** — the same bounded run with a disabled
//!    observer (the `NullSink` path: no profiler is even allocated)
//!    versus an enabled JSON-lines trace, as `overhead_pct`.
//!
//! Emits JSON lines to stdout and `BENCH_sim.json` (override with
//! `CIRFIX_BENCH_OUT`).

use std::sync::{Arc, Mutex};
use std::time::Instant;

use cirfix::{
    all_stmt_ids, applicable_templates, brute_force_repair, evaluate_many, BruteConfig, Edit,
    FaultLoc, FitnessParams, Observer, Patch, RunReport,
};
use cirfix_benchmarks::scenario;
use cirfix_telemetry::JsonLinesSink;

/// An in-memory trace destination the observer can write through.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("buffer lock").extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn main() {
    let s = scenario("counter_reset").expect("scenario");
    let problem = s.problem().expect("problem builds");

    // The same workload as the speedup bench: every systematic single
    // edit, repeated to amortize startup.
    let fl = FaultLoc::default();
    let mut edits: Vec<Edit> = applicable_templates(&problem.source, &problem.design_modules, &fl);
    edits.extend(
        all_stmt_ids(&problem.source, &problem.design_modules)
            .into_iter()
            .map(|target| Edit::DeleteStmt { target }),
    );
    let singles: Vec<Patch> = edits.into_iter().map(Patch::single).collect();
    // Exactly as many evaluations as the brute-force phase below, so
    // every record in the artifact reports the same workload size.
    const EVALS: usize = 256;
    let mut patches: Vec<Patch> = Vec::new();
    while patches.len() < EVALS {
        patches.extend(singles.iter().cloned());
    }
    patches.truncate(EVALS);
    let params = FitnessParams::default();

    // Warm-up before any timing.
    let warm = evaluate_many(&problem, &patches[..singles.len()], params, 1);
    assert_eq!(warm.len(), singles.len());

    let host_cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut records: Vec<String> = Vec::new();

    // Timed sections repeat and keep the fastest pass: the host is a
    // shared single-core container, so any individual pass can absorb
    // an unrelated scheduling stall.
    const PASSES: usize = 5;

    // 1. Serial throughput with simulator-effort totals.
    let mut wall = f64::INFINITY;
    let mut results = Vec::new();
    for _ in 0..PASSES {
        let t0 = Instant::now();
        let pass = evaluate_many(&problem, &patches, params, 1);
        wall = wall.min(t0.elapsed().as_secs_f64());
        results = pass;
    }
    assert_eq!(results.len(), EVALS, "throughput workload drifted");
    let (mut events, mut timesteps) = (0u64, 0u64);
    for r in &results {
        if let Some(m) = &r.sim_metrics {
            events += m.active_events + m.inactive_events + m.nba_flushes;
            timesteps += m.timesteps;
        }
    }
    records.push(format!(
        "{{\"bench\":\"sim_baseline\",\"jobs\":1,\"evals\":{},\"wall_s\":{wall:.4},\
         \"evals_per_s\":{:.2},\"sim_events\":{events},\"events_per_s\":{:.2},\
         \"timesteps\":{timesteps},\"host_cores\":{host_cores}}}",
        results.len(),
        results.len() as f64 / wall,
        events as f64 / wall,
    ));

    // 1b. The same workload with compiled expression execution switched
    //     off, isolating the bytecode dispatch loop's contribution from
    //     the packed-vector contribution (both records run on the
    //     packed two-plane LogicVec).
    cirfix_sim::set_exec_mode(cirfix_sim::ExecMode::TreeWalk);
    let mut tw_wall = f64::INFINITY;
    let mut tw_results = Vec::new();
    for _ in 0..PASSES {
        let t0 = Instant::now();
        let pass = evaluate_many(&problem, &patches, params, 1);
        tw_wall = tw_wall.min(t0.elapsed().as_secs_f64());
        tw_results = pass;
    }
    cirfix_sim::set_exec_mode(cirfix_sim::ExecMode::Bytecode);
    assert_eq!(tw_results.len(), EVALS, "tree-walk workload drifted");
    records.push(format!(
        "{{\"bench\":\"sim_baseline_treewalk\",\"jobs\":1,\"evals\":{},\
         \"wall_s\":{tw_wall:.4},\"evals_per_s\":{:.2}}}",
        tw_results.len(),
        tw_results.len() as f64 / tw_wall,
    ));

    // 2. Phase attribution through the profiler + report pipeline.
    let brute_config = |observer: Observer| BruteConfig {
        max_evals: 256,
        seed: 1,
        observer,
        ..BruteConfig::default()
    };
    // Untimed warm-up so neither timed run pays cold-start costs.
    let _ = brute_force_repair(&problem, brute_config(Observer::none()));
    let buf = SharedBuf::default();
    let sink = Arc::new(JsonLinesSink::new(buf.clone()));
    let t0 = Instant::now();
    let outcome = brute_force_repair(&problem, brute_config(Observer::new(sink)));
    let enabled_wall = t0.elapsed().as_secs_f64();
    let text = String::from_utf8_lossy(&buf.0.lock().expect("buffer lock")).into_owned();
    let report = RunReport::from_trace(&text).expect("trace folds");
    let total_busy: u64 = report.phases.iter().map(|p| p.nanos).sum();
    for p in &report.phases {
        records.push(format!(
            "{{\"bench\":\"sim_baseline_phase\",\"phase\":\"{}\",\"count\":{},\
             \"busy_ns\":{},\"busy_share\":{:.4}}}",
            p.name,
            p.count,
            p.nanos,
            p.nanos as f64 / (total_busy.max(1)) as f64,
        ));
    }
    if let Some(h) = &report.heartbeat {
        assert_eq!(
            h.fitness_evals as usize, EVALS,
            "throughput and brute-force records must report the same workload size"
        );
        records.push(format!(
            "{{\"bench\":\"sim_baseline_heartbeat\",\"fitness_evals\":{},\
             \"evals_per_s\":{:.2},\"best_fitness\":{}}}",
            h.fitness_evals, h.evals_per_s, h.best_fitness,
        ));
    }

    // 3. Profiler overhead: disabled observer (no profiler allocated)
    //    vs the enabled trace run above, same workload and seed.
    let t0 = Instant::now();
    let base = brute_force_repair(&problem, brute_config(Observer::none()));
    let null_wall = t0.elapsed().as_secs_f64();
    assert_eq!(
        base.fitness_evals, outcome.fitness_evals,
        "observer must not change the search"
    );
    records.push(format!(
        "{{\"bench\":\"profiler_overhead\",\"evals\":{},\"nullsink_wall_s\":{null_wall:.4},\
         \"enabled_wall_s\":{enabled_wall:.4},\"overhead_pct\":{:.2}}}",
        base.fitness_evals,
        100.0 * (enabled_wall - null_wall) / null_wall,
    ));

    for record in &records {
        println!("{record}");
    }
    let out = std::env::var("CIRFIX_BENCH_OUT").unwrap_or_else(|_| "BENCH_sim.json".into());
    let body = records.join("\n") + "\n";
    if let Err(e) = std::fs::write(&out, body) {
        eprintln!("sim_baseline: cannot write {out}: {e}");
        std::process::exit(1);
    }
    eprintln!("sim_baseline: wrote {out}");
}
