//! Mined-pattern A/B benchmark: does feeding `cirfix mine` output back
//! into the search change the cost of finding a repair?
//!
//! Trains on three counter-family scenarios (repairing each through a
//! persistent store populates the corpus), mines the corpus into fix
//! patterns, then repairs held-out scenarios twice with the same seed
//! and budget — once baseline, once with `mined_patterns` loaded — and
//! reports evaluations, wall time, and the evaluation ratio. The ratio
//! is reported as measured; a value near 1.0 means the patterns did
//! not help on that scenario.
//!
//! Emits JSON lines (one per arm per scenario) to stdout and to
//! `BENCH_mined.json` (override with `CIRFIX_BENCH_OUT`).

use std::time::{Duration, Instant};

use cirfix::{repair_session, repair_with_trials, RepairConfig};
use cirfix_benchmarks::scenario;
use cirfix_mine::mine_corpus;
use cirfix_store::Store;

const TRAIN: &[&str] = &["counter_sens_list", "counter_increment", "counter_reset"];
const EVAL: &[&str] = &["flip_flop_cond", "lshift_sens"];

fn bench_config() -> RepairConfig {
    RepairConfig {
        timeout: Duration::from_secs(3600),
        popn_size: 60,
        max_generations: 3,
        max_fitness_evals: 400,
        ..RepairConfig::fast(5)
    }
}

fn main() {
    let dir = std::env::temp_dir().join(format!("cirfix-bench-mined-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Training phase: repair the corpus scenarios through one store.
    for id in TRAIN {
        let s = scenario(id).expect("scenario");
        let problem = s.problem().expect("problem builds");
        let result =
            repair_session(&problem, &bench_config(), 2, &dir, false).expect("session runs");
        if !result.is_plausible() {
            eprintln!("mined: warning: training scenario {id} did not repair");
        }
    }
    let store = Store::open(&dir).expect("store opens");
    let (records_json, _) = store.load_corpus().expect("corpus loads");
    let report = mine_corpus(&records_json, 0);
    eprintln!(
        "mined: {} pattern(s) from {} corpus record(s)",
        report.patterns.len(),
        report.records
    );

    let mut records: Vec<String> = Vec::new();
    for id in EVAL {
        let s = scenario(id).expect("scenario");
        let problem = s.problem().expect("problem builds");
        let mut baseline_evals = 0u64;
        for arm in ["baseline", "mined"] {
            let mut config = bench_config();
            if arm == "mined" {
                config.mined_patterns = report.patterns.clone();
            }
            let t0 = Instant::now();
            let result = repair_with_trials(&problem, &config, 2);
            let wall = t0.elapsed().as_secs_f64();
            if arm == "baseline" {
                baseline_evals = result.totals.fitness_evals;
            }
            let ratio = if result.totals.fitness_evals == 0 {
                0.0
            } else {
                baseline_evals as f64 / result.totals.fitness_evals as f64
            };
            let record = format!(
                "{{\"bench\":\"mined\",\"arm\":\"{arm}\",\"scenario\":\"{}\",\
                 \"patterns\":{},\"plausible\":{},\"wall_s\":{wall:.4},\
                 \"simulations\":{},\"pattern_hits\":{},\"eval_ratio\":{ratio:.3}}}",
                s.id,
                report.patterns.len(),
                result.is_plausible(),
                result.totals.fitness_evals,
                result.totals.pattern_hits,
            );
            println!("{record}");
            records.push(record);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);

    let out = std::env::var("CIRFIX_BENCH_OUT").unwrap_or_else(|_| "BENCH_mined.json".into());
    let body = records.join("\n") + "\n";
    if let Err(e) = std::fs::write(&out, body) {
        eprintln!("mined: cannot write {out}: {e}");
        std::process::exit(1);
    }
    eprintln!("mined: wrote {out}");
}
