//! Daemon throughput benchmark: a `cirfix serve` instance at its
//! default admission limits, hammered by concurrent clients over the
//! Unix socket.
//!
//! Spins up an in-process daemon, then four client threads each
//! submitting a stream of small distinct repair jobs and watching them
//! to completion. Reports jobs/second, time-to-first-heartbeat, and
//! submit→done latency percentiles — and asserts that the default
//! queue depth admits this load with zero rejections.
//!
//! Emits one JSON line to stdout and to `BENCH_serve.json` (override
//! with `CIRFIX_BENCH_OUT`).

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use cirfix_serve::{serve, Client, Request, ServeAddr, ServeOpts};
use cirfix_store::field;
use cirfix_telemetry::JsonValue;

const CLIENTS: usize = 4;
const JOBS_PER_CLIENT: usize = 3;

/// Writes a benchmark scenario to disk as a daemon-submittable conf.
fn write_fixture(dir: &Path) -> PathBuf {
    let scenario = cirfix_benchmarks::scenario("counter_reset").expect("scenario");
    let project = cirfix_benchmarks::project(scenario.project).expect("project");
    std::fs::create_dir_all(dir).expect("mkdir");
    std::fs::write(dir.join("faulty.v"), scenario.faulty_design).expect("write");
    std::fs::write(dir.join("golden.v"), project.design).expect("write");
    std::fs::write(dir.join("tb.v"), project.testbench).expect("write");
    let conf = format!(
        "design = faulty.v\ngolden = golden.v\ntestbench = tb.v\ntop = {}\n\
         design_modules = {}\nprobe_signals = {}\nprobe_start = {}\n\
         probe_period = {}\nmax_time = {}\n\
         popn_size = 24\nmax_generations = 2\nmax_evals = 100\n\
         timeout_s = 3600\ntrials = 1\njobs = 1\nbatch_size = 8\n",
        project.top,
        project.design_modules.join(","),
        project.probe_signals.join(","),
        project.probe_start,
        project.probe_period,
        project.max_time,
    );
    let path = dir.join("repair.conf");
    std::fs::write(&path, conf).expect("write conf");
    path
}

struct JobTiming {
    first_heartbeat_s: Option<f64>,
    submit_done_s: f64,
    rejected: bool,
}

/// Submits one job and watches it to completion over its own
/// connection, timing first heartbeat and total latency.
fn run_one_job(addr: &ServeAddr, conf: &str, seed: u64) -> JobTiming {
    let mut client = Client::connect(addr).expect("client connects");
    let t0 = Instant::now();
    let line = client
        .request(&Request::Submit {
            conf: conf.to_string(),
            overrides: vec![("seed".to_string(), seed.to_string())],
        })
        .expect("submit answers");
    if !cirfix_serve::client::response_ok(&line) {
        return JobTiming {
            first_heartbeat_s: None,
            submit_done_s: t0.elapsed().as_secs_f64(),
            rejected: true,
        };
    }
    let job = match field(&line, "job") {
        Some(JsonValue::Str(id)) => id.clone(),
        _ => panic!("submit response without a job id"),
    };
    let mut first_heartbeat: Option<f64> = None;
    client
        .watch(&job, false, |watch_line| {
            let has_event = !matches!(field(watch_line, "event"), None | Some(JsonValue::Null));
            if has_event && first_heartbeat.is_none() {
                first_heartbeat = Some(t0.elapsed().as_secs_f64());
            }
        })
        .expect("watch streams");
    JobTiming {
        first_heartbeat_s: first_heartbeat,
        submit_done_s: t0.elapsed().as_secs_f64(),
        rejected: false,
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    let dir = std::env::temp_dir().join(format!("cirfix-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let conf = write_fixture(&dir.join("fx"));
    let conf = conf.display().to_string();

    let addr = ServeAddr::Unix(dir.join("d.sock"));
    let daemon = {
        let addr = addr.clone();
        let opts = ServeOpts::new(dir.join("store"));
        std::thread::spawn(move || serve(&addr, opts).expect("daemon runs"))
    };
    let ServeAddr::Unix(sock) = &addr else {
        unreachable!()
    };
    let deadline = Instant::now() + Duration::from_secs(30);
    while !sock.exists() {
        assert!(Instant::now() < deadline, "daemon never bound its socket");
        std::thread::sleep(Duration::from_millis(10));
    }

    let t0 = Instant::now();
    let mut handles = Vec::new();
    for c in 0..CLIENTS {
        let addr = addr.clone();
        let conf = conf.clone();
        handles.push(std::thread::spawn(move || {
            (0..JOBS_PER_CLIENT)
                .map(|j| run_one_job(&addr, &conf, 1 + (c * JOBS_PER_CLIENT + j) as u64))
                .collect::<Vec<_>>()
        }));
    }
    let timings: Vec<JobTiming> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    let wall_s = t0.elapsed().as_secs_f64();

    let mut client = Client::connect(&addr).expect("connect for shutdown");
    client
        .request(&Request::Shutdown)
        .expect("shutdown answers");
    daemon.join().expect("daemon exits");

    let rejections = timings.iter().filter(|t| t.rejected).count();
    assert_eq!(
        rejections, 0,
        "default admission limits must absorb {CLIENTS} clients x {JOBS_PER_CLIENT} jobs"
    );
    let jobs = timings.len();
    let mut done: Vec<f64> = timings.iter().map(|t| t.submit_done_s).collect();
    done.sort_by(f64::total_cmp);
    let mut ttfh: Vec<f64> = timings.iter().filter_map(|t| t.first_heartbeat_s).collect();
    ttfh.sort_by(f64::total_cmp);

    let record = format!(
        "{{\"bench\":\"serve_throughput\",\"clients\":{CLIENTS},\
         \"jobs\":{jobs},\"wall_s\":{wall_s:.4},\
         \"jobs_per_s\":{:.3},\"ttfh_p50_s\":{:.4},\
         \"submit_done_p50_s\":{:.4},\"submit_done_p99_s\":{:.4},\
         \"admission_rejections\":{rejections}}}",
        jobs as f64 / wall_s,
        percentile(&ttfh, 0.50),
        percentile(&done, 0.50),
        percentile(&done, 0.99),
    );
    println!("{record}");
    let _ = std::fs::remove_dir_all(&dir);

    let out = std::env::var("CIRFIX_BENCH_OUT").unwrap_or_else(|_| "BENCH_serve.json".into());
    if let Err(e) = std::fs::write(&out, format!("{record}\n")) {
        eprintln!("serve_throughput: cannot write {out}: {e}");
        std::process::exit(1);
    }
    eprintln!("serve_throughput: wrote {out}");
}
