//! Fuzzer throughput bench: how fast do we mint defect scenarios, and
//! how fast does the differential robustness harness chew through
//! inputs?
//!
//! Three measurements:
//!
//! 1. **Generation** — a full `generate_scenarios` sweep over all 11
//!    projects (no classification), reporting `scenarios_per_s` and
//!    the candidate-evaluation rate behind it.
//! 2. **Fuzzing** — a complete `run_fuzz` pass (generated scenarios +
//!    grammar mutations, both differential phases, shrinking armed),
//!    reporting `inputs_per_s` and the finding count — which must be
//!    zero on a healthy tree, and the committed artifact records that.
//! 3. **Replay** — the committed crash corpus re-driven through the
//!    harness, the same gate CI runs.
//!
//! Emits JSON lines to stdout and `BENCH_fuzz.json` (override with
//! `CIRFIX_BENCH_OUT`).

use cirfix_fuzz::{replay, run_fuzz, FuzzConfig, GenConfig};
use std::time::Instant;

fn main() {
    // The harness contains panics; keep the default hook from spraying
    // backtraces into the bench output.
    std::panic::set_hook(Box::new(|_| {}));

    let host_cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut records: Vec<String> = Vec::new();

    // 1. Scenario generation over every project. Warm once (parser and
    //    elaboration caches), then keep the fastest of three passes —
    //    the host is a shared container.
    let gen_config = GenConfig::default();
    let _ = cirfix_fuzz::generate_scenarios(&gen_config);
    let mut gen_wall = f64::MAX;
    let mut generated = 0usize;
    for _ in 0..3 {
        let t0 = Instant::now();
        let scenarios = cirfix_fuzz::generate_scenarios(&gen_config);
        gen_wall = gen_wall.min(t0.elapsed().as_secs_f64());
        generated = scenarios.len();
    }
    records.push(format!(
        "{{\"bench\":\"fuzz_gen\",\"scenarios\":{generated},\"wall_s\":{gen_wall:.4},\
         \"scenarios_per_s\":{:.2},\"host_cores\":{host_cores}}}",
        generated as f64 / gen_wall,
    ));

    // 2. A full fuzz pass: half generated scenarios, half grammar
    //    mutations, differential oracle on, shrinking armed (free when
    //    the tree is healthy). One pass — run_fuzz amortizes nothing
    //    across reruns, so repeating only burns CI minutes.
    let fuzz_config = FuzzConfig {
        seed: 1,
        budget: 400,
        ..FuzzConfig::default()
    };
    let t0 = Instant::now();
    let report = run_fuzz(&fuzz_config);
    let fuzz_wall = t0.elapsed().as_secs_f64();
    records.push(format!(
        "{{\"bench\":\"fuzz_run\",\"seed\":{},\"inputs\":{},\"generated\":{},\
         \"parse_errors\":{},\"sim_ok\":{},\"sim_errors\":{},\"findings\":{},\
         \"wall_s\":{fuzz_wall:.4},\"inputs_per_s\":{:.2}}}",
        report.seed,
        report.stats.inputs,
        report.stats.generated,
        report.stats.parse_errors,
        report.stats.sim_ok,
        report.stats.sim_errors,
        report.findings.len(),
        report.stats.inputs as f64 / fuzz_wall,
    ));

    // 3. The committed regression corpus, replayed exactly as CI gates
    //    on it.
    let corpus_path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../fuzz/corpus/crashes.jsonl");
    let (bodies, health) = cirfix_store::read_segment(&corpus_path).expect("corpus reads");
    assert!(health.is_clean(), "committed corpus must be undamaged");
    let corpus: Vec<cirfix_fuzz::CrashRecord> = bodies
        .iter()
        .filter_map(cirfix_fuzz::CrashRecord::from_json)
        .collect();
    let t0 = Instant::now();
    let replay_report = replay(&corpus, 0);
    let replay_wall = t0.elapsed().as_secs_f64();
    records.push(format!(
        "{{\"bench\":\"fuzz_replay\",\"records\":{},\"regressions\":{},\"wall_s\":{replay_wall:.4}}}",
        replay_report.replayed,
        replay_report.regressions.len(),
    ));

    let _ = std::panic::take_hook();
    for record in &records {
        println!("{record}");
    }
    let out = std::env::var("CIRFIX_BENCH_OUT").unwrap_or_else(|_| "BENCH_fuzz.json".into());
    let body = records.join("\n") + "\n";
    if let Err(e) = std::fs::write(&out, body) {
        eprintln!("fuzz: cannot write {out}: {e}");
        std::process::exit(1);
    }
    eprintln!("fuzz: wrote {out}");
}
