//! Throughput benchmark for the parallel fitness-evaluation engine:
//! evaluates the same batch of distinct candidate patches with 1, 2, 4,
//! and 8 worker threads and reports evaluations/second and speedup over
//! the serial baseline.
//!
//! Emits JSON lines (one record per worker count) to stdout and to
//! `BENCH_speedup.json` (override the path with `CIRFIX_BENCH_OUT`).
//! The record includes `host_cores`: on a single-core host the workers
//! time-slice one CPU and the speedup honestly stays ≈1×; the ≥2×
//! target is meaningful only where `host_cores >= jobs`.

use std::time::Instant;

use cirfix::{
    all_stmt_ids, applicable_templates, evaluate_many, Edit, FaultLoc, FitnessParams, Patch,
};
use cirfix_benchmarks::scenario;

fn main() {
    let s = scenario("counter_reset").expect("scenario");
    let problem = s.problem().expect("problem builds");

    // The workload: every systematic single edit of the design (the
    // same enumeration the brute-force baseline starts with), repeated
    // until the batch is large enough to amortize pool startup.
    let fl = FaultLoc::default();
    let mut edits: Vec<Edit> = applicable_templates(&problem.source, &problem.design_modules, &fl);
    edits.extend(
        all_stmt_ids(&problem.source, &problem.design_modules)
            .into_iter()
            .map(|target| Edit::DeleteStmt { target }),
    );
    let singles: Vec<Patch> = edits.into_iter().map(Patch::single).collect();
    let mut patches: Vec<Patch> = Vec::new();
    while patches.len() < 256 {
        patches.extend(singles.iter().cloned());
    }
    let params = FitnessParams::default();

    // Warm-up: fault in the page cache and code paths before timing.
    let warm = evaluate_many(&problem, &patches[..singles.len()], params, 1);
    assert_eq!(warm.len(), singles.len());

    let host_cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut records: Vec<String> = Vec::new();
    let mut serial_rate = 0.0f64;
    for jobs in [1usize, 2, 4, 8] {
        let t0 = Instant::now();
        let results = evaluate_many(&problem, &patches, params, jobs);
        let wall = t0.elapsed().as_secs_f64();
        assert_eq!(results.len(), patches.len());
        let rate = patches.len() as f64 / wall;
        if jobs == 1 {
            serial_rate = rate;
        }
        let record = format!(
            "{{\"bench\":\"speedup\",\"jobs\":{jobs},\"evals\":{},\"wall_s\":{wall:.4},\
             \"evals_per_s\":{rate:.2},\"speedup\":{:.3},\"host_cores\":{host_cores}}}",
            patches.len(),
            rate / serial_rate,
        );
        println!("{record}");
        records.push(record);
    }

    let out = std::env::var("CIRFIX_BENCH_OUT").unwrap_or_else(|_| "BENCH_speedup.json".into());
    let body = records.join("\n") + "\n";
    if let Err(e) = std::fs::write(&out, body) {
        eprintln!("speedup: cannot write {out}: {e}");
        std::process::exit(1);
    }
    eprintln!("speedup: wrote {out}");
}
