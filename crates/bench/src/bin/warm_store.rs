//! Warm-store benchmark: how much of a repair run does the persistent
//! evaluation cache absorb on a rerun?
//!
//! Runs one Table-3 scenario twice through `repair_session` against the
//! same store directory — a cold run that populates the cache and a
//! warm same-seed rerun that should answer every candidate from disk —
//! and reports wall time, simulation counts, and the store hit rate.
//!
//! Emits JSON lines (one per run) to stdout and to
//! `BENCH_warm_store.json` (override with `CIRFIX_BENCH_OUT`).

use std::time::{Duration, Instant};

use cirfix::{repair_session, RepairConfig};
use cirfix_benchmarks::scenario;

fn main() {
    let s = scenario("flip_flop_cond").expect("scenario");
    let problem = s.problem().expect("problem builds");
    let config = RepairConfig {
        timeout: Duration::from_secs(3600),
        popn_size: 60,
        max_generations: 3,
        max_fitness_evals: 400,
        ..RepairConfig::fast(5)
    };

    let dir = std::env::temp_dir().join(format!("cirfix-bench-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut records: Vec<String> = Vec::new();
    let mut cold_wall = 0.0f64;
    for phase in ["cold", "warm"] {
        let t0 = Instant::now();
        let result = repair_session(&problem, &config, 2, &dir, false).expect("session runs");
        let wall = t0.elapsed().as_secs_f64();
        if phase == "cold" {
            cold_wall = wall;
        }
        let probes = result.totals.store_hits + result.totals.fitness_evals;
        let hit_rate = if probes == 0 {
            0.0
        } else {
            result.totals.store_hits as f64 / probes as f64
        };
        let record = format!(
            "{{\"bench\":\"warm_store\",\"phase\":\"{phase}\",\"scenario\":\"{}\",\
             \"wall_s\":{wall:.4},\"simulations\":{},\"store_hits\":{},\
             \"store_writes\":{},\"hit_rate\":{hit_rate:.4},\"speedup\":{:.3}}}",
            s.id,
            result.totals.fitness_evals,
            result.totals.store_hits,
            result.totals.store_writes,
            cold_wall / wall,
        );
        println!("{record}");
        records.push(record);
    }
    let _ = std::fs::remove_dir_all(&dir);

    let out = std::env::var("CIRFIX_BENCH_OUT").unwrap_or_else(|_| "BENCH_warm_store.json".into());
    let body = records.join("\n") + "\n";
    if let Err(e) = std::fs::write(&out, body) {
        eprintln!("warm_store: cannot write {out}: {e}");
        std::process::exit(1);
    }
    eprintln!("warm_store: wrote {out}");
}
