//! Regenerates Table 3: repair results for all 32 defect scenarios.
//!
//! Scale with `CIRFIX_POP` / `CIRFIX_GENS` / `CIRFIX_TRIALS` /
//! `CIRFIX_EVALS` / `CIRFIX_TIMEOUT_S`. Checkmarks mark repairs that
//! pass the held-out verification bench (the paper's "correct upon
//! manual inspection"); a bare time is plausible-but-overfitting; `-`
//! means no repair was found.

use cirfix_bench::{
    experiment_config, experiment_trials, ours_cell, paper_cell, print_table, run_scenario,
};
use cirfix_benchmarks::scenarios;

fn main() {
    let config = experiment_config(42);
    let trials = experiment_trials();
    println!(
        "Table 3: repair results (popn={}, gens={}, trials={}, evals<={})\n",
        config.popn_size, config.max_generations, trials, config.max_fitness_evals
    );
    let mut rows = Vec::new();
    let mut plausible = 0;
    let mut correct = 0;
    for s in scenarios() {
        let outcome = run_scenario(s, &config, trials);
        if outcome.plausible {
            plausible += 1;
        }
        if outcome.correct {
            correct += 1;
        }
        rows.push(vec![
            s.project.to_string(),
            s.description.to_string(),
            s.category.to_string(),
            paper_cell(s.paper),
            ours_cell(&outcome),
            outcome.evals.to_string(),
        ]);
        eprintln!(
            "[{}] plausible={} correct={} ({:.1}s, {} evals)",
            s.id,
            outcome.plausible,
            outcome.correct,
            outcome.repair_time.as_secs_f64(),
            outcome.evals
        );
    }
    print_table(
        &["Project", "Defect", "Cat", "Paper(s)", "Ours(s)", "Evals"],
        &rows,
    );
    println!(
        "\nOurs: {plausible}/32 plausible, {correct}/32 correct.  \
         Paper: 21/32 plausible, 16/32 correct."
    );
}
