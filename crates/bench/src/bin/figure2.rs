//! Regenerates Figure 2: the simulation result of the faulty counter
//! juxtaposed with the expected behaviour, highlighting the
//! `overflow_out` mismatch from timestamp 35 onward.

use cirfix::{evaluate, simulate_with_probe, FitnessParams, Patch};
use cirfix_benchmarks::scenario;

fn main() {
    let s = scenario("counter_reset").expect("motivating example");
    let problem = s.problem().expect("problem builds");
    let (_, sim_trace, _) =
        simulate_with_probe(&problem.source, &problem.top, &problem.probe, &problem.sim)
            .expect("faulty design simulates");

    println!("=== Simulation Result (faulty counter) ===");
    println!("{}", sim_trace.to_csv());
    println!("=== Expected Behavior (golden counter) ===");
    println!("{}", problem.oracle.to_csv());

    let report = evaluate(&problem, &Patch::empty(), FitnessParams::default());
    println!(
        "Mismatch on: {:?}  (fitness {:.2}; the paper reports 0.58 for this defect)",
        report.mismatched, report.score
    );
    // Show the per-timestamp overflow_out comparison explicitly.
    println!("\ntime  expected  actual");
    for t in problem.oracle.times() {
        let expected = problem.oracle.get(t, "overflow_out");
        let actual = sim_trace.get(t, "overflow_out");
        if let (Some(e), Some(a)) = (expected, actual) {
            let marker = if e == a { " " } else { "<-- mismatch" };
            println!("{t:<5} {e:<9} {a:<7} {marker}");
        }
    }
}
