//! RQ1: repair rate and quality, plus the brute-force baseline
//! comparison of §5.1.
//!
//! Runs every scenario through CirFix and through the unguided
//! brute-force search with the *same* evaluation budget, then reports
//! plausible/correct counts for both.

use std::time::Duration;

use cirfix::{brute_force_repair, BruteConfig};
use cirfix_bench::{experiment_config, experiment_trials, print_table, run_scenario};
use cirfix_benchmarks::scenarios;

fn main() {
    let config = experiment_config(11);
    let trials = experiment_trials();
    let mut rows = Vec::new();
    let mut cirfix_plausible = 0;
    let mut cirfix_correct = 0;
    let mut brute_plausible = 0;
    for s in scenarios() {
        let outcome = run_scenario(s, &config, trials);
        let problem = s.problem().expect("problem builds");
        let brute = brute_force_repair(
            &problem,
            BruteConfig {
                timeout: Duration::from_secs(20),
                max_evals: config.max_fitness_evals,
                seed: 11,
                fitness: config.fitness,
                ..BruteConfig::default()
            },
        );
        if outcome.plausible {
            cirfix_plausible += 1;
        }
        if outcome.correct {
            cirfix_correct += 1;
        }
        if brute.is_plausible() {
            brute_plausible += 1;
        }
        rows.push(vec![
            s.id.to_string(),
            s.category.to_string(),
            if outcome.plausible { "yes" } else { "no" }.into(),
            if outcome.correct { "yes" } else { "no" }.into(),
            format!("{}", outcome.evals),
            if brute.is_plausible() { "yes" } else { "no" }.into(),
            format!("{}", brute.fitness_evals),
        ]);
        eprintln!(
            "[{}] cirfix={} brute={}",
            s.id,
            outcome.plausible,
            brute.is_plausible()
        );
    }
    println!("RQ1: CirFix vs brute-force, equal evaluation budgets\n");
    print_table(
        &[
            "Scenario",
            "Cat",
            "CirFix plausible",
            "CirFix correct",
            "CirFix evals",
            "Brute plausible",
            "Brute evals",
        ],
        &rows,
    );
    println!(
        "\nCirFix: {cirfix_plausible}/32 plausible, {cirfix_correct}/32 correct.  \
         Brute force: {brute_plausible}/32 plausible."
    );
    println!(
        "Paper: CirFix 21/32 plausible, 16/32 correct; brute force reported \
         no repairs within its 12-hour bound."
    );
}
