//! Ablation A3: repeated fault re-localization (the paper's choice, §3)
//! versus localizing once on the original design.
//!
//! The paper re-localizes per parent "to support multiple dependent
//! edits"; this ablation measures the effect on multi-edit defects.

use cirfix::{repair, RepairConfig};
use cirfix_bench::{experiment_config, print_table};
use cirfix_benchmarks::scenario;

fn main() {
    // Multi-edit defects benefit most from re-localization.
    let ids = ["counter_reset", "sdram_sync_reset", "decoder_two_numeric"];
    let seeds = [1u64, 2, 3];
    let mut rows = Vec::new();
    for relocalize in [true, false] {
        let mut repaired = 0u32;
        let mut runs = 0u32;
        let mut total_evals = 0u64;
        for id in ids {
            let s = scenario(id).expect("scenario");
            let problem = s.problem().expect("problem");
            for seed in seeds {
                let config = RepairConfig {
                    relocalize,
                    ..experiment_config(seed)
                };
                let r = repair(&problem, config);
                runs += 1;
                total_evals += r.fitness_evals;
                if r.is_plausible() {
                    repaired += 1;
                }
            }
            eprintln!("relocalize={relocalize} {id} done");
        }
        rows.push(vec![
            if relocalize {
                "every parent (CirFix)"
            } else {
                "once (ablation)"
            }
            .to_string(),
            format!("{repaired}/{runs}"),
            format!("{:.0}", total_evals as f64 / f64::from(runs)),
        ]);
    }
    println!("Ablation A3: fault re-localization on multi-edit defects\n");
    print_table(
        &["Localization", "Repaired trials", "Avg evals/trial"],
        &rows,
    );
    println!(
        "\nPaper (§3): \"we choose to repeatedly re-localize to support \
         multiple dependent edits made to the source code.\""
    );
}
