//! Ablation A2 (§4.2): sensitivity to the x/z penalty weight φ.
//!
//! The paper settled on φ = 2: φ = 1 under-penalizes ill-defined wires
//! (slower repairs), φ = 3 depresses fitness too much (worse search).
//! We measure evaluations-to-repair on x-heavy defects for each φ.

use cirfix::{repair, FitnessParams, RepairConfig};
use cirfix_bench::{experiment_config, print_table};
use cirfix_benchmarks::scenario;

fn main() {
    // Defects whose symptom involves uninitialized (x) outputs.
    let ids = ["counter_reset", "sdram_sync_reset", "fsm_next_default"];
    let seeds = [1u64, 2, 3];
    let mut rows = Vec::new();
    for phi in [1.0f64, 2.0, 3.0] {
        let mut total_evals = 0u64;
        let mut repaired = 0u32;
        let mut runs = 0u32;
        for id in ids {
            let s = scenario(id).expect("scenario");
            let problem = s.problem().expect("problem");
            for seed in seeds {
                let config = RepairConfig {
                    fitness: FitnessParams { phi },
                    ..experiment_config(seed)
                };
                let r = repair(&problem, config);
                runs += 1;
                total_evals += r.fitness_evals;
                if r.is_plausible() {
                    repaired += 1;
                }
            }
            eprintln!("phi={phi} {id} done");
        }
        rows.push(vec![
            format!("{phi}"),
            format!("{repaired}/{runs}"),
            format!("{:.0}", total_evals as f64 / f64::from(runs)),
        ]);
    }
    println!("Ablation A2: repair success and cost vs phi\n");
    print_table(&["phi", "Repaired trials", "Avg evals/trial"], &rows);
    println!("\nPaper: phi = 2 balances penalty strength and search mobility.");
}
