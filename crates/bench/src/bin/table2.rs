//! Regenerates Table 2: the benchmark hardware projects and their sizes.

use cirfix_bench::print_table;
use cirfix_benchmarks::projects;

fn main() {
    println!("Table 2: Benchmark hardware projects\n");
    let mut rows = Vec::new();
    let mut total_design = 0;
    let mut total_tb = 0;
    for p in projects() {
        total_design += p.design_loc();
        total_tb += p.testbench_loc();
        rows.push(vec![
            p.name.to_string(),
            p.description.to_string(),
            p.design_loc().to_string(),
            p.testbench_loc().to_string(),
        ]);
    }
    rows.push(vec![
        "Total".to_string(),
        String::new(),
        total_design.to_string(),
        total_tb.to_string(),
    ]);
    print_table(
        &["Project", "Description", "Project LOC", "Testbench LOC"],
        &rows,
    );
    println!(
        "\nPaper totals: 9770 project / 2923 testbench LOC (full-scale \
         open-source originals; ours are reduced-scale re-implementations \
         — see DESIGN.md substitutions)."
    );
}
