//! RQ2: performance for individual defect categories (Category 1
//! "easy" vs Category 2 "hard").

use cirfix_bench::{experiment_config, experiment_trials, print_table, run_scenario};
use cirfix_benchmarks::scenarios;

fn main() {
    let config = experiment_config(23);
    let trials = experiment_trials();
    let mut per_cat: [Vec<(bool, f64, u64)>; 2] = [Vec::new(), Vec::new()];
    for s in scenarios() {
        let outcome = run_scenario(s, &config, trials);
        per_cat[(s.category - 1) as usize].push((
            outcome.plausible,
            outcome.repair_time.as_secs_f64(),
            outcome.evals,
        ));
        eprintln!(
            "[{}] cat {} plausible={}",
            s.id, s.category, outcome.plausible
        );
    }
    let mut rows = Vec::new();
    for (idx, data) in per_cat.iter().enumerate() {
        let total = data.len();
        let repaired: Vec<&(bool, f64, u64)> = data.iter().filter(|d| d.0).collect();
        let rate = repaired.len() as f64 / total as f64 * 100.0;
        let avg_time = if repaired.is_empty() {
            0.0
        } else {
            repaired.iter().map(|d| d.1).sum::<f64>() / repaired.len() as f64
        };
        let avg_probes = if repaired.is_empty() {
            0.0
        } else {
            repaired.iter().map(|d| d.2 as f64).sum::<f64>() / repaired.len() as f64
        };
        rows.push(vec![
            format!("Category {}", idx + 1),
            format!("{}/{} ({rate:.1}%)", repaired.len(), total),
            format!("{avg_probes:.0}"),
            format!("{avg_time:.1}s"),
        ]);
    }
    println!("RQ2: per-category repair performance\n");
    print_table(
        &[
            "Category",
            "Plausible",
            "Avg fitness probes",
            "Avg wall time",
        ],
        &rows,
    );
    // The paper's significance test on repair times between categories.
    let times1: Vec<f64> = per_cat[0].iter().filter(|d| d.0).map(|d| d.1).collect();
    let times2: Vec<f64> = per_cat[1].iter().filter(|d| d.0).map(|d| d.1).collect();
    match cirfix_bench::stats::mann_whitney_u(&times1, &times2) {
        Some(mw) => println!(
            "\nMann-Whitney U on repair times: U = {:.1}, p = {:.3} (two-tailed)",
            mw.u, mw.p
        ),
        None => println!("\nMann-Whitney U: not enough repaired scenarios"),
    }
    println!(
        "Paper: Category 1 12/19 (63.2%), avg 9500 probes, 2.07 h; \
         Category 2 9/13 (69.2%), avg 5000 probes, 1.97 h; no significant \
         time difference (Mann-Whitney U, p = 0.373)."
    );
}
