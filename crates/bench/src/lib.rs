#![warn(missing_docs)]

//! Shared harness for regenerating every table and figure of the paper.
//!
//! The binaries in `src/bin/` (one per experiment — see DESIGN.md's
//! experiment index) call into this crate to run repair trials, classify
//! repairs against held-out verification benches, and print aligned
//! tables comparing our measurements with the paper's reported values.
//!
//! Experiment scale is tunable with environment variables so the whole
//! suite runs in CI time by default yet can be pushed toward the paper's
//! 5000-member, 12-hour configuration:
//!
//! * `CIRFIX_POP` — population size (default 300)
//! * `CIRFIX_GENS` — generations (default 8)
//! * `CIRFIX_TRIALS` — independent trials per scenario (default 3)
//! * `CIRFIX_EVALS` — fitness-evaluation budget per trial (default 6000)
//! * `CIRFIX_TIMEOUT_S` — wall-clock budget per trial in seconds

pub mod stats;

use std::time::{Duration, Instant};

use cirfix::{apply_patch, repair, verify_repair, RepairConfig, RepairResult};
use cirfix_benchmarks::{project, PaperOutcome, Scenario};

/// The outcome of running one defect scenario through the harness.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Scenario id.
    pub id: &'static str,
    /// Owning project.
    pub project: &'static str,
    /// Defect description (Table 3).
    pub description: &'static str,
    /// Category 1 or 2.
    pub category: u8,
    /// What the paper reports.
    pub paper: PaperOutcome,
    /// Did any trial find a plausible repair?
    pub plausible: bool,
    /// Did the plausible repair pass the held-out verification bench?
    pub correct: bool,
    /// Wall time until the successful trial returned (or total time).
    pub repair_time: Duration,
    /// Fitness evaluations across all trials.
    pub evals: u64,
    /// Generations in the successful (or last) trial.
    pub generations: u32,
    /// Minimized patch length (0 when not repaired).
    pub patch_len: usize,
    /// The winning trial's result.
    pub result: RepairResult,
}

/// Reads the experiment configuration from the environment.
pub fn experiment_config(seed: u64) -> RepairConfig {
    let mut config = RepairConfig::fast(seed);
    if let Some(v) = env_u64("CIRFIX_POP") {
        config.popn_size = v as usize;
    }
    if let Some(v) = env_u64("CIRFIX_GENS") {
        config.max_generations = v as u32;
    }
    if let Some(v) = env_u64("CIRFIX_EVALS") {
        config.max_fitness_evals = v;
    }
    if let Some(v) = env_u64("CIRFIX_TIMEOUT_S") {
        config.timeout = Duration::from_secs(v);
    }
    config
}

/// Number of independent trials per scenario (the paper uses 5).
pub fn experiment_trials() -> u32 {
    env_u64("CIRFIX_TRIALS").map_or(3, |v| v as u32)
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.parse().ok()
}

/// Runs up to `trials` independent repair trials on one scenario and
/// classifies the first plausible repair against the held-out bench.
///
/// # Panics
///
/// Panics if the benchmark sources fail to parse — the suite's tests
/// guarantee they do not.
pub fn run_scenario(s: &Scenario, base: &RepairConfig, trials: u32) -> ScenarioOutcome {
    let problem = s.problem().expect("benchmark problem builds");
    let p = project(s.project).expect("project exists");
    let started = Instant::now();
    let mut evals = 0;
    let mut last: Option<RepairResult> = None;
    for t in 0..trials.max(1) {
        let config = RepairConfig {
            seed: base.seed.wrapping_add(u64::from(t) * 1001),
            ..base.clone()
        };
        let result = repair(&problem, config);
        evals += result.fitness_evals;
        let plausible = result.is_plausible();
        last = Some(result);
        if plausible {
            break;
        }
    }
    let result = last.expect("at least one trial");
    let plausible = result.is_plausible();
    let correct = if plausible {
        let (repaired_full, _) =
            apply_patch(&problem.source, &problem.design_modules, &result.patch);
        verify_repair(
            &repaired_full,
            &problem.design_modules,
            &p.golden_design().expect("golden parses"),
            &p.verification().expect("verification parses"),
        )
        .unwrap_or(false)
    } else {
        false
    };
    ScenarioOutcome {
        id: s.id,
        project: s.project,
        description: s.description,
        category: s.category,
        paper: s.paper,
        plausible,
        correct,
        repair_time: started.elapsed(),
        evals,
        generations: result.generations,
        patch_len: result.patch.len(),
        result,
    }
}

/// Formats a [`PaperOutcome`] like Table 3 does.
pub fn paper_cell(outcome: PaperOutcome) -> String {
    match outcome {
        PaperOutcome::Correct(t) => format!("\u{2713}{t}"),
        PaperOutcome::Plausible(t) => format!("{t}"),
        PaperOutcome::NotRepaired => "-".to_string(),
    }
}

/// Formats our measured outcome in the same style.
pub fn ours_cell(o: &ScenarioOutcome) -> String {
    if !o.plausible {
        "-".to_string()
    } else if o.correct {
        format!("\u{2713}{:.1}", o.repair_time.as_secs_f64())
    } else {
        format!("{:.1}", o.repair_time.as_secs_f64())
    }
}

/// Prints a row-aligned text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            let pad = widths.get(i).copied().unwrap_or(0);
            out.push_str(&format!("{c:<pad$}  "));
        }
        println!("{}", out.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    let total: usize = widths.iter().sum::<usize>() + widths.len() * 2;
    println!("{}", "-".repeat(total));
    for row in rows {
        line(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_config_has_paper_ratios() {
        let c = experiment_config(1);
        assert!((c.rt_threshold - 0.2).abs() < 1e-9);
        assert!((c.mut_threshold - 0.7).abs() < 1e-9);
        assert_eq!(c.tournament_size, 5);
    }

    #[test]
    fn cells_format_like_table_3() {
        assert_eq!(paper_cell(PaperOutcome::Correct(19.8)), "\u{2713}19.8");
        assert_eq!(paper_cell(PaperOutcome::Plausible(57.9)), "57.9");
        assert_eq!(paper_cell(PaperOutcome::NotRepaired), "-");
    }

    #[test]
    fn run_scenario_repairs_an_easy_defect() {
        let s = cirfix_benchmarks::scenario("flip_flop_cond").unwrap();
        let outcome = run_scenario(s, &experiment_config(1), 2);
        assert!(outcome.plausible);
        assert!(outcome.correct);
        assert!(outcome.patch_len >= 1);
    }
}
