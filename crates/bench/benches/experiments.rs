//! Scaled experiments: one benchmark per paper artifact, sized to
//! finish under `cargo bench`. The full-scale regenerators live in
//! `src/bin/` (table3, rq1–rq4, …).
//!
//! Uses a plain `Instant`-based harness (`harness = false`): the build
//! environment has no crates.io access, so criterion is unavailable.

use std::hint::black_box;
use std::time::{Duration, Instant};

use cirfix::{brute_force_repair, degrade_oracle, repair, BruteConfig, RepairConfig};
use cirfix_benchmarks::scenario;

fn small_config(seed: u64) -> RepairConfig {
    RepairConfig {
        popn_size: 120,
        max_generations: 4,
        max_fitness_evals: 1_200,
        timeout: Duration::from_secs(20),
        seed,
        ..RepairConfig::paper()
    }
}

/// Runs `f` `samples` times and reports the mean wall time.
fn bench(name: &str, samples: u32, mut f: impl FnMut(u64)) {
    let start = Instant::now();
    for i in 0..samples {
        f(u64::from(i) + 1);
    }
    let per = start.elapsed() / samples;
    println!("{name:<36} {per:>12.3?} /iter  ({samples} samples)");
}

fn main() {
    // Table 3 (scaled): one full repair run on an easy scenario.
    let sens = scenario("counter_sens_list").expect("scenario");
    let sens_problem = sens.problem().expect("problem");
    bench("table3/repair_counter_sens_list", 10, |seed| {
        black_box(repair(black_box(&sens_problem), small_config(seed)));
    });

    // RQ1 (scaled): brute force on the same defect, same budget.
    bench("rq1/brute_force_counter_sens_list", 10, |_| {
        black_box(brute_force_repair(
            black_box(&sens_problem),
            BruteConfig {
                timeout: Duration::from_secs(20),
                max_evals: 1_200,
                seed: 1,
                fitness: Default::default(),
                ..BruteConfig::default()
            },
        ));
    });

    // RQ3 (scaled): fitness evaluation cost, the >90% component of
    // repair wall time in the paper.
    let reset = scenario("counter_reset").expect("scenario");
    let reset_problem = reset.problem().expect("problem");
    bench("rq3/fitness_probe_counter", 50, |_| {
        black_box(cirfix::evaluate(
            black_box(&reset_problem),
            &cirfix::Patch::empty(),
            Default::default(),
        ));
    });

    // RQ4 (scaled): repair under a 25% oracle.
    let ff = scenario("flip_flop_cond").expect("scenario");
    let ff_problem = ff.problem().expect("problem");
    bench("rq4/repair_with_quarter_oracle", 10, |_| {
        let mut p = ff_problem.clone();
        p.oracle = degrade_oracle(&p.oracle, 0.25, 5);
        black_box(repair(&p, small_config(3)));
    });
}
