//! Criterion-driven scaled experiments: one benchmark per paper
//! artifact, sized to finish under `cargo bench`. The full-scale
//! regenerators live in `src/bin/` (table3, rq1–rq4, …).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use std::time::Duration;

use cirfix::{brute_force_repair, degrade_oracle, repair, BruteConfig, RepairConfig};
use cirfix_benchmarks::scenario;

fn small_config(seed: u64) -> RepairConfig {
    RepairConfig {
        popn_size: 120,
        max_generations: 4,
        max_fitness_evals: 1_200,
        timeout: Duration::from_secs(20),
        seed,
        ..RepairConfig::paper()
    }
}

/// Table 3 (scaled): one full repair run on an easy scenario.
fn bench_table3_repair(c: &mut Criterion) {
    let s = scenario("counter_sens_list").expect("scenario");
    let problem = s.problem().expect("problem");
    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    group.bench_function("repair_counter_sens_list", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            repair(black_box(&problem), small_config(seed))
        })
    });
    group.finish();
}

/// RQ1 (scaled): brute force on the same defect, same budget.
fn bench_rq1_brute(c: &mut Criterion) {
    let s = scenario("counter_sens_list").expect("scenario");
    let problem = s.problem().expect("problem");
    let mut group = c.benchmark_group("rq1");
    group.sample_size(10);
    group.bench_function("brute_force_counter_sens_list", |b| {
        b.iter(|| {
            brute_force_repair(
                black_box(&problem),
                BruteConfig {
                    timeout: Duration::from_secs(20),
                    max_evals: 1_200,
                    seed: 1,
                    fitness: Default::default(),
                },
            )
        })
    });
    group.finish();
}

/// RQ3 (scaled): fitness evaluation cost, the >90% component of repair
/// wall time in the paper.
fn bench_rq3_fitness(c: &mut Criterion) {
    let s = scenario("counter_reset").expect("scenario");
    let problem = s.problem().expect("problem");
    let mut group = c.benchmark_group("rq3");
    group.bench_function("fitness_probe_counter", |b| {
        b.iter(|| {
            cirfix::evaluate(
                black_box(&problem),
                &cirfix::Patch::empty(),
                Default::default(),
            )
        })
    });
    group.finish();
}

/// RQ4 (scaled): repair under a 25% oracle.
fn bench_rq4_degraded(c: &mut Criterion) {
    let s = scenario("flip_flop_cond").expect("scenario");
    let problem = s.problem().expect("problem");
    let mut group = c.benchmark_group("rq4");
    group.sample_size(10);
    group.bench_function("repair_with_quarter_oracle", |b| {
        b.iter_batched(
            || {
                let mut p = problem.clone();
                p.oracle = degrade_oracle(&p.oracle, 0.25, 5);
                p
            },
            |p| repair(&p, small_config(3)),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_table3_repair,
    bench_rq1_brute,
    bench_rq3_fitness,
    bench_rq4_degraded
);
criterion_main!(benches);
