//! Micro-benchmarks for the pipeline stages: parsing, elaboration,
//! simulation, fitness evaluation, fault localization, and patch
//! application.
//!
//! Uses a plain `Instant`-based harness (`harness = false`): the build
//! environment has no crates.io access, so criterion is unavailable.

use std::hint::black_box;
use std::time::Instant;

use cirfix::{evaluate, fault_localization, FitnessParams, Patch};
use cirfix_benchmarks::{project, scenario};
use cirfix_sim::{SimConfig, Simulator};

/// Times `f` adaptively: warm up, then run enough iterations to fill
/// roughly a tenth of a second, and report the mean time per iteration.
fn bench(name: &str, mut f: impl FnMut()) {
    for _ in 0..3 {
        f();
    }
    let probe = Instant::now();
    f();
    let once = probe.elapsed().as_nanos().max(1);
    let iters = (100_000_000 / once).clamp(1, 10_000) as u32;
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per = start.elapsed().as_nanos() / u128::from(iters);
    println!("{name:<36} {per:>12} ns/iter  ({iters} iters)");
}

fn main() {
    let i2c = project("i2c").expect("project");
    bench("parse_i2c_design", || {
        black_box(cirfix_parser::parse(black_box(i2c.design)).expect("parses"));
    });

    let counter = project("counter").expect("project");
    bench("parse_counter_with_tb", || {
        let mut f = cirfix_parser::parse(black_box(counter.design)).expect("parses");
        f.extend_from(cirfix_parser::parse(black_box(counter.testbench)).expect("parses"));
        black_box(f);
    });

    let tate = project("tate_pairing").expect("project");
    let tate_file = {
        let mut f = cirfix_parser::parse(tate.design).expect("parses");
        f.extend_from(cirfix_parser::parse(tate.testbench).expect("parses"));
        f
    };
    bench("elaborate_tate_pairing", || {
        black_box(cirfix_sim::elaborate(black_box(&tate_file), "tate_tb").expect("elaborates"));
    });

    let counter_full = counter.golden_full().expect("parses");
    bench("simulate_counter_testbench", || {
        let mut sim = Simulator::new(black_box(&counter_full), "counter_tb", SimConfig::default())
            .expect("elaborates");
        black_box(sim.run().expect("runs"));
    });

    let reset = scenario("counter_reset").expect("scenario");
    let reset_problem = reset.problem().expect("problem");
    bench("evaluate_empty_patch_counter", || {
        black_box(evaluate(
            black_box(&reset_problem),
            &Patch::empty(),
            FitnessParams::default(),
        ));
    });

    let base = evaluate(&reset_problem, &Patch::empty(), FitnessParams::default());
    let faulty = reset.faulty_design_file().expect("parses");
    let module = faulty.module("counter").expect("module");
    bench("fault_localization_counter", || {
        black_box(fault_localization(
            black_box(&[module]),
            black_box(&base.mismatched),
        ));
    });

    let sens = scenario("counter_sens_list").expect("scenario");
    let sens_problem = sens.problem().expect("problem");
    let sens_faulty = sens.faulty_design_file().expect("parses");
    let sens_module = sens_faulty.module("counter").expect("module");
    let stmt = cirfix_ast::visit::stmts_of_module(sens_module)[0].id();
    let patch = Patch::single(cirfix::Edit::DeleteStmt { target: stmt });
    bench("apply_single_edit_patch", || {
        black_box(cirfix::apply_patch(
            black_box(&sens_problem.source),
            &sens_problem.design_modules,
            black_box(&patch),
        ));
    });
}
