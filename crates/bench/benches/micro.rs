//! Criterion micro-benchmarks for the pipeline stages: parsing,
//! elaboration, simulation, fitness evaluation, fault localization, and
//! patch application.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cirfix::{evaluate, fault_localization, FitnessParams, Patch};
use cirfix_benchmarks::{project, scenario};
use cirfix_sim::{SimConfig, Simulator};

fn bench_parser(c: &mut Criterion) {
    let p = project("i2c").expect("project");
    c.bench_function("parse_i2c_design", |b| {
        b.iter(|| cirfix_parser::parse(black_box(p.design)).expect("parses"))
    });
    let counter = project("counter").expect("project");
    c.bench_function("parse_counter_with_tb", |b| {
        b.iter(|| {
            let mut f = cirfix_parser::parse(black_box(counter.design)).expect("parses");
            f.extend_from(cirfix_parser::parse(black_box(counter.testbench)).expect("parses"));
            f
        })
    });
}

fn bench_elaboration(c: &mut Criterion) {
    let p = project("tate_pairing").expect("project");
    let file = {
        let mut f = cirfix_parser::parse(p.design).expect("parses");
        f.extend_from(cirfix_parser::parse(p.testbench).expect("parses"));
        f
    };
    c.bench_function("elaborate_tate_pairing", |b| {
        b.iter(|| cirfix_sim::elaborate(black_box(&file), "tate_tb").expect("elaborates"))
    });
}

fn bench_simulation(c: &mut Criterion) {
    let p = project("counter").expect("project");
    let file = p.golden_full().expect("parses");
    c.bench_function("simulate_counter_testbench", |b| {
        b.iter(|| {
            let mut sim =
                Simulator::new(black_box(&file), "counter_tb", SimConfig::default())
                    .expect("elaborates");
            sim.run().expect("runs")
        })
    });
}

fn bench_fitness_pipeline(c: &mut Criterion) {
    let s = scenario("counter_reset").expect("scenario");
    let problem = s.problem().expect("problem");
    c.bench_function("evaluate_empty_patch_counter", |b| {
        b.iter(|| {
            evaluate(
                black_box(&problem),
                &Patch::empty(),
                FitnessParams::default(),
            )
        })
    });
}

fn bench_fault_localization(c: &mut Criterion) {
    let s = scenario("counter_reset").expect("scenario");
    let problem = s.problem().expect("problem");
    let base = evaluate(&problem, &Patch::empty(), FitnessParams::default());
    let faulty = s.faulty_design_file().expect("parses");
    let module = faulty.module("counter").expect("module");
    c.bench_function("fault_localization_counter", |b| {
        b.iter(|| fault_localization(black_box(&[module]), black_box(&base.mismatched)))
    });
}

fn bench_patch_application(c: &mut Criterion) {
    let s = scenario("counter_sens_list").expect("scenario");
    let problem = s.problem().expect("problem");
    let faulty = s.faulty_design_file().expect("parses");
    let module = faulty.module("counter").expect("module");
    let stmt = cirfix_ast::visit::stmts_of_module(module)[0].id();
    let patch = Patch::single(cirfix::Edit::DeleteStmt { target: stmt });
    c.bench_function("apply_single_edit_patch", |b| {
        b.iter(|| {
            cirfix::apply_patch(
                black_box(&problem.source),
                &problem.design_modules,
                black_box(&patch),
            )
        })
    });
}

criterion_group!(
    benches,
    bench_parser,
    bench_elaboration,
    bench_simulation,
    bench_fitness_pipeline,
    bench_fault_localization,
    bench_patch_application
);
criterion_main!(benches);
