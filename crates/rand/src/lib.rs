#![warn(missing_docs)]

//! A vendored, dependency-free subset of the `rand` 0.8 API.
//!
//! The build environment for this repository has no access to crates.io,
//! so this crate provides the exact surface the workspace uses —
//! [`Rng`], [`SeedableRng`], [`rngs::StdRng`], and
//! [`seq::SliceRandom`] — backed by the xoshiro256** generator seeded
//! through SplitMix64. Sequences differ from upstream `rand`'s
//! ChaCha-based `StdRng`, but every consumer in this workspace relies
//! only on determinism-per-seed and statistical quality, not on
//! specific streams.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG (the subset of
/// `rand`'s `Standard` distribution the workspace needs).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can produce a uniform sample, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer sampling in `[0, bound)` by rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Rejection zone keeps the modulo unbiased.
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    // Only reachable for 64-bit types covering the full
                    // domain; every word is a valid sample.
                    return start.wrapping_add(rng.next_u64() as $t);
                }
                start + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_range_uint!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing random-value API (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]: {p}");
        f64::sample(self) < p
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// SplitMix64. Fast, high quality, and fully deterministic per seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl StdRng {
        /// Captures the generator's internal state so a consumer can
        /// checkpoint it and later continue the exact same stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a previously captured
        /// [`StdRng::state`]; the stream continues where it left off.
        pub fn from_state(s: [u64; 4]) -> StdRng {
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related extensions (subset of `rand::seq`).

    use super::{Rng, RngCore};

    /// Random operations on slices (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly chosen element, or `None` for an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|s| *s), "{seen:?}");
        for _ in 0..100 {
            let v = rng.gen_range(10u32..=12);
            assert!((10..=12).contains(&v));
        }
        // Degenerate inclusive range.
        assert_eq!(rng.gen_range(9usize..=9), 9);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn choose_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(6);
        let items = [0usize, 1, 2, 3];
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[*items.choose(&mut rng).unwrap()] += 1;
        }
        assert!(counts.iter().all(|c| *c > 800), "{counts:?}");
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 32-element shuffle virtually never fixes");
    }
}
