//! Differential tests: the word-packed operators must agree with the
//! per-bit reference algorithms on every input.
//!
//! Each operator is exercised on ≥ 10,000 seeded random vector pairs,
//! swept across x/z densities of 0%, 25% and 50% and widths from 1 to
//! 256 bits (so multiword and >128-bit paths are always hit). The
//! reference implementations are called directly from
//! `cirfix_logic::reference`; the packed methods run through the
//! default backend, so no global state is flipped here.

use cirfix_logic::{reference, Logic, LogicVec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// 3 densities × this ⇒ > 10k pairs per operator.
const CASES_PER_DENSITY: usize = 3400;
const DENSITIES: [u32; 3] = [0, 25, 50];

fn arb_width(rng: &mut StdRng) -> usize {
    // Bias toward narrow vectors but always revisit the multiword and
    // beyond-u128 ranges.
    match rng.gen_range(0u32..4) {
        0 => rng.gen_range(1usize..=16),
        1 => rng.gen_range(1usize..=64),
        2 => rng.gen_range(65usize..=128),
        _ => rng.gen_range(129usize..=256),
    }
}

/// A vector whose bits are x/z with probability `density` percent.
fn arb_vec(rng: &mut StdRng, width: usize, density: u32) -> LogicVec {
    let bits = (0..width)
        .map(|_| {
            if rng.gen_range(0u32..100) < density {
                if rng.gen() {
                    Logic::X
                } else {
                    Logic::Z
                }
            } else if rng.gen() {
                Logic::One
            } else {
                Logic::Zero
            }
        })
        .collect();
    LogicVec::from_bits_lsb(bits)
}

/// Runs `check(rng, density)` across the full density sweep.
fn sweep(seed: u64, mut check: impl FnMut(&mut StdRng, u32)) {
    for density in DENSITIES {
        let mut rng = StdRng::seed_from_u64(seed ^ u64::from(density) << 32);
        for _ in 0..CASES_PER_DENSITY {
            check(&mut rng, density);
        }
    }
}

macro_rules! binary_vec_op {
    ($name:ident, $method:ident, $seed:expr) => {
        #[test]
        fn $name() {
            sweep($seed, |rng, d| {
                let wa = arb_width(rng);
                let wb = arb_width(rng);
                let a = arb_vec(rng, wa, d);
                let b = arb_vec(rng, wb, d);
                assert_eq!(
                    a.$method(&b),
                    reference::$method(&a, &b),
                    "{} diverged on {a} / {b}",
                    stringify!($method)
                );
            });
        }
    };
}

macro_rules! binary_logic_op {
    ($name:ident, $method:ident, $seed:expr) => {
        #[test]
        fn $name() {
            sweep($seed, |rng, d| {
                let wa = arb_width(rng);
                let wb = arb_width(rng);
                let a = arb_vec(rng, wa, d);
                let b = arb_vec(rng, wb, d);
                assert_eq!(
                    a.$method(&b),
                    reference::$method(&a, &b),
                    "{} diverged on {a} / {b}",
                    stringify!($method)
                );
            });
        }
    };
}

macro_rules! unary_op {
    ($name:ident, $method:ident, $seed:expr) => {
        #[test]
        fn $name() {
            sweep($seed, |rng, d| {
                let w = arb_width(rng);
                let a = arb_vec(rng, w, d);
                assert_eq!(
                    a.$method(),
                    reference::$method(&a),
                    "{} diverged on {a}",
                    stringify!($method)
                );
            });
        }
    };
}

binary_vec_op!(diff_add, add, 0x01);
binary_vec_op!(diff_sub, sub, 0x02);
binary_vec_op!(diff_mul, mul, 0x03);
binary_vec_op!(diff_div, div, 0x04);
binary_vec_op!(diff_rem, rem, 0x05);
binary_vec_op!(diff_bit_and, bit_and, 0x06);
binary_vec_op!(diff_bit_or, bit_or, 0x07);
binary_vec_op!(diff_bit_xor, bit_xor, 0x08);
binary_vec_op!(diff_bit_xnor, bit_xnor, 0x09);
binary_vec_op!(diff_merge_ambiguous, merge_ambiguous, 0x0a);

unary_op!(diff_neg, neg, 0x10);
unary_op!(diff_bit_not, bit_not, 0x11);
unary_op!(diff_reduce_and, reduce_and, 0x12);
unary_op!(diff_reduce_or, reduce_or, 0x13);
unary_op!(diff_reduce_xor, reduce_xor, 0x14);
unary_op!(diff_truth, truth, 0x15);
unary_op!(diff_logical_not, logical_not, 0x16);

binary_logic_op!(diff_logic_eq, logic_eq, 0x20);
binary_logic_op!(diff_case_eq, case_eq, 0x21);
binary_logic_op!(diff_lt, lt, 0x22);
binary_logic_op!(diff_le, le, 0x23);
binary_logic_op!(diff_logical_and, logical_and, 0x24);
binary_logic_op!(diff_logical_or, logical_or, 0x25);

#[test]
fn diff_shl_shr() {
    sweep(0x30, |rng, d| {
        let w = arb_width(rng);
        let v = arb_vec(rng, w, d);
        // Bias amounts toward the interesting range [0, 2·width), but
        // also generate wide amounts so the ≥ 2^64 known-amount path
        // (the historical all-x bug) is covered.
        let amount = match rng.gen_range(0u32..4) {
            0..=2 => {
                let n = rng.gen_range(0u64..(2 * v.width() as u64 + 1));
                LogicVec::from_u64(n, 72)
            }
            _ => {
                let aw = rng.gen_range(1usize..=80);
                arb_vec(rng, aw, d)
            }
        };
        assert_eq!(
            v.shl(&amount),
            reference::shl(&v, &amount),
            "shl diverged on {v} << {amount}"
        );
        assert_eq!(
            v.shr(&amount),
            reference::shr(&v, &amount),
            "shr diverged on {v} >> {amount}"
        );
    });
}

#[test]
fn diff_select() {
    sweep(0x31, |rng, d| {
        let cw = rng.gen_range(1usize..=8);
        let cond = arb_vec(rng, cw, d);
        let w = arb_width(rng);
        let t = arb_vec(rng, w, d);
        let e = arb_vec(rng, w, d);
        assert_eq!(
            cond.select(&t, &e),
            reference::select(&cond, &t, &e),
            "select diverged on {cond} ? {t} : {e}"
        );
    });
}

#[test]
fn diff_case_matches() {
    sweep(0x32, |rng, d| {
        let w = arb_width(rng);
        let subject = arb_vec(rng, w, d);
        // Mix same-width and mismatched-width labels.
        let lw = if rng.gen() { w } else { arb_width(rng) };
        let label = arb_vec(rng, lw, d);
        assert_eq!(
            subject.casez_match(&label),
            reference::casez_match(&subject, &label),
            "casez diverged on {subject} vs {label}"
        );
        assert_eq!(
            subject.casex_match(&label),
            reference::casex_match(&subject, &label),
            "casex diverged on {subject} vs {label}"
        );
    });
}

#[test]
fn diff_structural() {
    // slice / concat / replicate: packed plane surgery vs per-bit
    // reconstruction.
    sweep(0x33, |rng, d| {
        let w = arb_width(rng);
        let v = arb_vec(rng, w, d);
        let lsb = rng.gen_range(0usize..v.width() + 8);
        let msb = lsb + rng.gen_range(0usize..72);
        assert_eq!(
            v.slice(msb, lsb),
            reference::slice(&v, msb, lsb),
            "slice diverged on {v}[{msb}:{lsb}]"
        );

        let n_parts = rng.gen_range(1usize..4);
        let parts: Vec<LogicVec> = (0..n_parts)
            .map(|_| {
                let pw = rng.gen_range(1usize..=72);
                arb_vec(rng, pw, d)
            })
            .collect();
        assert_eq!(
            LogicVec::concat(&parts),
            reference::concat(&parts),
            "concat diverged"
        );

        let count = rng.gen_range(1usize..5);
        assert_eq!(
            v.replicate(count),
            reference::replicate(&v, count),
            "replicate diverged on {{{count}{{{v}}}}}"
        );
    });
}

#[test]
fn diff_resized() {
    // resized must zero-extend (Verilog unsigned) and truncate exactly
    // like the per-bit view.
    sweep(0x34, |rng, d| {
        let w = arb_width(rng);
        let v = arb_vec(rng, w, d);
        let nw = arb_width(rng);
        let r = v.resized(nw);
        assert_eq!(r.width(), nw);
        for i in 0..nw {
            let expect = if i < v.width() { v.bit(i) } else { Logic::Zero };
            assert_eq!(r.bit(i), expect, "resized diverged on {v} -> {nw} bit {i}");
        }
    });
}
