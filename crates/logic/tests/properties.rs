//! Property-based tests for the four-state value domain.

use cirfix_logic::{Logic, LogicVec};
use proptest::prelude::*;

fn arb_width() -> impl Strategy<Value = usize> {
    1usize..=64
}

fn arb_logic() -> impl Strategy<Value = Logic> {
    prop_oneof![
        Just(Logic::Zero),
        Just(Logic::One),
        Just(Logic::X),
        Just(Logic::Z),
    ]
}

proptest! {
    /// Arithmetic on fully-known vectors agrees with wrapping u64
    /// arithmetic at the same width.
    #[test]
    fn add_matches_u64(a in 0u64..=u64::MAX, b in 0u64..=u64::MAX, w in arb_width()) {
        let va = LogicVec::from_u64(a, w);
        let vb = LogicVec::from_u64(b, w);
        let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
        let expected = (a & mask).wrapping_add(b & mask) & mask;
        prop_assert_eq!(va.add(&vb).to_u64(), Some(expected));
    }

    #[test]
    fn sub_is_inverse_of_add(a in 0u64..1 << 32, b in 0u64..1 << 32, w in 1usize..=32) {
        let va = LogicVec::from_u64(a, w);
        let vb = LogicVec::from_u64(b, w);
        let back = va.add(&vb).sub(&vb);
        prop_assert_eq!(back.to_u64(), va.to_u64());
    }

    /// Any unknown input bit poisons the whole arithmetic result.
    #[test]
    fn unknown_operands_poison_arithmetic(w in arb_width(), v in 0u64..=u64::MAX) {
        let known = LogicVec::from_u64(v, w);
        let unknown = LogicVec::unknown(w);
        prop_assert!(known.add(&unknown).has_unknown());
        prop_assert!(unknown.mul(&known).has_unknown());
        prop_assert_eq!(known.lt(&unknown), Logic::X);
    }

    /// Bitwise NOT is an involution on known bits and maps x/z to x.
    #[test]
    fn bit_not_involution(w in arb_width(), bits in proptest::collection::vec(arb_logic(), 1..64)) {
        let _ = w;
        let v = LogicVec::from_bits_lsb(bits);
        let twice = v.bit_not().bit_not();
        for i in 0..v.width() {
            match v.bit(i) {
                Logic::Zero | Logic::One => prop_assert_eq!(twice.bit(i), v.bit(i)),
                _ => prop_assert_eq!(twice.bit(i), Logic::X),
            }
        }
    }

    /// Concatenation width is the sum of part widths, and slicing the
    /// result recovers the parts.
    #[test]
    fn concat_slice_round_trip(aw in 1usize..16, bw in 1usize..16, a in 0u64..=u64::MAX, b in 0u64..=u64::MAX) {
        let va = LogicVec::from_u64(a, aw);
        let vb = LogicVec::from_u64(b, bw);
        let cat = LogicVec::concat(&[va.clone(), vb.clone()]);
        prop_assert_eq!(cat.width(), aw + bw);
        // {a, b}: b occupies the low bits.
        prop_assert_eq!(cat.slice(bw - 1, 0), vb);
        prop_assert_eq!(cat.slice(aw + bw - 1, bw), va);
    }

    /// Replication n times multiplies the width and repeats the bits.
    #[test]
    fn replicate_repeats(w in 1usize..8, n in 1usize..6, v in 0u64..256) {
        let base = LogicVec::from_u64(v, w);
        let rep = base.replicate(n);
        prop_assert_eq!(rep.width(), w * n);
        for k in 0..n {
            prop_assert_eq!(rep.slice((k + 1) * w - 1, k * w), base.clone());
        }
    }

    /// Shifting left then right by the same known amount preserves the
    /// low bits that survive.
    #[test]
    fn shl_shr_partial_inverse(w in 8usize..32, v in 0u64..=u64::MAX, n in 0u64..8) {
        let base = LogicVec::from_u64(v, w);
        let amount = LogicVec::from_u64(n, 8);
        let round = base.shl(&amount).shr(&amount);
        // The top n bits are lost; the rest must match.
        for i in 0..w - n as usize {
            prop_assert_eq!(round.bit(i), base.bit(i));
        }
    }

    /// Logical equality is reflexive for known values and x otherwise.
    #[test]
    fn eq_reflexive(w in arb_width(), bits in proptest::collection::vec(arb_logic(), 1..64)) {
        let _ = w;
        let v = LogicVec::from_bits_lsb(bits);
        let eq = v.logic_eq(&v);
        if v.is_fully_known() {
            prop_assert_eq!(eq, Logic::One);
        } else {
            prop_assert_eq!(eq, Logic::X);
        }
        // Case equality is always reflexive.
        prop_assert_eq!(v.case_eq(&v), Logic::One);
    }

    /// The ternary merge never invents a known bit the branches
    /// disagree on.
    #[test]
    fn select_merge_sound(w in 1usize..16, t in 0u64..=u64::MAX, e in 0u64..=u64::MAX) {
        let vt = LogicVec::from_u64(t, w);
        let ve = LogicVec::from_u64(e, w);
        let m = LogicVec::scalar(Logic::X).select(&vt, &ve);
        for i in 0..w {
            if vt.bit(i) == ve.bit(i) {
                prop_assert_eq!(m.bit(i), vt.bit(i));
            } else {
                prop_assert_eq!(m.bit(i), Logic::X);
            }
        }
    }

    /// Literal formatting in any base parses back to the same value.
    #[test]
    fn based_string_round_trips(w in 1usize..32, v in 0u64..=u64::MAX) {
        use cirfix_logic::LiteralBase;
        let vec = LogicVec::from_u64(v, w);
        for base in [LiteralBase::Binary, LiteralBase::Hex, LiteralBase::Decimal] {
            let s = vec.to_based_string(base);
            // Format: W'bDIGITS
            let (width_part, rest) = s.split_once('\'').expect("tick");
            let width: usize = width_part.parse().expect("width");
            let digits = &rest[1..];
            let parsed = LogicVec::parse_based(Some(width), base, digits).expect("parses");
            prop_assert_eq!(parsed, vec.clone());
        }
    }

    /// Write-then-read of a slice returns what was written (within
    /// range).
    #[test]
    fn write_slice_read_back(w in 4usize..32, v in 0u64..=u64::MAX, lo in 0usize..4, len in 1usize..8) {
        let hi = (lo + len - 1).min(w - 1);
        let mut target = LogicVec::zero(w);
        let data = LogicVec::from_u64(v, hi - lo + 1);
        target.write_slice(hi, lo, &data);
        prop_assert_eq!(target.slice(hi, lo), data);
    }
}
