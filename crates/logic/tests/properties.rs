//! Randomized property tests for the four-state value domain.
//!
//! Formerly written with proptest; the build environment has no
//! crates.io access, so each property now drives its own seeded RNG —
//! the cases differ per property but stay deterministic per build.

use cirfix_logic::{Logic, LogicVec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 256;

fn arb_width(rng: &mut StdRng) -> usize {
    rng.gen_range(1usize..=64)
}

fn arb_logic(rng: &mut StdRng) -> Logic {
    match rng.gen_range(0u32..4) {
        0 => Logic::Zero,
        1 => Logic::One,
        2 => Logic::X,
        _ => Logic::Z,
    }
}

fn arb_bits(rng: &mut StdRng, len: usize) -> Vec<Logic> {
    (0..len).map(|_| arb_logic(rng)).collect()
}

/// Arithmetic on fully-known vectors agrees with wrapping u64
/// arithmetic at the same width.
#[test]
fn add_matches_u64() {
    let mut rng = StdRng::seed_from_u64(0xadd);
    for _ in 0..CASES {
        let (a, b) = (rng.gen::<u64>(), rng.gen::<u64>());
        let w = arb_width(&mut rng);
        let va = LogicVec::from_u64(a, w);
        let vb = LogicVec::from_u64(b, w);
        let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
        let expected = (a & mask).wrapping_add(b & mask) & mask;
        assert_eq!(va.add(&vb).to_u64(), Some(expected));
    }
}

#[test]
fn sub_is_inverse_of_add() {
    let mut rng = StdRng::seed_from_u64(0x50b);
    for _ in 0..CASES {
        let a = rng.gen_range(0u64..1 << 32);
        let b = rng.gen_range(0u64..1 << 32);
        let w = rng.gen_range(1usize..=32);
        let va = LogicVec::from_u64(a, w);
        let vb = LogicVec::from_u64(b, w);
        let back = va.add(&vb).sub(&vb);
        assert_eq!(back.to_u64(), va.to_u64());
    }
}

/// Any unknown input bit poisons the whole arithmetic result.
#[test]
fn unknown_operands_poison_arithmetic() {
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..CASES {
        let w = arb_width(&mut rng);
        let known = LogicVec::from_u64(rng.gen(), w);
        let unknown = LogicVec::unknown(w);
        assert!(known.add(&unknown).has_unknown());
        assert!(unknown.mul(&known).has_unknown());
        assert_eq!(known.lt(&unknown), Logic::X);
    }
}

/// Bitwise NOT is an involution on known bits and maps x/z to x.
#[test]
fn bit_not_involution() {
    let mut rng = StdRng::seed_from_u64(4);
    for _ in 0..CASES {
        let len = rng.gen_range(1usize..64);
        let v = LogicVec::from_bits_lsb(arb_bits(&mut rng, len));
        let twice = v.bit_not().bit_not();
        for i in 0..v.width() {
            match v.bit(i) {
                Logic::Zero | Logic::One => assert_eq!(twice.bit(i), v.bit(i)),
                _ => assert_eq!(twice.bit(i), Logic::X),
            }
        }
    }
}

/// Concatenation width is the sum of part widths, and slicing the
/// result recovers the parts.
#[test]
fn concat_slice_round_trip() {
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..CASES {
        let aw = rng.gen_range(1usize..16);
        let bw = rng.gen_range(1usize..16);
        let va = LogicVec::from_u64(rng.gen(), aw);
        let vb = LogicVec::from_u64(rng.gen(), bw);
        let cat = LogicVec::concat(&[va.clone(), vb.clone()]);
        assert_eq!(cat.width(), aw + bw);
        // {a, b}: b occupies the low bits.
        assert_eq!(cat.slice(bw - 1, 0), vb);
        assert_eq!(cat.slice(aw + bw - 1, bw), va);
    }
}

/// Replication n times multiplies the width and repeats the bits.
#[test]
fn replicate_repeats() {
    let mut rng = StdRng::seed_from_u64(6);
    for _ in 0..CASES {
        let w = rng.gen_range(1usize..8);
        let n = rng.gen_range(1usize..6);
        let base = LogicVec::from_u64(rng.gen_range(0u64..256), w);
        let rep = base.replicate(n);
        assert_eq!(rep.width(), w * n);
        for k in 0..n {
            assert_eq!(rep.slice((k + 1) * w - 1, k * w), base.clone());
        }
    }
}

/// Shifting left then right by the same known amount preserves the
/// low bits that survive.
#[test]
fn shl_shr_partial_inverse() {
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..CASES {
        let w = rng.gen_range(8usize..32);
        let v: u64 = rng.gen();
        let n = rng.gen_range(0u64..8);
        let base = LogicVec::from_u64(v, w);
        let amount = LogicVec::from_u64(n, 8);
        let round = base.shl(&amount).shr(&amount);
        // The top n bits are lost; the rest must match.
        for i in 0..w - n as usize {
            assert_eq!(round.bit(i), base.bit(i));
        }
    }
}

/// Logical equality is reflexive for known values and x otherwise.
#[test]
fn eq_reflexive() {
    let mut rng = StdRng::seed_from_u64(8);
    for _ in 0..CASES {
        let len = rng.gen_range(1usize..64);
        let v = LogicVec::from_bits_lsb(arb_bits(&mut rng, len));
        let eq = v.logic_eq(&v);
        if v.is_fully_known() {
            assert_eq!(eq, Logic::One);
        } else {
            assert_eq!(eq, Logic::X);
        }
        // Case equality is always reflexive.
        assert_eq!(v.case_eq(&v), Logic::One);
    }
}

/// The ternary merge never invents a known bit the branches
/// disagree on.
#[test]
fn select_merge_sound() {
    let mut rng = StdRng::seed_from_u64(9);
    for _ in 0..CASES {
        let w = rng.gen_range(1usize..16);
        let vt = LogicVec::from_u64(rng.gen(), w);
        let ve = LogicVec::from_u64(rng.gen(), w);
        let m = LogicVec::scalar(Logic::X).select(&vt, &ve);
        for i in 0..w {
            if vt.bit(i) == ve.bit(i) {
                assert_eq!(m.bit(i), vt.bit(i));
            } else {
                assert_eq!(m.bit(i), Logic::X);
            }
        }
    }
}

/// Literal formatting in any base parses back to the same value.
#[test]
fn based_string_round_trips() {
    use cirfix_logic::LiteralBase;
    let mut rng = StdRng::seed_from_u64(10);
    for _ in 0..CASES {
        let w = rng.gen_range(1usize..32);
        let vec = LogicVec::from_u64(rng.gen(), w);
        for base in [LiteralBase::Binary, LiteralBase::Hex, LiteralBase::Decimal] {
            let s = vec.to_based_string(base);
            // Format: W'bDIGITS
            let (width_part, rest) = s.split_once('\'').expect("tick");
            let width: usize = width_part.parse().expect("width");
            let digits = &rest[1..];
            let parsed = LogicVec::parse_based(Some(width), base, digits).expect("parses");
            assert_eq!(parsed, vec.clone());
        }
    }
}

/// Write-then-read of a slice returns what was written (within range).
#[test]
fn write_slice_read_back() {
    let mut rng = StdRng::seed_from_u64(11);
    for _ in 0..CASES {
        let w = rng.gen_range(4usize..32);
        let lo = rng.gen_range(0usize..4);
        let len = rng.gen_range(1usize..8);
        let hi = (lo + len - 1).min(w - 1);
        let mut target = LogicVec::zero(w);
        let data = LogicVec::from_u64(rng.gen(), hi - lo + 1);
        target.write_slice(hi, lo, &data);
        assert_eq!(target.slice(hi, lo), data);
    }
}
