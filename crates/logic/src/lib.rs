#![warn(missing_docs)]

//! Four-state logic values and arbitrary-width vectors for Verilog simulation.
//!
//! This crate implements the value domain of IEEE 1364 Verilog: scalar bits
//! that are `0`, `1`, `x` (unknown) or `z` (high impedance), and bit vectors
//! of arbitrary width with the X/Z-propagating semantics of the Verilog
//! expression operators.
//!
//! It is the substrate shared by the AST (literal values), the simulator
//! (signal values), and the CirFix fitness function (bit-level comparison of
//! simulation output against expected behaviour, §3.2 of the paper).
//!
//! # Examples
//!
//! ```
//! use cirfix_logic::{Logic, LogicVec};
//!
//! let a = LogicVec::from_u64(0b1010, 4);
//! let b = LogicVec::from_u64(0b0011, 4);
//! assert_eq!((a.add(&b)).to_u64(), Some(0b1101));
//!
//! // x propagates through arithmetic:
//! let unknown = LogicVec::filled(4, Logic::X);
//! assert!(a.add(&unknown).has_unknown());
//! ```

mod backend;
mod bit;
mod edge;
mod literal;
mod ops;
pub mod reference;
mod vec;

pub use backend::{backend, set_backend, Backend};
pub use bit::{Logic, Truth};
pub use edge::{is_negedge, is_posedge, EdgeKind};
pub use literal::{LiteralBase, ParseLiteralError};
pub use vec::LogicVec;
