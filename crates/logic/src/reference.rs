//! Per-bit reference implementations of every [`LogicVec`] operator.
//!
//! These functions compute IEEE 1364 semantics one bit at a time, using
//! only the scalar truth tables in [`crate::Logic`] and the public
//! bit-level accessors — never the packed word operators. They exist to
//! be *differentially tested* against the word-packed backend: the
//! property suites drive both over random vectors dense in `x`/`z` and
//! assert bit-identical results, and the simulator can be flipped to
//! run entirely on these algorithms via
//! [`crate::set_backend`]`(`[`crate::Backend::Reference`]`)` for
//! whole-run equivalence checks.
//!
//! Operand-width conventions match the operator docs in `ops.rs`:
//! binary operators work at `max(lhs, rhs)` width with zero extension;
//! shifts keep the left operand's width.

use crate::bit::{Logic, Truth};
use crate::vec::LogicVec;

/// Zero-extended bit read: bits at or beyond `v.width()` read as `0`
/// (the extension Verilog applies to the narrower binary operand).
#[inline]
fn bit_zx(v: &LogicVec, i: usize) -> Logic {
    if i < v.width() {
        v.bit(i)
    } else {
        Logic::Zero
    }
}

/// The value as a `u128` if fully known with no `1` above bit 127,
/// gathered bit by bit.
fn known_u128(v: &LogicVec) -> Option<u128> {
    let mut out: u128 = 0;
    for i in 0..v.width() {
        match v.bit(i) {
            Logic::Zero => {}
            Logic::One => {
                if i >= 128 {
                    return None;
                }
                out |= 1 << i;
            }
            _ => return None,
        }
    }
    Some(out)
}

fn any_unknown(v: &LogicVec) -> bool {
    (0..v.width()).any(|i| v.bit(i).is_unknown())
}

// ---- arithmetic ---------------------------------------------------------

/// Ripple-carry add/sub core: computes `a + (b ^ invert) + carry_in`
/// per bit at `width`, assuming both operands are fully known.
fn ripple(a: &LogicVec, b: &LogicVec, width: usize, invert: bool, mut carry: bool) -> LogicVec {
    let mut out = LogicVec::zero(width);
    for i in 0..width {
        let x = bit_zx(a, i).is_one();
        let y = bit_zx(b, i).is_one() != invert;
        let sum = x ^ y ^ carry;
        carry = (x & y) | (carry & (x ^ y));
        out.set_bit(i, Logic::from_bool(sum));
    }
    out
}

/// Addition at `max` width; any unknown input bit poisons the result.
pub fn add(a: &LogicVec, b: &LogicVec) -> LogicVec {
    let w = a.width().max(b.width());
    if any_unknown(a) || any_unknown(b) {
        return LogicVec::unknown(w);
    }
    ripple(a, b, w, false, false)
}

/// Subtraction (wrapping two's complement) at `max` width.
pub fn sub(a: &LogicVec, b: &LogicVec) -> LogicVec {
    let w = a.width().max(b.width());
    if any_unknown(a) || any_unknown(b) {
        return LogicVec::unknown(w);
    }
    ripple(a, b, w, true, true)
}

/// Unary minus (two's complement at own width).
pub fn neg(v: &LogicVec) -> LogicVec {
    let w = v.width();
    if any_unknown(v) {
        return LogicVec::unknown(w);
    }
    ripple(&LogicVec::zero(w), v, w, true, true)
}

/// Multiplication; operands beyond 128 known bits yield all-`x` (the
/// documented backend limitation, shared by both implementations).
pub fn mul(a: &LogicVec, b: &LogicVec) -> LogicVec {
    let w = a.width().max(b.width());
    match (known_u128(a), known_u128(b)) {
        (Some(x), Some(y)) => LogicVec::from_u128(x.wrapping_mul(y), w),
        _ => LogicVec::unknown(w),
    }
}

/// Division; division by zero yields all-`x`.
pub fn div(a: &LogicVec, b: &LogicVec) -> LogicVec {
    let w = a.width().max(b.width());
    match (known_u128(a), known_u128(b)) {
        (Some(x), Some(y)) => match x.checked_div(y) {
            Some(q) => LogicVec::from_u128(q, w),
            None => LogicVec::unknown(w),
        },
        _ => LogicVec::unknown(w),
    }
}

/// Remainder; modulo zero yields all-`x`.
pub fn rem(a: &LogicVec, b: &LogicVec) -> LogicVec {
    let w = a.width().max(b.width());
    match (known_u128(a), known_u128(b)) {
        (Some(x), Some(y)) => {
            if y == 0 {
                LogicVec::unknown(w)
            } else {
                LogicVec::from_u128(x % y, w)
            }
        }
        _ => LogicVec::unknown(w),
    }
}

// ---- bitwise ------------------------------------------------------------

fn bitwise2(a: &LogicVec, b: &LogicVec, f: impl Fn(Logic, Logic) -> Logic) -> LogicVec {
    let w = a.width().max(b.width());
    let mut out = LogicVec::zero(w);
    for i in 0..w {
        out.set_bit(i, f(bit_zx(a, i), bit_zx(b, i)));
    }
    out
}

/// Bitwise AND at `max` width (operands zero-extended).
pub fn bit_and(a: &LogicVec, b: &LogicVec) -> LogicVec {
    bitwise2(a, b, Logic::and)
}

/// Bitwise OR.
pub fn bit_or(a: &LogicVec, b: &LogicVec) -> LogicVec {
    bitwise2(a, b, Logic::or)
}

/// Bitwise XOR.
pub fn bit_xor(a: &LogicVec, b: &LogicVec) -> LogicVec {
    bitwise2(a, b, Logic::xor)
}

/// Bitwise XNOR.
pub fn bit_xnor(a: &LogicVec, b: &LogicVec) -> LogicVec {
    bitwise2(a, b, Logic::xnor)
}

/// Bitwise NOT.
pub fn bit_not(v: &LogicVec) -> LogicVec {
    let mut out = LogicVec::zero(v.width());
    for i in 0..v.width() {
        out.set_bit(i, v.bit(i).not());
    }
    out
}

// ---- reductions ---------------------------------------------------------

/// Reduction AND (`&v`).
pub fn reduce_and(v: &LogicVec) -> Logic {
    (0..v.width()).fold(Logic::One, |acc, i| acc.and(v.bit(i)))
}

/// Reduction OR (`|v`).
pub fn reduce_or(v: &LogicVec) -> Logic {
    (0..v.width()).fold(Logic::Zero, |acc, i| acc.or(v.bit(i)))
}

/// Reduction XOR (`^v`).
pub fn reduce_xor(v: &LogicVec) -> Logic {
    (0..v.width()).fold(Logic::Zero, |acc, i| acc.xor(v.bit(i)))
}

// ---- comparisons --------------------------------------------------------

/// Logical equality `==`: `0` on any definite bit difference, `x` when
/// unknowns leave the answer open.
pub fn logic_eq(a: &LogicVec, b: &LogicVec) -> Logic {
    let w = a.width().max(b.width());
    let mut result = Logic::One;
    for i in 0..w {
        let (x, y) = (bit_zx(a, i), bit_zx(b, i));
        if x.is_unknown() || y.is_unknown() {
            result = Logic::X;
        } else if x != y {
            return Logic::Zero;
        }
    }
    result
}

/// Case equality `===`: exact four-state match.
pub fn case_eq(a: &LogicVec, b: &LogicVec) -> Logic {
    let w = a.width().max(b.width());
    Logic::from_bool((0..w).all(|i| bit_zx(a, i) == bit_zx(b, i)))
}

/// Unsigned `<` comparing bit by bit from the MSB; `x` on any unknown.
pub fn lt(a: &LogicVec, b: &LogicVec) -> Logic {
    if any_unknown(a) || any_unknown(b) {
        return Logic::X;
    }
    let w = a.width().max(b.width());
    for i in (0..w).rev() {
        let (x, y) = (bit_zx(a, i).is_one(), bit_zx(b, i).is_one());
        if x != y {
            return Logic::from_bool(y);
        }
    }
    Logic::Zero
}

/// Unsigned `<=`.
pub fn le(a: &LogicVec, b: &LogicVec) -> Logic {
    if any_unknown(a) || any_unknown(b) {
        return Logic::X;
    }
    match lt(b, a) {
        Logic::One => Logic::Zero,
        _ => Logic::One,
    }
}

// ---- logical / truthiness -----------------------------------------------

/// Per-bit truthiness: `True` on any definite `1`, `False` when all
/// bits are definite `0`, else `Unknown`.
pub fn truth(v: &LogicVec) -> Truth {
    let mut unknown = false;
    for i in 0..v.width() {
        match v.bit(i) {
            Logic::One => return Truth::True,
            Logic::Zero => {}
            _ => unknown = true,
        }
    }
    if unknown {
        Truth::Unknown
    } else {
        Truth::False
    }
}

/// Logical AND `&&` over truthiness.
pub fn logical_and(a: &LogicVec, b: &LogicVec) -> Logic {
    truth(a).and(truth(b)).to_logic()
}

/// Logical OR `||`.
pub fn logical_or(a: &LogicVec, b: &LogicVec) -> Logic {
    truth(a).or(truth(b)).to_logic()
}

/// Logical NOT `!`.
pub fn logical_not(v: &LogicVec) -> Logic {
    truth(v).not().to_logic()
}

// ---- shifts -------------------------------------------------------------

/// The shift amount when fully known: `None` means unknown bits (the
/// all-`x` case); a known amount too wide for `u64` saturates, which
/// shifts every bit out.
fn shift_amount(amount: &LogicVec) -> Option<u64> {
    let mut n: u64 = 0;
    let mut saturated = false;
    for i in 0..amount.width() {
        match amount.bit(i) {
            Logic::Zero => {}
            Logic::One => {
                if i >= 64 {
                    saturated = true;
                } else {
                    n |= 1 << i;
                }
            }
            _ => return None,
        }
    }
    Some(if saturated { u64::MAX } else { n })
}

/// Logical left shift keeping the left operand's width. An unknown
/// amount yields all-`x`; a known amount `>= width` yields all-`0`.
pub fn shl(v: &LogicVec, amount: &LogicVec) -> LogicVec {
    let w = v.width();
    match shift_amount(amount) {
        None => LogicVec::unknown(w),
        Some(n) => {
            let mut out = LogicVec::zero(w);
            for i in 0..w {
                let src = i as u64;
                if src >= n {
                    out.set_bit(i, v.bit((src - n) as usize));
                }
            }
            out
        }
    }
}

/// Logical right shift.
pub fn shr(v: &LogicVec, amount: &LogicVec) -> LogicVec {
    let w = v.width();
    match shift_amount(amount) {
        None => LogicVec::unknown(w),
        Some(n) => {
            let mut out = LogicVec::zero(w);
            for i in 0..w {
                if (i as u64).checked_add(n).is_some_and(|s| s < w as u64) {
                    out.set_bit(i, v.bit(i + n as usize));
                }
            }
            out
        }
    }
}

// ---- selection / case matching ------------------------------------------

/// Per-bit `merge_ambiguous`: agreeing known bits survive, others `x`.
pub fn merge_ambiguous(a: &LogicVec, b: &LogicVec) -> LogicVec {
    let w = a.width().max(b.width());
    let mut out = LogicVec::zero(w);
    for i in 0..w {
        let (x, y) = (bit_zx(a, i), bit_zx(b, i));
        out.set_bit(
            i,
            if x == y && !x.is_unknown() {
                x
            } else {
                Logic::X
            },
        );
    }
    out
}

/// Ternary select on an evaluated condition.
pub fn select(cond: &LogicVec, then_v: &LogicVec, else_v: &LogicVec) -> LogicVec {
    match truth(cond) {
        Truth::True => then_v.clone(),
        Truth::False => else_v.clone(),
        Truth::Unknown => merge_ambiguous(then_v, else_v),
    }
}

/// `casez` label match: `z` in either operand is a wildcard.
pub fn casez_match(subject: &LogicVec, label: &LogicVec) -> bool {
    let w = subject.width().max(label.width());
    (0..w).all(|i| {
        let (x, y) = (bit_zx(subject, i), bit_zx(label, i));
        x == Logic::Z || y == Logic::Z || x == y
    })
}

/// `casex` label match: `x` and `z` in either operand are wildcards.
pub fn casex_match(subject: &LogicVec, label: &LogicVec) -> bool {
    let w = subject.width().max(label.width());
    (0..w).all(|i| {
        let (x, y) = (bit_zx(subject, i), bit_zx(label, i));
        x.is_unknown() || y.is_unknown() || x == y
    })
}

// ---- structural (for property tests) ------------------------------------

/// Per-bit part select with out-of-range bits reading `x`.
pub fn slice(v: &LogicVec, msb: usize, lsb: usize) -> LogicVec {
    assert!(msb >= lsb, "slice msb < lsb");
    let mut out = LogicVec::zero(msb - lsb + 1);
    for (k, i) in (lsb..=msb).enumerate() {
        out.set_bit(k, v.bit(i));
    }
    out
}

/// Per-bit concatenation (first part = MSBs).
pub fn concat(parts: &[LogicVec]) -> LogicVec {
    assert!(!parts.is_empty(), "empty concatenation");
    let total: usize = parts.iter().map(LogicVec::width).sum();
    let mut out = LogicVec::zero(total);
    let mut offset = 0;
    for part in parts.iter().rev() {
        for i in 0..part.width() {
            out.set_bit(offset + i, part.bit(i));
        }
        offset += part.width();
    }
    out
}

/// Per-bit replication.
pub fn replicate(v: &LogicVec, count: usize) -> LogicVec {
    assert!(count > 0, "zero replication count");
    let mut out = LogicVec::zero(v.width() * count);
    for k in 0..count {
        for i in 0..v.width() {
            out.set_bit(k * v.width() + i, v.bit(i));
        }
    }
    out
}
