//! Edge detection for event controls (`@(posedge clk)` etc.).
//!
//! IEEE 1364 defines a positive edge as any transition whose destination is
//! closer to `1` than its origin: `0→1`, `0→x`, `0→z`, `x→1`, `z→1`; and
//! dually for negative edges. For vector signals, the edge is detected on
//! the least significant bit.

use crate::bit::Logic;
use crate::vec::LogicVec;

/// Which transition an event control waits for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// `posedge sig`
    Pos,
    /// `negedge sig`
    Neg,
    /// Any value change (level sensitivity).
    Any,
}

impl EdgeKind {
    /// Does the scalar transition `old → new` match this edge kind?
    pub fn matches(self, old: Logic, new: Logic) -> bool {
        match self {
            EdgeKind::Pos => is_posedge(old, new),
            EdgeKind::Neg => is_negedge(old, new),
            EdgeKind::Any => old != new,
        }
    }

    /// Does the vector transition match? Edges use the LSB; level
    /// sensitivity uses the whole vector.
    pub fn matches_vec(self, old: &LogicVec, new: &LogicVec) -> bool {
        match self {
            EdgeKind::Any => old != new,
            _ => self.matches(old.bit(0), new.bit(0)),
        }
    }
}

/// `true` if `old → new` is a positive edge per the IEEE 1364 table.
pub fn is_posedge(old: Logic, new: Logic) -> bool {
    use Logic::*;
    matches!(
        (old, new),
        (Zero, One) | (Zero, X) | (Zero, Z) | (X, One) | (Z, One)
    )
}

/// `true` if `old → new` is a negative edge per the IEEE 1364 table.
pub fn is_negedge(old: Logic, new: Logic) -> bool {
    use Logic::*;
    matches!(
        (old, new),
        (One, Zero) | (One, X) | (One, Z) | (X, Zero) | (Z, Zero)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use Logic::*;

    #[test]
    fn posedge_table() {
        assert!(is_posedge(Zero, One));
        assert!(is_posedge(Zero, X));
        assert!(is_posedge(Zero, Z));
        assert!(is_posedge(X, One));
        assert!(is_posedge(Z, One));
        assert!(!is_posedge(One, Zero));
        assert!(!is_posedge(One, One));
        assert!(!is_posedge(X, Z));
        assert!(!is_posedge(One, X));
    }

    #[test]
    fn negedge_table() {
        assert!(is_negedge(One, Zero));
        assert!(is_negedge(One, X));
        assert!(is_negedge(One, Z));
        assert!(is_negedge(X, Zero));
        assert!(is_negedge(Z, Zero));
        assert!(!is_negedge(Zero, One));
        assert!(!is_negedge(Zero, Zero));
        assert!(!is_negedge(Zero, X));
    }

    #[test]
    fn pos_and_neg_are_disjoint() {
        for a in Logic::ALL {
            for b in Logic::ALL {
                assert!(
                    !(is_posedge(a, b) && is_negedge(a, b)),
                    "{a:?}->{b:?} cannot be both edges"
                );
            }
        }
    }

    #[test]
    fn vector_edges_use_lsb() {
        let old = LogicVec::from_u64(0b10, 2);
        let new = LogicVec::from_u64(0b01, 2);
        assert!(EdgeKind::Pos.matches_vec(&old, &new));
        assert!(!EdgeKind::Neg.matches_vec(&old, &new));
        assert!(EdgeKind::Any.matches_vec(&old, &new));
    }

    #[test]
    fn any_change_detects_msb_only_changes() {
        let old = LogicVec::from_u64(0b00, 2);
        let new = LogicVec::from_u64(0b10, 2);
        assert!(EdgeKind::Any.matches_vec(&old, &new));
        assert!(!EdgeKind::Pos.matches_vec(&old, &new));
    }
}
