//! Arbitrary-width four-state bit vectors, stored as two packed planes.
//!
//! Each bit is encoded across two parallel `u64` bit-planes — the
//! *aval* plane `a` and the *bval* plane `b` — using the encoding that
//! commercial simulators (and the VPI `s_vpi_vecval` ABI) use:
//!
//! | value | a | b |
//! |-------|---|---|
//! | `0`   | 0 | 0 |
//! | `1`   | 1 | 0 |
//! | `z`   | 0 | 1 |
//! | `x`   | 1 | 1 |
//!
//! `b` is therefore an "unknown" mask (`b = 1` ⟺ the bit is `x` or
//! `z`), and for known bits `a` is the ordinary binary value — so
//! bitwise, arithmetic, compare, shift and reduction operators become a
//! handful of word operations instead of per-bit loops. Vectors of 64
//! bits or fewer (the overwhelmingly common case) store both planes
//! inline with no heap allocation.
//!
//! Invariants: plane bits at positions `>= width` are always zero (so
//! the derived `PartialEq`/`Hash` are canonical), and the inline
//! representation is used exactly when `width <= 64`.

use std::fmt;

use crate::bit::{Logic, Truth};

/// An arbitrary-width vector of four-state logic values.
///
/// Bit 0 is the least significant bit. The width is fixed at construction;
/// operations that produce a different width say so in their documentation.
/// A freshly declared Verilog `reg` is all-`x`; use [`LogicVec::unknown`]
/// for that, [`LogicVec::zero`] for an all-zero value.
///
/// # Examples
///
/// ```
/// use cirfix_logic::LogicVec;
/// let v = LogicVec::from_u64(0b1100, 4);
/// assert_eq!(v.to_string(), "4'b1100");
/// assert_eq!(v.to_u64(), Some(12));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct LogicVec {
    width: usize,
    planes: Planes,
}

/// The two bit-planes: inline words for `width <= 64`, heap vectors
/// (of exactly `words_for(width)` elements) beyond that.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Planes {
    One { a: u64, b: u64 },
    Many { a: Vec<u64>, b: Vec<u64> },
}

/// Number of 64-bit words needed for `width` bits.
#[inline]
pub(crate) fn words_for(width: usize) -> usize {
    width.div_ceil(64)
}

/// Mask selecting the valid bits of the top word of a `width`-bit vector.
#[inline]
pub(crate) fn top_mask(width: usize) -> u64 {
    match width % 64 {
        0 => u64::MAX,
        r => (1u64 << r) - 1,
    }
}

impl LogicVec {
    // ---- construction ---------------------------------------------------

    /// Builds a vector `width <= 64` from raw planes (masked to width).
    #[inline]
    pub(crate) fn from_word(width: usize, a: u64, b: u64) -> LogicVec {
        debug_assert!(width > 0 && width <= 64);
        let m = top_mask(width);
        LogicVec {
            width,
            planes: Planes::One { a: a & m, b: b & m },
        }
    }

    /// Builds a vector from raw plane words (LSB word first). Collapses
    /// to the inline representation when `width <= 64` and masks the
    /// top word.
    pub(crate) fn from_words(width: usize, mut a: Vec<u64>, mut b: Vec<u64>) -> LogicVec {
        assert!(width > 0, "zero-width LogicVec");
        let n = words_for(width);
        debug_assert_eq!(a.len(), n);
        debug_assert_eq!(b.len(), n);
        if width <= 64 {
            return LogicVec::from_word(width, a[0], b[0]);
        }
        let m = top_mask(width);
        a[n - 1] &= m;
        b[n - 1] &= m;
        LogicVec {
            width,
            planes: Planes::Many { a, b },
        }
    }

    /// Builds a `width`-bit vector whose planes are produced word by
    /// word by `f(word_index) -> (a, b)`; the top word is masked.
    #[inline]
    pub(crate) fn build(width: usize, f: impl FnMut(usize) -> (u64, u64)) -> LogicVec {
        assert!(width > 0, "zero-width LogicVec");
        let mut f = f;
        if width <= 64 {
            let (a, b) = f(0);
            return LogicVec::from_word(width, a, b);
        }
        let n = words_for(width);
        let mut a = Vec::with_capacity(n);
        let mut b = Vec::with_capacity(n);
        for i in 0..n {
            let (wa, wb) = f(i);
            a.push(wa);
            b.push(wb);
        }
        LogicVec::from_words(width, a, b)
    }

    /// Creates a vector of `width` copies of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`; zero-width vectors are not representable in
    /// Verilog.
    pub fn filled(width: usize, value: Logic) -> LogicVec {
        let (pa, pb) = plane_pattern(value);
        LogicVec::build(width, |_| (pa, pb))
    }

    /// All-`x` vector: the value of an uninitialized register.
    pub fn unknown(width: usize) -> LogicVec {
        LogicVec::filled(width, Logic::X)
    }

    /// All-`z` vector: the value of an undriven net.
    pub fn high_z(width: usize) -> LogicVec {
        LogicVec::filled(width, Logic::Z)
    }

    /// All-zero vector.
    pub fn zero(width: usize) -> LogicVec {
        LogicVec::filled(width, Logic::Zero)
    }

    /// All-one vector.
    pub fn ones(width: usize) -> LogicVec {
        LogicVec::filled(width, Logic::One)
    }

    /// Builds a vector from the low `width` bits of `value`.
    pub fn from_u64(value: u64, width: usize) -> LogicVec {
        LogicVec::build(width, |i| (if i == 0 { value } else { 0 }, 0))
    }

    /// Builds a vector from the low `width` bits of `value`.
    pub fn from_u128(value: u128, width: usize) -> LogicVec {
        LogicVec::build(width, |i| match i {
            0 => (value as u64, 0),
            1 => ((value >> 64) as u64, 0),
            _ => (0, 0),
        })
    }

    /// A single-bit vector.
    pub fn scalar(value: Logic) -> LogicVec {
        let (a, b) = plane_pattern(value);
        LogicVec::from_word(1, a, b)
    }

    /// A single-bit `0`/`1` from a boolean.
    pub fn from_bool(b: bool) -> LogicVec {
        LogicVec::scalar(Logic::from_bool(b))
    }

    /// Builds a vector from LSB-first bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty.
    pub fn from_bits_lsb(bits: Vec<Logic>) -> LogicVec {
        assert!(!bits.is_empty(), "zero-width LogicVec");
        let mut v = LogicVec::zero(bits.len());
        for (i, bit) in bits.into_iter().enumerate() {
            v.set_bit(i, bit);
        }
        v
    }

    // ---- plane access ---------------------------------------------------

    /// The two planes as word slices (`a`, `b`), LSB word first.
    #[inline]
    pub(crate) fn planes(&self) -> (&[u64], &[u64]) {
        match &self.planes {
            Planes::One { a, b } => (std::slice::from_ref(a), std::slice::from_ref(b)),
            Planes::Many { a, b } => (a, b),
        }
    }

    #[inline]
    fn planes_mut(&mut self) -> (&mut [u64], &mut [u64]) {
        match &mut self.planes {
            Planes::One { a, b } => (std::slice::from_mut(a), std::slice::from_mut(b)),
            Planes::Many { a, b } => (a, b),
        }
    }

    /// Word `i` of both planes, zero beyond the vector's top word
    /// (matching Verilog's zero extension).
    #[inline]
    pub(crate) fn word(&self, i: usize) -> (u64, u64) {
        match &self.planes {
            Planes::One { a, b } => {
                if i == 0 {
                    (*a, *b)
                } else {
                    (0, 0)
                }
            }
            Planes::Many { a, b } => (
                a.get(i).copied().unwrap_or(0),
                b.get(i).copied().unwrap_or(0),
            ),
        }
    }

    /// Word `i` of both planes where bits at positions `>= width` read
    /// as `x` (the `(1,1)` pattern) — out-of-range *bit-select* reads.
    #[inline]
    pub(crate) fn word_ext_x(&self, i: usize) -> (u64, u64) {
        let n = words_for(self.width);
        if i + 1 > n {
            return (u64::MAX, u64::MAX);
        }
        let (a, b) = self.word(i);
        if i == n - 1 {
            let pad = !top_mask(self.width);
            (a | pad, b | pad)
        } else {
            (a, b)
        }
    }

    // ---- basic queries --------------------------------------------------

    /// Width in bits.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// The bit at index `i` (LSB = 0). Out-of-range reads yield `x`,
    /// matching Verilog's out-of-bounds bit-select semantics.
    #[inline]
    pub fn bit(&self, i: usize) -> Logic {
        if i >= self.width {
            return Logic::X;
        }
        let (a, b) = self.word(i / 64);
        let s = i % 64;
        logic_from_planes((a >> s) & 1 == 1, (b >> s) & 1 == 1)
    }

    /// Sets the bit at index `i`; out-of-range writes are ignored
    /// (Verilog discards out-of-bounds part-select writes).
    #[inline]
    pub fn set_bit(&mut self, i: usize, value: Logic) {
        if i >= self.width {
            return;
        }
        let (pa, pb) = plane_pattern(value);
        let (w, s) = (i / 64, i % 64);
        let (a, b) = self.planes_mut();
        a[w] = (a[w] & !(1 << s)) | ((pa & 1) << s);
        b[w] = (b[w] & !(1 << s)) | ((pb & 1) << s);
    }

    /// LSB-first copy of the bits. (With the packed representation this
    /// materializes a fresh `Vec`; prefer [`LogicVec::bit`] or the word
    /// operators on hot paths.)
    pub fn bits_lsb(&self) -> Vec<Logic> {
        (0..self.width).map(|i| self.bit(i)).collect()
    }

    /// `true` if any bit is `x` or `z`.
    #[inline]
    pub fn has_unknown(&self) -> bool {
        let (_, b) = self.planes();
        b.iter().any(|w| *w != 0)
    }

    /// `true` if every bit is `0` or `1`.
    #[inline]
    pub fn is_fully_known(&self) -> bool {
        !self.has_unknown()
    }

    /// The numeric value, if fully known and represented in 64 bits.
    /// Wider vectors still convert when their upper bits are all zero.
    pub fn to_u64(&self) -> Option<u64> {
        if self.has_unknown() {
            return None;
        }
        let (a, _) = self.planes();
        if a[1..].iter().any(|w| *w != 0) {
            return None;
        }
        Some(a[0])
    }

    /// The numeric value, if fully known and represented in 128 bits.
    pub fn to_u128(&self) -> Option<u128> {
        if self.has_unknown() {
            return None;
        }
        let (a, _) = self.planes();
        if a.len() > 2 && a[2..].iter().any(|w| *w != 0) {
            return None;
        }
        let hi = a.get(1).copied().unwrap_or(0);
        Some(u128::from(a[0]) | (u128::from(hi) << 64))
    }

    /// Three-valued truthiness: `True` if any bit is a definite `1`,
    /// `False` if all bits are definite `0`, else `Unknown`.
    pub fn truth(&self) -> Truth {
        let (a, b) = self.planes();
        let mut any_unknown = false;
        for (wa, wb) in a.iter().zip(b) {
            if wa & !wb != 0 {
                return Truth::True;
            }
            any_unknown |= *wb != 0;
        }
        if any_unknown {
            Truth::Unknown
        } else {
            Truth::False
        }
    }

    // ---- resizing / assembly --------------------------------------------

    /// Returns a copy resized to `width`: truncated from the MSB side or
    /// zero-extended (Verilog's unsigned assignment semantics).
    pub fn resized(&self, width: usize) -> LogicVec {
        if width == self.width {
            return self.clone();
        }
        LogicVec::build(width, |i| self.word(i))
    }

    /// Returns a copy resized to `width`, extending with `fill` (used when
    /// extending literals whose leading digit is `x` or `z`).
    pub fn resized_with(&self, width: usize, fill: Logic) -> LogicVec {
        if width <= self.width {
            return self.resized(width);
        }
        let (fa, fb) = plane_pattern(fill);
        let old = self.width;
        LogicVec::build(width, |i| {
            let (a, b) = self.word(i);
            // Mask of bits in this word at positions >= old width.
            let lo = i * 64;
            let ext = if lo >= old {
                u64::MAX
            } else if lo + 64 <= old {
                0
            } else {
                !top_mask(old)
            };
            (a | (fa & ext), b | (fb & ext))
        })
    }

    /// Concatenates `parts`, where the **first** element supplies the most
    /// significant bits, matching Verilog `{a, b}`.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty.
    pub fn concat(parts: &[LogicVec]) -> LogicVec {
        assert!(!parts.is_empty(), "empty concatenation");
        let total: usize = parts.iter().map(LogicVec::width).sum();
        let n = words_for(total);
        let mut a = vec![0u64; n];
        let mut b = vec![0u64; n];
        let mut offset = 0;
        for part in parts.iter().rev() {
            let (pa, pb) = part.planes();
            blit(&mut a, offset, part.width, pa);
            blit(&mut b, offset, part.width, pb);
            offset += part.width;
        }
        LogicVec::from_words(total, a, b)
    }

    /// Replicates this vector `count` times, as in Verilog `{count{v}}`.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`.
    pub fn replicate(&self, count: usize) -> LogicVec {
        assert!(count > 0, "zero replication count");
        let total = self.width * count;
        let n = words_for(total);
        let mut a = vec![0u64; n];
        let mut b = vec![0u64; n];
        let (pa, pb) = self.planes();
        for k in 0..count {
            blit(&mut a, k * self.width, self.width, pa);
            blit(&mut b, k * self.width, self.width, pb);
        }
        LogicVec::from_words(total, a, b)
    }

    /// Part select `[msb:lsb]` over *bit indices* (LSB = 0). Out-of-range
    /// bits read as `x`.
    ///
    /// # Panics
    ///
    /// Panics if `msb < lsb`.
    pub fn slice(&self, msb: usize, lsb: usize) -> LogicVec {
        assert!(msb >= lsb, "slice msb < lsb");
        let width = msb - lsb + 1;
        let base = lsb / 64;
        let s = lsb % 64;
        LogicVec::build(width, |i| {
            let (a0, b0) = self.word_ext_x(base + i);
            if s == 0 {
                (a0, b0)
            } else {
                let (a1, b1) = self.word_ext_x(base + i + 1);
                ((a0 >> s) | (a1 << (64 - s)), (b0 >> s) | (b1 << (64 - s)))
            }
        })
    }

    /// Writes `value` into bit positions `[msb:lsb]`; extra source bits are
    /// truncated, missing ones zero-filled, out-of-range targets discarded.
    pub fn write_slice(&mut self, msb: usize, lsb: usize, value: &LogicVec) {
        assert!(msb >= lsb, "slice msb < lsb");
        if lsb >= self.width {
            return;
        }
        let src = value.resized(msb - lsb + 1);
        // Clip the destination range to this vector's width.
        let count = (msb.min(self.width - 1)) - lsb + 1;
        let (sa, sb) = src.planes();
        let (a, b) = match &mut self.planes {
            Planes::One { a, b } => (std::slice::from_mut(a), std::slice::from_mut(b)),
            Planes::Many { a, b } => (&mut a[..], &mut b[..]),
        };
        store(a, lsb, count, sa);
        store(b, lsb, count, sb);
    }

    /// Counts definite `1` bits.
    pub fn count_ones(&self) -> usize {
        let (a, b) = self.planes();
        a.iter()
            .zip(b)
            .map(|(wa, wb)| (wa & !wb).count_ones() as usize)
            .sum()
    }

    /// Replaces every `z` with `x` (the result of reading a `z` value
    /// through a logic operator).
    pub fn z_to_x(&self) -> LogicVec {
        LogicVec::build(self.width, |i| {
            let (a, b) = self.word(i);
            (a | b, b)
        })
    }

    /// Bitwise merge used for `cond ? a : b` when `cond` is unknown: bits on
    /// which the branches agree are kept, others become `x` (IEEE 1364
    /// §5.1.13).
    pub fn merge_ambiguous(&self, other: &LogicVec) -> LogicVec {
        let width = self.width.max(other.width);
        LogicVec::build(width, |i| {
            let (a1, b1) = self.word(i);
            let (a2, b2) = other.word(i);
            // Bits where both operands hold the same *known* value.
            let keep = !((a1 ^ a2) | (b1 ^ b2)) & !b1;
            ((a1 & keep) | !keep, !keep)
        })
    }
}

/// The plane pattern (all-bits `a`, all-bits `b`) for one logic value.
#[inline]
pub(crate) fn plane_pattern(value: Logic) -> (u64, u64) {
    match value {
        Logic::Zero => (0, 0),
        Logic::One => (u64::MAX, 0),
        Logic::Z => (0, u64::MAX),
        Logic::X => (u64::MAX, u64::MAX),
    }
}

/// Decodes one bit from its plane pair.
#[inline]
pub(crate) fn logic_from_planes(a: bool, b: bool) -> Logic {
    match (a, b) {
        (false, false) => Logic::Zero,
        (true, false) => Logic::One,
        (false, true) => Logic::Z,
        (true, true) => Logic::X,
    }
}

/// ORs the low `count` bits of `src` (a word slice) into `dst` starting
/// at bit `offset`. The destination bits must currently be zero.
fn blit(dst: &mut [u64], offset: usize, count: usize, src: &[u64]) {
    let s = offset % 64;
    let base = offset / 64;
    let n = words_for(count);
    for (k, word) in src.iter().take(n).enumerate() {
        let m = if count - k * 64 >= 64 {
            u64::MAX
        } else {
            (1u64 << (count - k * 64)) - 1
        };
        let w = word & m;
        dst[base + k] |= w << s;
        if s != 0 && base + k + 1 < dst.len() {
            dst[base + k + 1] |= w >> (64 - s);
        }
    }
}

/// Stores the low `count` bits of `src` into `dst` at bit `offset`,
/// clearing the destination bits first.
fn store(dst: &mut [u64], offset: usize, count: usize, src: &[u64]) {
    let mut done = 0;
    while done < count {
        let i = (offset + done) / 64;
        let s = (offset + done) % 64;
        let take = (64 - s).min(count - done);
        let m = if take == 64 {
            u64::MAX
        } else {
            (1u64 << take) - 1
        };
        // Gather `take` bits of src starting at bit `done`.
        let si = done / 64;
        let ss = done % 64;
        let mut w = src[si] >> ss;
        if ss != 0 && si + 1 < src.len() {
            w |= src[si + 1] << (64 - ss);
        }
        w &= m;
        dst[i] = (dst[i] & !(m << s)) | (w << s);
        done += take;
    }
}

impl fmt::Display for LogicVec {
    /// Formats as a sized binary Verilog literal, e.g. `4'b10x0`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'b", self.width)?;
        for i in (0..self.width).rev() {
            write!(f, "{}", self.bit(i).to_char())?;
        }
        Ok(())
    }
}

impl fmt::Debug for LogicVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LogicVec({self})")
    }
}

impl From<bool> for LogicVec {
    fn from(b: bool) -> LogicVec {
        LogicVec::from_bool(b)
    }
}

impl From<Logic> for LogicVec {
    fn from(l: Logic) -> LogicVec {
        LogicVec::scalar(l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_display() {
        let v = LogicVec::from_u64(0b1010, 4);
        assert_eq!(v.width(), 4);
        assert_eq!(v.to_string(), "4'b1010");
        assert_eq!(LogicVec::unknown(2).to_string(), "2'bxx");
        assert_eq!(LogicVec::high_z(1).to_string(), "1'bz");
    }

    #[test]
    fn to_u64_round_trip() {
        for v in [0u64, 1, 5, 255, 1 << 40] {
            assert_eq!(LogicVec::from_u64(v, 64).to_u64(), Some(v));
        }
        assert_eq!(LogicVec::unknown(4).to_u64(), None);
        // Wide but small value still converts.
        let wide = LogicVec::from_u64(7, 100);
        assert_eq!(wide.to_u64(), Some(7));
    }

    #[test]
    fn truthiness() {
        assert_eq!(LogicVec::from_u64(0, 4).truth(), Truth::False);
        assert_eq!(LogicVec::from_u64(2, 4).truth(), Truth::True);
        assert_eq!(LogicVec::unknown(4).truth(), Truth::Unknown);
        // A vector with a definite 1 is true even if other bits are x.
        let mut v = LogicVec::unknown(2);
        v.set_bit(1, Logic::One);
        assert_eq!(v.truth(), Truth::True);
    }

    #[test]
    fn resize_truncates_and_extends() {
        let v = LogicVec::from_u64(0b1111, 4);
        assert_eq!(v.resized(2).to_u64(), Some(0b11));
        assert_eq!(v.resized(6).to_u64(), Some(0b1111));
        let x = LogicVec::unknown(2).resized_with(4, Logic::X);
        assert_eq!(x.to_string(), "4'bxxxx");
    }

    #[test]
    fn concat_orders_msb_first() {
        let a = LogicVec::from_u64(0b10, 2);
        let b = LogicVec::from_u64(0b01, 2);
        // {a, b} = 4'b1001
        let c = LogicVec::concat(&[a, b]);
        assert_eq!(c.to_u64(), Some(0b1001));
    }

    #[test]
    fn replicate_repeats() {
        let v = LogicVec::from_u64(0b10, 2);
        assert_eq!(v.replicate(3).to_u64(), Some(0b101010));
    }

    #[test]
    fn slices() {
        let v = LogicVec::from_u64(0b110010, 6);
        assert_eq!(v.slice(5, 2).to_u64(), Some(0b1100));
        assert_eq!(v.slice(1, 0).to_u64(), Some(0b10));
        // Out-of-range reads give x.
        assert_eq!(v.slice(8, 6).to_string(), "3'bxxx");
    }

    #[test]
    fn write_slice_updates_range() {
        let mut v = LogicVec::zero(8);
        v.write_slice(5, 2, &LogicVec::from_u64(0b1111, 4));
        assert_eq!(v.to_u64(), Some(0b00111100));
        // Out-of-range target bits are dropped silently.
        v.write_slice(9, 6, &LogicVec::from_u64(0b1111, 4));
        assert_eq!(v.to_u64(), Some(0b11111100));
    }

    #[test]
    fn merge_ambiguous_keeps_agreement() {
        let a = LogicVec::from_u64(0b1100, 4);
        let b = LogicVec::from_u64(0b1010, 4);
        let m = a.merge_ambiguous(&b);
        assert_eq!(m.to_string(), "4'b1xx0");
    }

    #[test]
    fn out_of_bounds_bit_is_x() {
        let v = LogicVec::from_u64(1, 2);
        assert_eq!(v.bit(5), Logic::X);
    }

    #[test]
    #[should_panic(expected = "zero-width")]
    fn zero_width_panics() {
        let _ = LogicVec::zero(0);
    }

    // -- packed-representation specifics ---------------------------------

    #[test]
    fn wide_vectors_round_trip_bits() {
        let mut v = LogicVec::zero(200);
        v.set_bit(0, Logic::One);
        v.set_bit(63, Logic::X);
        v.set_bit(64, Logic::Z);
        v.set_bit(199, Logic::One);
        assert_eq!(v.bit(0), Logic::One);
        assert_eq!(v.bit(63), Logic::X);
        assert_eq!(v.bit(64), Logic::Z);
        assert_eq!(v.bit(199), Logic::One);
        assert_eq!(v.bit(100), Logic::Zero);
        let bits = v.bits_lsb();
        assert_eq!(LogicVec::from_bits_lsb(bits), v);
    }

    #[test]
    fn cross_word_slice_and_write() {
        let mut v = LogicVec::zero(130);
        v.write_slice(70, 58, &LogicVec::from_u64(0b1010101010101, 13));
        assert_eq!(v.slice(70, 58).to_u64(), Some(0b1010101010101));
        // Bits around the range stay zero.
        assert_eq!(v.bit(57), Logic::Zero);
        assert_eq!(v.bit(71), Logic::Zero);
    }

    #[test]
    fn padding_is_canonical_for_eq_and_hash() {
        // Two ways to arrive at the same value must compare equal.
        let a = LogicVec::from_u64(u64::MAX, 64).resized(3);
        let b = LogicVec::from_u64(0b111, 3);
        assert_eq!(a, b);
        let wide = LogicVec::unknown(100).resized(65);
        let mut built = LogicVec::zero(65);
        for i in 0..65 {
            built.set_bit(i, Logic::X);
        }
        assert_eq!(wide, built);
    }

    #[test]
    fn display_matches_per_bit_rendering() {
        let mut v = LogicVec::from_u64(0b01, 4);
        v.set_bit(2, Logic::Z);
        v.set_bit(3, Logic::X);
        assert_eq!(v.to_string(), "4'bxz01");
    }
}
