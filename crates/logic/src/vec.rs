//! Arbitrary-width four-state bit vectors.

use std::fmt;

use crate::bit::{Logic, Truth};

/// An arbitrary-width vector of four-state logic values.
///
/// Bit 0 is the least significant bit. The width is fixed at construction;
/// operations that produce a different width say so in their documentation.
/// A freshly declared Verilog `reg` is all-`x`; use [`LogicVec::unknown`]
/// for that, [`LogicVec::zero`] for an all-zero value.
///
/// # Examples
///
/// ```
/// use cirfix_logic::LogicVec;
/// let v = LogicVec::from_u64(0b1100, 4);
/// assert_eq!(v.to_string(), "4'b1100");
/// assert_eq!(v.to_u64(), Some(12));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LogicVec {
    /// LSB-first bits.
    bits: Vec<Logic>,
}

impl LogicVec {
    /// Creates a vector of `width` copies of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`; zero-width vectors are not representable in
    /// Verilog.
    pub fn filled(width: usize, value: Logic) -> LogicVec {
        assert!(width > 0, "zero-width LogicVec");
        LogicVec {
            bits: vec![value; width],
        }
    }

    /// All-`x` vector: the value of an uninitialized register.
    pub fn unknown(width: usize) -> LogicVec {
        LogicVec::filled(width, Logic::X)
    }

    /// All-`z` vector: the value of an undriven net.
    pub fn high_z(width: usize) -> LogicVec {
        LogicVec::filled(width, Logic::Z)
    }

    /// All-zero vector.
    pub fn zero(width: usize) -> LogicVec {
        LogicVec::filled(width, Logic::Zero)
    }

    /// All-one vector.
    pub fn ones(width: usize) -> LogicVec {
        LogicVec::filled(width, Logic::One)
    }

    /// Builds a vector from the low `width` bits of `value`.
    pub fn from_u64(value: u64, width: usize) -> LogicVec {
        assert!(width > 0, "zero-width LogicVec");
        let bits = (0..width)
            .map(|i| {
                if i < 64 && (value >> i) & 1 == 1 {
                    Logic::One
                } else {
                    Logic::Zero
                }
            })
            .collect();
        LogicVec { bits }
    }

    /// Builds a vector from the low `width` bits of `value`.
    pub fn from_u128(value: u128, width: usize) -> LogicVec {
        assert!(width > 0, "zero-width LogicVec");
        let bits = (0..width)
            .map(|i| {
                if i < 128 && (value >> i) & 1 == 1 {
                    Logic::One
                } else {
                    Logic::Zero
                }
            })
            .collect();
        LogicVec { bits }
    }

    /// A single-bit vector.
    pub fn scalar(value: Logic) -> LogicVec {
        LogicVec { bits: vec![value] }
    }

    /// A single-bit `0`/`1` from a boolean.
    pub fn from_bool(b: bool) -> LogicVec {
        LogicVec::scalar(Logic::from_bool(b))
    }

    /// Builds a vector from LSB-first bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty.
    pub fn from_bits_lsb(bits: Vec<Logic>) -> LogicVec {
        assert!(!bits.is_empty(), "zero-width LogicVec");
        LogicVec { bits }
    }

    /// Width in bits.
    #[inline]
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// The bit at index `i` (LSB = 0). Out-of-range reads yield `x`,
    /// matching Verilog's out-of-bounds bit-select semantics.
    #[inline]
    pub fn bit(&self, i: usize) -> Logic {
        self.bits.get(i).copied().unwrap_or(Logic::X)
    }

    /// Sets the bit at index `i`; out-of-range writes are ignored
    /// (Verilog discards out-of-bounds part-select writes).
    #[inline]
    pub fn set_bit(&mut self, i: usize, value: Logic) {
        if let Some(b) = self.bits.get_mut(i) {
            *b = value;
        }
    }

    /// LSB-first view of the bits.
    #[inline]
    pub fn bits_lsb(&self) -> &[Logic] {
        &self.bits
    }

    /// `true` if any bit is `x` or `z`.
    pub fn has_unknown(&self) -> bool {
        self.bits.iter().any(|b| b.is_unknown())
    }

    /// `true` if every bit is `0` or `1`.
    pub fn is_fully_known(&self) -> bool {
        !self.has_unknown()
    }

    /// The numeric value, if fully known and represented in 64 bits.
    /// Wider vectors still convert when their upper bits are all zero.
    pub fn to_u64(&self) -> Option<u64> {
        if self.has_unknown() {
            return None;
        }
        let mut v: u64 = 0;
        for (i, b) in self.bits.iter().enumerate() {
            if b.is_one() {
                if i >= 64 {
                    return None;
                }
                v |= 1 << i;
            }
        }
        Some(v)
    }

    /// The numeric value, if fully known and represented in 128 bits.
    pub fn to_u128(&self) -> Option<u128> {
        if self.has_unknown() {
            return None;
        }
        let mut v: u128 = 0;
        for (i, b) in self.bits.iter().enumerate() {
            if b.is_one() {
                if i >= 128 {
                    return None;
                }
                v |= 1 << i;
            }
        }
        Some(v)
    }

    /// Three-valued truthiness: `True` if any bit is a definite `1`,
    /// `False` if all bits are definite `0`, else `Unknown`.
    pub fn truth(&self) -> Truth {
        if self.bits.iter().any(|b| b.is_one()) {
            Truth::True
        } else if self.bits.iter().all(|b| b.is_zero()) {
            Truth::False
        } else {
            Truth::Unknown
        }
    }

    /// Returns a copy resized to `width`: truncated from the MSB side or
    /// zero-extended (Verilog's unsigned assignment semantics).
    pub fn resized(&self, width: usize) -> LogicVec {
        assert!(width > 0, "zero-width LogicVec");
        let mut bits = self.bits.clone();
        bits.resize(width, Logic::Zero);
        LogicVec { bits }
    }

    /// Returns a copy resized to `width`, extending with `fill` (used when
    /// extending literals whose leading digit is `x` or `z`).
    pub fn resized_with(&self, width: usize, fill: Logic) -> LogicVec {
        assert!(width > 0, "zero-width LogicVec");
        let mut bits = self.bits.clone();
        bits.resize(width, fill);
        LogicVec { bits }
    }

    /// Concatenates `parts`, where the **first** element supplies the most
    /// significant bits, matching Verilog `{a, b}`.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty.
    pub fn concat(parts: &[LogicVec]) -> LogicVec {
        assert!(!parts.is_empty(), "empty concatenation");
        let mut bits = Vec::new();
        for part in parts.iter().rev() {
            bits.extend_from_slice(&part.bits);
        }
        LogicVec { bits }
    }

    /// Replicates this vector `count` times, as in Verilog `{count{v}}`.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`.
    pub fn replicate(&self, count: usize) -> LogicVec {
        assert!(count > 0, "zero replication count");
        let mut bits = Vec::with_capacity(self.width() * count);
        for _ in 0..count {
            bits.extend_from_slice(&self.bits);
        }
        LogicVec { bits }
    }

    /// Part select `[msb:lsb]` over *bit indices* (LSB = 0). Out-of-range
    /// bits read as `x`.
    ///
    /// # Panics
    ///
    /// Panics if `msb < lsb`.
    pub fn slice(&self, msb: usize, lsb: usize) -> LogicVec {
        assert!(msb >= lsb, "slice msb < lsb");
        let bits = (lsb..=msb).map(|i| self.bit(i)).collect();
        LogicVec { bits }
    }

    /// Writes `value` into bit positions `[msb:lsb]`; extra source bits are
    /// truncated, missing ones zero-filled, out-of-range targets discarded.
    pub fn write_slice(&mut self, msb: usize, lsb: usize, value: &LogicVec) {
        assert!(msb >= lsb, "slice msb < lsb");
        let src = value.resized(msb - lsb + 1);
        for (k, i) in (lsb..=msb).enumerate() {
            self.set_bit(i, src.bit(k));
        }
    }

    /// Counts definite `1` bits.
    pub fn count_ones(&self) -> usize {
        self.bits.iter().filter(|b| b.is_one()).count()
    }

    /// Replaces every `z` with `x` (the result of reading a `z` value
    /// through a logic operator).
    pub fn z_to_x(&self) -> LogicVec {
        LogicVec {
            bits: self
                .bits
                .iter()
                .map(|b| if *b == Logic::Z { Logic::X } else { *b })
                .collect(),
        }
    }

    /// Bitwise merge used for `cond ? a : b` when `cond` is unknown: bits on
    /// which the branches agree are kept, others become `x` (IEEE 1364
    /// §5.1.13).
    pub fn merge_ambiguous(&self, other: &LogicVec) -> LogicVec {
        let width = self.width().max(other.width());
        let a = self.resized(width);
        let b = other.resized(width);
        let bits = (0..width)
            .map(|i| {
                let (x, y) = (a.bit(i), b.bit(i));
                if x == y && !x.is_unknown() {
                    x
                } else {
                    Logic::X
                }
            })
            .collect();
        LogicVec { bits }
    }
}

impl fmt::Display for LogicVec {
    /// Formats as a sized binary Verilog literal, e.g. `4'b10x0`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'b", self.width())?;
        for b in self.bits.iter().rev() {
            write!(f, "{}", b.to_char())?;
        }
        Ok(())
    }
}

impl From<bool> for LogicVec {
    fn from(b: bool) -> LogicVec {
        LogicVec::from_bool(b)
    }
}

impl From<Logic> for LogicVec {
    fn from(l: Logic) -> LogicVec {
        LogicVec::scalar(l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_display() {
        let v = LogicVec::from_u64(0b1010, 4);
        assert_eq!(v.width(), 4);
        assert_eq!(v.to_string(), "4'b1010");
        assert_eq!(LogicVec::unknown(2).to_string(), "2'bxx");
        assert_eq!(LogicVec::high_z(1).to_string(), "1'bz");
    }

    #[test]
    fn to_u64_round_trip() {
        for v in [0u64, 1, 5, 255, 1 << 40] {
            assert_eq!(LogicVec::from_u64(v, 64).to_u64(), Some(v));
        }
        assert_eq!(LogicVec::unknown(4).to_u64(), None);
        // Wide but small value still converts.
        let wide = LogicVec::from_u64(7, 100);
        assert_eq!(wide.to_u64(), Some(7));
    }

    #[test]
    fn truthiness() {
        assert_eq!(LogicVec::from_u64(0, 4).truth(), Truth::False);
        assert_eq!(LogicVec::from_u64(2, 4).truth(), Truth::True);
        assert_eq!(LogicVec::unknown(4).truth(), Truth::Unknown);
        // A vector with a definite 1 is true even if other bits are x.
        let mut v = LogicVec::unknown(2);
        v.set_bit(1, Logic::One);
        assert_eq!(v.truth(), Truth::True);
    }

    #[test]
    fn resize_truncates_and_extends() {
        let v = LogicVec::from_u64(0b1111, 4);
        assert_eq!(v.resized(2).to_u64(), Some(0b11));
        assert_eq!(v.resized(6).to_u64(), Some(0b1111));
        let x = LogicVec::unknown(2).resized_with(4, Logic::X);
        assert_eq!(x.to_string(), "4'bxxxx");
    }

    #[test]
    fn concat_orders_msb_first() {
        let a = LogicVec::from_u64(0b10, 2);
        let b = LogicVec::from_u64(0b01, 2);
        // {a, b} = 4'b1001
        let c = LogicVec::concat(&[a, b]);
        assert_eq!(c.to_u64(), Some(0b1001));
    }

    #[test]
    fn replicate_repeats() {
        let v = LogicVec::from_u64(0b10, 2);
        assert_eq!(v.replicate(3).to_u64(), Some(0b101010));
    }

    #[test]
    fn slices() {
        let v = LogicVec::from_u64(0b110010, 6);
        assert_eq!(v.slice(5, 2).to_u64(), Some(0b1100));
        assert_eq!(v.slice(1, 0).to_u64(), Some(0b10));
        // Out-of-range reads give x.
        assert_eq!(v.slice(8, 6).to_string(), "3'bxxx");
    }

    #[test]
    fn write_slice_updates_range() {
        let mut v = LogicVec::zero(8);
        v.write_slice(5, 2, &LogicVec::from_u64(0b1111, 4));
        assert_eq!(v.to_u64(), Some(0b00111100));
        // Out-of-range target bits are dropped silently.
        v.write_slice(9, 6, &LogicVec::from_u64(0b1111, 4));
        assert_eq!(v.to_u64(), Some(0b11111100));
    }

    #[test]
    fn merge_ambiguous_keeps_agreement() {
        let a = LogicVec::from_u64(0b1100, 4);
        let b = LogicVec::from_u64(0b1010, 4);
        let m = a.merge_ambiguous(&b);
        assert_eq!(m.to_string(), "4'b1xx0");
    }

    #[test]
    fn out_of_bounds_bit_is_x() {
        let v = LogicVec::from_u64(1, 2);
        assert_eq!(v.bit(5), Logic::X);
    }

    #[test]
    #[should_panic(expected = "zero-width")]
    fn zero_width_panics() {
        let _ = LogicVec::zero(0);
    }
}
