//! Verilog expression operators over [`LogicVec`].
//!
//! All binary operators follow IEEE 1364 semantics for unsigned operands:
//! arithmetic and relational operators produce all-`x` (respectively `x`)
//! results when any input bit is `x`/`z`; bitwise operators propagate
//! unknowns per-bit.

use crate::bit::{Logic, Truth};
use crate::vec::LogicVec;

impl LogicVec {
    // ---- arithmetic -----------------------------------------------------

    /// Addition; the result width is `max(self, rhs)` (wrapping), the usual
    /// context width of `a + b` before assignment truncation.
    pub fn add(&self, rhs: &LogicVec) -> LogicVec {
        self.arith2(rhs, |a, b, w| LogicVec::from_u128(a.wrapping_add(b), w))
    }

    /// Subtraction (wrapping, unsigned two's complement).
    pub fn sub(&self, rhs: &LogicVec) -> LogicVec {
        self.arith2(rhs, |a, b, w| LogicVec::from_u128(a.wrapping_sub(b), w))
    }

    /// Multiplication (wrapping at the result width).
    pub fn mul(&self, rhs: &LogicVec) -> LogicVec {
        self.arith2(rhs, |a, b, w| LogicVec::from_u128(a.wrapping_mul(b), w))
    }

    /// Division; division by zero yields all-`x`, as in Verilog.
    pub fn div(&self, rhs: &LogicVec) -> LogicVec {
        self.arith2(rhs, |a, b, w| match a.checked_div(b) {
            Some(q) => LogicVec::from_u128(q, w),
            None => LogicVec::unknown(w),
        })
    }

    /// Remainder; modulo zero yields all-`x`.
    pub fn rem(&self, rhs: &LogicVec) -> LogicVec {
        self.arith2(rhs, |a, b, w| {
            if b == 0 {
                LogicVec::unknown(w)
            } else {
                LogicVec::from_u128(a % b, w)
            }
        })
    }

    /// Unary minus (two's complement at own width).
    pub fn neg(&self) -> LogicVec {
        let w = self.width();
        match self.to_u128() {
            Some(v) => LogicVec::from_u128(v.wrapping_neg(), w),
            None => LogicVec::unknown(w),
        }
    }

    fn arith2(&self, rhs: &LogicVec, f: impl FnOnce(u128, u128, usize) -> LogicVec) -> LogicVec {
        let w = self.width().max(rhs.width());
        match (self.to_u128(), rhs.to_u128()) {
            (Some(a), Some(b)) => f(a, b, w),
            _ => LogicVec::unknown(w),
        }
    }

    // ---- bitwise --------------------------------------------------------

    /// Bitwise AND at `max` width (operands zero-extended).
    pub fn bit_and(&self, rhs: &LogicVec) -> LogicVec {
        self.bitwise2(rhs, Logic::and)
    }

    /// Bitwise OR.
    pub fn bit_or(&self, rhs: &LogicVec) -> LogicVec {
        self.bitwise2(rhs, Logic::or)
    }

    /// Bitwise XOR.
    pub fn bit_xor(&self, rhs: &LogicVec) -> LogicVec {
        self.bitwise2(rhs, Logic::xor)
    }

    /// Bitwise XNOR (`~^` / `^~`).
    pub fn bit_xnor(&self, rhs: &LogicVec) -> LogicVec {
        self.bitwise2(rhs, Logic::xnor)
    }

    /// Bitwise NOT.
    pub fn bit_not(&self) -> LogicVec {
        LogicVec::from_bits_lsb(self.bits_lsb().iter().map(|b| b.not()).collect())
    }

    fn bitwise2(&self, rhs: &LogicVec, f: impl Fn(Logic, Logic) -> Logic) -> LogicVec {
        let w = self.width().max(rhs.width());
        let a = self.resized(w);
        let b = rhs.resized(w);
        LogicVec::from_bits_lsb((0..w).map(|i| f(a.bit(i), b.bit(i))).collect())
    }

    // ---- reductions -----------------------------------------------------

    /// Reduction AND (`&v`).
    pub fn reduce_and(&self) -> Logic {
        self.bits_lsb().iter().copied().fold(Logic::One, Logic::and)
    }

    /// Reduction OR (`|v`).
    pub fn reduce_or(&self) -> Logic {
        self.bits_lsb().iter().copied().fold(Logic::Zero, Logic::or)
    }

    /// Reduction XOR (`^v`).
    pub fn reduce_xor(&self) -> Logic {
        self.bits_lsb()
            .iter()
            .copied()
            .fold(Logic::Zero, Logic::xor)
    }

    /// Reduction NAND (`~&v`).
    pub fn reduce_nand(&self) -> Logic {
        self.reduce_and().not()
    }

    /// Reduction NOR (`~|v`).
    pub fn reduce_nor(&self) -> Logic {
        self.reduce_or().not()
    }

    /// Reduction XNOR (`~^v`).
    pub fn reduce_xnor(&self) -> Logic {
        self.reduce_xor().not()
    }

    // ---- comparisons ----------------------------------------------------

    /// Logical equality `==`: `x` when either side has unknown bits that
    /// could change the answer.
    pub fn logic_eq(&self, rhs: &LogicVec) -> Logic {
        let w = self.width().max(rhs.width());
        let a = self.resized(w);
        let b = rhs.resized(w);
        let mut result = Logic::One;
        for i in 0..w {
            let (x, y) = (a.bit(i), b.bit(i));
            if x.is_unknown() || y.is_unknown() {
                result = Logic::X;
            } else if x != y {
                return Logic::Zero;
            }
        }
        result
    }

    /// Logical inequality `!=`.
    pub fn logic_neq(&self, rhs: &LogicVec) -> Logic {
        self.logic_eq(rhs).not()
    }

    /// Case equality `===`: exact four-state match, always `0` or `1`.
    pub fn case_eq(&self, rhs: &LogicVec) -> Logic {
        let w = self.width().max(rhs.width());
        let a = self.resized(w);
        let b = rhs.resized(w);
        Logic::from_bool((0..w).all(|i| a.bit(i) == b.bit(i)))
    }

    /// Case inequality `!==`.
    pub fn case_neq(&self, rhs: &LogicVec) -> Logic {
        self.case_eq(rhs).not()
    }

    /// Unsigned `<`; `x` if either operand has unknown bits.
    pub fn lt(&self, rhs: &LogicVec) -> Logic {
        match (self.to_u128(), rhs.to_u128()) {
            (Some(a), Some(b)) => Logic::from_bool(a < b),
            _ => Logic::X,
        }
    }

    /// Unsigned `<=`.
    pub fn le(&self, rhs: &LogicVec) -> Logic {
        match (self.to_u128(), rhs.to_u128()) {
            (Some(a), Some(b)) => Logic::from_bool(a <= b),
            _ => Logic::X,
        }
    }

    /// Unsigned `>`.
    pub fn gt(&self, rhs: &LogicVec) -> Logic {
        rhs.lt(self)
    }

    /// Unsigned `>=`.
    pub fn ge(&self, rhs: &LogicVec) -> Logic {
        rhs.le(self)
    }

    // ---- logical --------------------------------------------------------

    /// Logical AND `&&` over truthiness.
    pub fn logical_and(&self, rhs: &LogicVec) -> Logic {
        self.truth().and(rhs.truth()).to_logic()
    }

    /// Logical OR `||`.
    pub fn logical_or(&self, rhs: &LogicVec) -> Logic {
        self.truth().or(rhs.truth()).to_logic()
    }

    /// Logical NOT `!`.
    pub fn logical_not(&self) -> Logic {
        self.truth().not().to_logic()
    }

    // ---- shifts ---------------------------------------------------------

    /// Logical left shift; the result keeps the left operand's width.
    /// An unknown shift amount yields all-`x`.
    pub fn shl(&self, amount: &LogicVec) -> LogicVec {
        let w = self.width();
        match amount.to_u64() {
            Some(n) => {
                let n = n as usize;
                LogicVec::from_bits_lsb(
                    (0..w)
                        .map(|i| if i >= n { self.bit(i - n) } else { Logic::Zero })
                        .collect(),
                )
            }
            None => LogicVec::unknown(w),
        }
    }

    /// Logical right shift.
    pub fn shr(&self, amount: &LogicVec) -> LogicVec {
        let w = self.width();
        match amount.to_u64() {
            Some(n) => {
                let n = n as usize;
                LogicVec::from_bits_lsb(
                    (0..w)
                        .map(|i| {
                            if i + n < w {
                                self.bit(i + n)
                            } else {
                                Logic::Zero
                            }
                        })
                        .collect(),
                )
            }
            None => LogicVec::unknown(w),
        }
    }

    // ---- selection ------------------------------------------------------

    /// Ternary `cond ? a : b` where `self` is the (already evaluated)
    /// condition: an unknown condition merges the branches bitwise.
    pub fn select(&self, then_v: &LogicVec, else_v: &LogicVec) -> LogicVec {
        match self.truth() {
            Truth::True => then_v.clone(),
            Truth::False => else_v.clone(),
            Truth::Unknown => then_v.merge_ambiguous(else_v),
        }
    }

    // ---- case matching --------------------------------------------------

    /// Plain `case` label match: case equality (`===`).
    pub fn case_match(&self, label: &LogicVec) -> bool {
        self.case_eq(label) == Logic::One
    }

    /// `casez` label match: `z` (or `?`) in either operand is a wildcard.
    pub fn casez_match(&self, label: &LogicVec) -> bool {
        let w = self.width().max(label.width());
        let a = self.resized(w);
        let b = label.resized(w);
        (0..w).all(|i| {
            let (x, y) = (a.bit(i), b.bit(i));
            x == Logic::Z || y == Logic::Z || x == y
        })
    }

    /// `casex` label match: `x` and `z` in either operand are wildcards.
    pub fn casex_match(&self, label: &LogicVec) -> bool {
        let w = self.width().max(label.width());
        let a = self.resized(w);
        let b = label.resized(w);
        (0..w).all(|i| {
            let (x, y) = (a.bit(i), b.bit(i));
            x.is_unknown() || y.is_unknown() || x == y
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: u64, w: usize) -> LogicVec {
        LogicVec::from_u64(x, w)
    }

    #[test]
    fn add_wraps_at_width() {
        assert_eq!(v(15, 4).add(&v(1, 4)).to_u64(), Some(0));
        assert_eq!(v(7, 4).add(&v(1, 4)).to_u64(), Some(8));
        // Mixed widths use the max width.
        assert_eq!(v(255, 8).add(&v(1, 4)).to_u64(), Some(0));
    }

    #[test]
    fn sub_wraps_unsigned() {
        assert_eq!(v(0, 4).sub(&v(1, 4)).to_u64(), Some(15));
        assert_eq!(v(9, 4).sub(&v(4, 4)).to_u64(), Some(5));
    }

    #[test]
    fn unknown_poisons_arithmetic() {
        let x = LogicVec::unknown(4);
        assert!(v(3, 4).add(&x).has_unknown());
        assert!(x.mul(&v(2, 4)).has_unknown());
        assert!(x.neg().has_unknown());
    }

    #[test]
    fn div_rem_by_zero_is_x() {
        assert!(v(5, 4).div(&v(0, 4)).has_unknown());
        assert!(v(5, 4).rem(&v(0, 4)).has_unknown());
        assert_eq!(v(7, 4).div(&v(2, 4)).to_u64(), Some(3));
        assert_eq!(v(7, 4).rem(&v(2, 4)).to_u64(), Some(1));
    }

    #[test]
    fn bitwise_ops() {
        assert_eq!(v(0b1100, 4).bit_and(&v(0b1010, 4)).to_u64(), Some(0b1000));
        assert_eq!(v(0b1100, 4).bit_or(&v(0b1010, 4)).to_u64(), Some(0b1110));
        assert_eq!(v(0b1100, 4).bit_xor(&v(0b1010, 4)).to_u64(), Some(0b0110));
        assert_eq!(v(0b1100, 4).bit_not().to_u64(), Some(0b0011));
        assert_eq!(v(0b1100, 4).bit_xnor(&v(0b1010, 4)).to_u64(), Some(0b1001));
    }

    #[test]
    fn bitwise_partial_unknown() {
        let mut a = v(0b0001, 4);
        a.set_bit(3, Logic::X);
        // 0 & x = 0; x & 1 = x
        let and = a.bit_and(&v(0b1001, 4));
        assert_eq!(and.bit(0), Logic::One);
        assert_eq!(and.bit(3), Logic::X);
        // 1 | x = 1
        let or = a.bit_or(&v(0b1000, 4));
        assert_eq!(or.bit(3), Logic::One);
    }

    #[test]
    fn reductions() {
        assert_eq!(v(0b1111, 4).reduce_and(), Logic::One);
        assert_eq!(v(0b1110, 4).reduce_and(), Logic::Zero);
        assert_eq!(v(0, 4).reduce_or(), Logic::Zero);
        assert_eq!(v(0b0100, 4).reduce_or(), Logic::One);
        assert_eq!(v(0b0110, 4).reduce_xor(), Logic::Zero);
        assert_eq!(v(0b0111, 4).reduce_xor(), Logic::One);
        assert_eq!(v(0b1111, 4).reduce_nand(), Logic::Zero);
        assert_eq!(LogicVec::unknown(2).reduce_or(), Logic::X);
        // A zero bit decides reduction AND regardless of x bits.
        let mut a = LogicVec::unknown(2);
        a.set_bit(0, Logic::Zero);
        assert_eq!(a.reduce_and(), Logic::Zero);
    }

    #[test]
    fn equality_with_unknowns() {
        assert_eq!(v(3, 4).logic_eq(&v(3, 4)), Logic::One);
        assert_eq!(v(3, 4).logic_eq(&v(4, 4)), Logic::Zero);
        // A definite bit difference decides even with x elsewhere.
        let mut a = v(0b0001, 4);
        a.set_bit(3, Logic::X);
        assert_eq!(a.logic_eq(&v(0b0000, 4)), Logic::Zero);
        // Otherwise unknown.
        assert_eq!(a.logic_eq(&v(0b0001, 4)), Logic::X);
    }

    #[test]
    fn case_equality_is_exact() {
        let a = LogicVec::unknown(2);
        assert_eq!(a.case_eq(&LogicVec::unknown(2)), Logic::One);
        assert_eq!(a.case_eq(&LogicVec::high_z(2)), Logic::Zero);
        assert_eq!(v(2, 2).case_neq(&v(2, 2)), Logic::Zero);
    }

    #[test]
    fn relational() {
        assert_eq!(v(2, 4).lt(&v(3, 4)), Logic::One);
        assert_eq!(v(3, 4).lt(&v(3, 4)), Logic::Zero);
        assert_eq!(v(3, 4).le(&v(3, 4)), Logic::One);
        assert_eq!(v(4, 4).gt(&v(3, 4)), Logic::One);
        assert_eq!(v(4, 4).ge(&v(5, 4)), Logic::Zero);
        assert_eq!(LogicVec::unknown(4).lt(&v(3, 4)), Logic::X);
    }

    #[test]
    fn logical_ops() {
        assert_eq!(v(2, 4).logical_and(&v(1, 4)), Logic::One);
        assert_eq!(v(0, 4).logical_and(&LogicVec::unknown(4)), Logic::Zero);
        assert_eq!(v(1, 4).logical_or(&LogicVec::unknown(4)), Logic::One);
        assert_eq!(v(0, 4).logical_not(), Logic::One);
        assert_eq!(LogicVec::unknown(4).logical_not(), Logic::X);
    }

    #[test]
    fn shifts_keep_width() {
        assert_eq!(v(0b0011, 4).shl(&v(2, 4)).to_u64(), Some(0b1100));
        assert_eq!(v(0b0011, 4).shl(&v(4, 4)).to_u64(), Some(0));
        assert_eq!(v(0b1100, 4).shr(&v(2, 4)).to_u64(), Some(0b0011));
        assert!(v(1, 4).shl(&LogicVec::unknown(2)).has_unknown());
    }

    #[test]
    fn select_merges_on_unknown_condition() {
        let t = v(0b1100, 4);
        let e = v(0b1010, 4);
        assert_eq!(v(1, 1).select(&t, &e), t);
        assert_eq!(v(0, 1).select(&t, &e), e);
        let m = LogicVec::unknown(1).select(&t, &e);
        assert_eq!(m.to_string(), "4'b1xx0");
    }

    #[test]
    fn case_matching_variants() {
        let subject = v(0b10, 2);
        assert!(subject.case_match(&v(0b10, 2)));
        assert!(!subject.case_match(&LogicVec::unknown(2)));
        // casez: z is a wildcard.
        let mut pat = v(0b10, 2);
        pat.set_bit(0, Logic::Z);
        assert!(subject.casez_match(&pat));
        assert!(v(0b11, 2).casez_match(&pat));
        assert!(!v(0b01, 2).casez_match(&pat));
        // casex: x is also a wildcard.
        let mut patx = v(0b10, 2);
        patx.set_bit(0, Logic::X);
        assert!(!subject.casez_match(&patx) || subject.bit(0) == Logic::Zero);
        assert!(subject.casex_match(&patx));
    }
}
