//! Verilog expression operators over [`LogicVec`].
//!
//! All binary operators follow IEEE 1364 semantics for unsigned operands:
//! arithmetic and relational operators produce all-`x` (respectively `x`)
//! results when any input bit is `x`/`z`; bitwise operators propagate
//! unknowns per-bit.
//!
//! The implementations here are *word-packed*: each operator combines
//! the two `u64` bit-planes (see `vec.rs` for the encoding) a word at a
//! time. Writing `v = a & !b` for the definite-one mask and
//! `k = !a & !b` for the definite-zero mask, the per-plane rules are:
//!
//! * AND: ones = `v₁ & v₂`, zeros = `k₁ | k₂`, rest `x`;
//! * OR: ones = `v₁ | v₂`, zeros = `k₁ & k₂`, rest `x`;
//! * XOR/XNOR: known exactly where both operands are known;
//! * add/sub/compare: all-`x` when any unknown bit exists, otherwise
//!   multiword ripple-carry / most-significant-word-first compare on
//!   the `a` plane alone (so they work at any width);
//! * shifts: whole-word moves of both planes.
//!
//! Every operator is differentially tested against the per-bit
//! algorithms in [`crate::reference`], and can be globally switched to
//! them via [`crate::set_backend`].

use crate::backend::use_reference;
use crate::bit::{Logic, Truth};
use crate::reference;
use crate::vec::{top_mask, words_for, LogicVec};

impl LogicVec {
    // ---- arithmetic -----------------------------------------------------

    /// Addition; the result width is `max(self, rhs)` (wrapping), the usual
    /// context width of `a + b` before assignment truncation.
    pub fn add(&self, rhs: &LogicVec) -> LogicVec {
        if use_reference() {
            return reference::add(self, rhs);
        }
        let w = self.width().max(rhs.width());
        if self.has_unknown() || rhs.has_unknown() {
            return LogicVec::unknown(w);
        }
        let mut carry = false;
        LogicVec::build(w, |i| {
            let (a, _) = self.word(i);
            let (b, _) = rhs.word(i);
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(u64::from(carry));
            carry = c1 | c2;
            (s2, 0)
        })
    }

    /// Subtraction (wrapping, unsigned two's complement).
    pub fn sub(&self, rhs: &LogicVec) -> LogicVec {
        if use_reference() {
            return reference::sub(self, rhs);
        }
        let w = self.width().max(rhs.width());
        if self.has_unknown() || rhs.has_unknown() {
            return LogicVec::unknown(w);
        }
        let mut carry = true;
        LogicVec::build(w, |i| {
            let (a, _) = self.word(i);
            let (b, _) = rhs.word(i);
            let (s1, c1) = a.overflowing_add(!b);
            let (s2, c2) = s1.overflowing_add(u64::from(carry));
            carry = c1 | c2;
            (s2, 0)
        })
    }

    /// Multiplication (wrapping at the result width). Fully-known
    /// operands wider than 128 bits yield all-`x` — the documented
    /// limit of the `u128`-based product, shared with the reference
    /// backend.
    pub fn mul(&self, rhs: &LogicVec) -> LogicVec {
        if use_reference() {
            return reference::mul(self, rhs);
        }
        self.arith_u128(rhs, |a, b, w| LogicVec::from_u128(a.wrapping_mul(b), w))
    }

    /// Division; division by zero yields all-`x`, as in Verilog.
    pub fn div(&self, rhs: &LogicVec) -> LogicVec {
        if use_reference() {
            return reference::div(self, rhs);
        }
        self.arith_u128(rhs, |a, b, w| match a.checked_div(b) {
            Some(q) => LogicVec::from_u128(q, w),
            None => LogicVec::unknown(w),
        })
    }

    /// Remainder; modulo zero yields all-`x`.
    pub fn rem(&self, rhs: &LogicVec) -> LogicVec {
        if use_reference() {
            return reference::rem(self, rhs);
        }
        self.arith_u128(rhs, |a, b, w| {
            if b == 0 {
                LogicVec::unknown(w)
            } else {
                LogicVec::from_u128(a % b, w)
            }
        })
    }

    /// Unary minus (two's complement at own width).
    pub fn neg(&self) -> LogicVec {
        if use_reference() {
            return reference::neg(self);
        }
        let w = self.width();
        if self.has_unknown() {
            return LogicVec::unknown(w);
        }
        let mut carry = true;
        LogicVec::build(w, |i| {
            let (a, _) = self.word(i);
            let (s, c) = (!a).overflowing_add(u64::from(carry));
            carry = c;
            (s, 0)
        })
    }

    fn arith_u128(
        &self,
        rhs: &LogicVec,
        f: impl FnOnce(u128, u128, usize) -> LogicVec,
    ) -> LogicVec {
        let w = self.width().max(rhs.width());
        match (self.to_u128(), rhs.to_u128()) {
            (Some(a), Some(b)) => f(a, b, w),
            _ => LogicVec::unknown(w),
        }
    }

    // ---- bitwise --------------------------------------------------------

    /// Bitwise AND at `max` width (operands zero-extended).
    pub fn bit_and(&self, rhs: &LogicVec) -> LogicVec {
        if use_reference() {
            return reference::bit_and(self, rhs);
        }
        LogicVec::build(self.width().max(rhs.width()), |i| {
            let (a1, b1) = self.word(i);
            let (a2, b2) = rhs.word(i);
            let ones = (a1 & !b1) & (a2 & !b2);
            let zeros = (!a1 & !b1) | (!a2 & !b2);
            let x = !(ones | zeros);
            (ones | x, x)
        })
    }

    /// Bitwise OR.
    pub fn bit_or(&self, rhs: &LogicVec) -> LogicVec {
        if use_reference() {
            return reference::bit_or(self, rhs);
        }
        LogicVec::build(self.width().max(rhs.width()), |i| {
            let (a1, b1) = self.word(i);
            let (a2, b2) = rhs.word(i);
            let ones = (a1 & !b1) | (a2 & !b2);
            let zeros = (!a1 & !b1) & (!a2 & !b2);
            let x = !(ones | zeros);
            (ones | x, x)
        })
    }

    /// Bitwise XOR.
    pub fn bit_xor(&self, rhs: &LogicVec) -> LogicVec {
        if use_reference() {
            return reference::bit_xor(self, rhs);
        }
        LogicVec::build(self.width().max(rhs.width()), |i| {
            let (a1, b1) = self.word(i);
            let (a2, b2) = rhs.word(i);
            let known = !b1 & !b2;
            let x = !known;
            (((a1 ^ a2) & known) | x, x)
        })
    }

    /// Bitwise XNOR (`~^` / `^~`).
    pub fn bit_xnor(&self, rhs: &LogicVec) -> LogicVec {
        if use_reference() {
            return reference::bit_xnor(self, rhs);
        }
        LogicVec::build(self.width().max(rhs.width()), |i| {
            let (a1, b1) = self.word(i);
            let (a2, b2) = rhs.word(i);
            let known = !b1 & !b2;
            let x = !known;
            ((!(a1 ^ a2) & known) | x, x)
        })
    }

    /// Bitwise NOT.
    pub fn bit_not(&self) -> LogicVec {
        if use_reference() {
            return reference::bit_not(self);
        }
        LogicVec::build(self.width(), |i| {
            let (a, b) = self.word(i);
            ((!a & !b) | b, b)
        })
    }

    // ---- reductions -----------------------------------------------------

    /// Reduction AND (`&v`).
    pub fn reduce_and(&self) -> Logic {
        if use_reference() {
            return reference::reduce_and(self);
        }
        let (aw, bw) = self.planes();
        let mut unknown = false;
        let last = aw.len() - 1;
        for (i, (a, b)) in aw.iter().zip(bw).enumerate() {
            // Padding above the width is (0,0), which would read as a
            // definite zero bit — mask it out of the top word.
            let m = if i == last {
                top_mask(self.width())
            } else {
                u64::MAX
            };
            if !a & !b & m != 0 {
                return Logic::Zero;
            }
            unknown |= *b != 0;
        }
        if unknown {
            Logic::X
        } else {
            Logic::One
        }
    }

    /// Reduction OR (`|v`).
    pub fn reduce_or(&self) -> Logic {
        if use_reference() {
            return reference::reduce_or(self);
        }
        let (aw, bw) = self.planes();
        let mut unknown = false;
        for (a, b) in aw.iter().zip(bw) {
            if a & !b != 0 {
                return Logic::One;
            }
            unknown |= *b != 0;
        }
        if unknown {
            Logic::X
        } else {
            Logic::Zero
        }
    }

    /// Reduction XOR (`^v`).
    pub fn reduce_xor(&self) -> Logic {
        if use_reference() {
            return reference::reduce_xor(self);
        }
        let (aw, bw) = self.planes();
        if bw.iter().any(|b| *b != 0) {
            return Logic::X;
        }
        let parity = aw.iter().map(|a| a.count_ones()).sum::<u32>() % 2;
        Logic::from_bool(parity == 1)
    }

    /// Reduction NAND (`~&v`).
    pub fn reduce_nand(&self) -> Logic {
        self.reduce_and().not()
    }

    /// Reduction NOR (`~|v`).
    pub fn reduce_nor(&self) -> Logic {
        self.reduce_or().not()
    }

    /// Reduction XNOR (`~^v`).
    pub fn reduce_xnor(&self) -> Logic {
        self.reduce_xor().not()
    }

    // ---- comparisons ----------------------------------------------------

    /// Logical equality `==`: `x` when either side has unknown bits that
    /// could change the answer.
    pub fn logic_eq(&self, rhs: &LogicVec) -> Logic {
        if use_reference() {
            return reference::logic_eq(self, rhs);
        }
        let n = words_for(self.width().max(rhs.width()));
        let mut unknown = false;
        for i in 0..n {
            let (a1, b1) = self.word(i);
            let (a2, b2) = rhs.word(i);
            // A definite bit difference decides, even with x elsewhere.
            if (a1 ^ a2) & !b1 & !b2 != 0 {
                return Logic::Zero;
            }
            unknown |= (b1 | b2) != 0;
        }
        if unknown {
            Logic::X
        } else {
            Logic::One
        }
    }

    /// Logical inequality `!=`.
    pub fn logic_neq(&self, rhs: &LogicVec) -> Logic {
        self.logic_eq(rhs).not()
    }

    /// Case equality `===`: exact four-state match, always `0` or `1`.
    pub fn case_eq(&self, rhs: &LogicVec) -> Logic {
        if use_reference() {
            return reference::case_eq(self, rhs);
        }
        let n = words_for(self.width().max(rhs.width()));
        Logic::from_bool((0..n).all(|i| self.word(i) == rhs.word(i)))
    }

    /// Case inequality `!==`.
    pub fn case_neq(&self, rhs: &LogicVec) -> Logic {
        self.case_eq(rhs).not()
    }

    /// Unsigned `<`; `x` if either operand has unknown bits.
    pub fn lt(&self, rhs: &LogicVec) -> Logic {
        if use_reference() {
            return reference::lt(self, rhs);
        }
        match self.cmp_known(rhs) {
            None => Logic::X,
            Some(ord) => Logic::from_bool(ord == std::cmp::Ordering::Less),
        }
    }

    /// Unsigned `<=`.
    pub fn le(&self, rhs: &LogicVec) -> Logic {
        if use_reference() {
            return reference::le(self, rhs);
        }
        match self.cmp_known(rhs) {
            None => Logic::X,
            Some(ord) => Logic::from_bool(ord != std::cmp::Ordering::Greater),
        }
    }

    /// Unsigned `>`.
    pub fn gt(&self, rhs: &LogicVec) -> Logic {
        rhs.lt(self)
    }

    /// Unsigned `>=`.
    pub fn ge(&self, rhs: &LogicVec) -> Logic {
        rhs.le(self)
    }

    /// Multiword unsigned compare of the `a` planes; `None` on any
    /// unknown bit.
    fn cmp_known(&self, rhs: &LogicVec) -> Option<std::cmp::Ordering> {
        if self.has_unknown() || rhs.has_unknown() {
            return None;
        }
        let n = words_for(self.width().max(rhs.width()));
        for i in (0..n).rev() {
            let (a, _) = self.word(i);
            let (b, _) = rhs.word(i);
            if a != b {
                return Some(a.cmp(&b));
            }
        }
        Some(std::cmp::Ordering::Equal)
    }

    // ---- logical --------------------------------------------------------

    /// Logical AND `&&` over truthiness.
    pub fn logical_and(&self, rhs: &LogicVec) -> Logic {
        if use_reference() {
            return reference::logical_and(self, rhs);
        }
        self.truth().and(rhs.truth()).to_logic()
    }

    /// Logical OR `||`.
    pub fn logical_or(&self, rhs: &LogicVec) -> Logic {
        if use_reference() {
            return reference::logical_or(self, rhs);
        }
        self.truth().or(rhs.truth()).to_logic()
    }

    /// Logical NOT `!`.
    pub fn logical_not(&self) -> Logic {
        if use_reference() {
            return reference::logical_not(self);
        }
        self.truth().not().to_logic()
    }

    // ---- shifts ---------------------------------------------------------

    /// Logical left shift; the result keeps the left operand's width.
    /// An unknown shift amount yields all-`x`; a known amount of the
    /// width or more yields all-`0` (every bit shifted out).
    pub fn shl(&self, amount: &LogicVec) -> LogicVec {
        if use_reference() {
            return reference::shl(self, amount);
        }
        let w = self.width();
        match self.shift_amount(amount, w) {
            ShiftAmount::Unknown => LogicVec::unknown(w),
            ShiftAmount::Overflow => LogicVec::zero(w),
            ShiftAmount::Bits(n) => {
                let (ws, bs) = (n / 64, n % 64);
                LogicVec::build(w, |i| {
                    if i < ws {
                        return (0, 0);
                    }
                    let (a0, b0) = self.word(i - ws);
                    if bs == 0 {
                        (a0, b0)
                    } else if i - ws == 0 {
                        (a0 << bs, b0 << bs)
                    } else {
                        let (a1, b1) = self.word(i - ws - 1);
                        (
                            (a0 << bs) | (a1 >> (64 - bs)),
                            (b0 << bs) | (b1 >> (64 - bs)),
                        )
                    }
                })
            }
        }
    }

    /// Logical right shift.
    pub fn shr(&self, amount: &LogicVec) -> LogicVec {
        if use_reference() {
            return reference::shr(self, amount);
        }
        let w = self.width();
        match self.shift_amount(amount, w) {
            ShiftAmount::Unknown => LogicVec::unknown(w),
            ShiftAmount::Overflow => LogicVec::zero(w),
            ShiftAmount::Bits(n) => {
                let (ws, bs) = (n / 64, n % 64);
                LogicVec::build(w, |i| {
                    let (a0, b0) = self.word(i + ws);
                    if bs == 0 {
                        (a0, b0)
                    } else {
                        let (a1, b1) = self.word(i + ws + 1);
                        (
                            (a0 >> bs) | (a1 << (64 - bs)),
                            (b0 >> bs) | (b1 << (64 - bs)),
                        )
                    }
                })
            }
        }
    }

    /// Classifies a shift amount: unknown bits, a known amount `>=
    /// width` (including amounts too wide for `u64`), or in-range bits.
    fn shift_amount(&self, amount: &LogicVec, width: usize) -> ShiftAmount {
        if amount.has_unknown() {
            return ShiftAmount::Unknown;
        }
        match amount.to_u64() {
            // Fully known but with a 1 above bit 63: shifts everything out.
            None => ShiftAmount::Overflow,
            Some(n) if n >= width as u64 => ShiftAmount::Overflow,
            Some(n) => ShiftAmount::Bits(n as usize),
        }
    }

    // ---- selection ------------------------------------------------------

    /// Ternary `cond ? a : b` where `self` is the (already evaluated)
    /// condition: an unknown condition merges the branches bitwise.
    pub fn select(&self, then_v: &LogicVec, else_v: &LogicVec) -> LogicVec {
        if use_reference() {
            return reference::select(self, then_v, else_v);
        }
        match self.truth() {
            Truth::True => then_v.clone(),
            Truth::False => else_v.clone(),
            Truth::Unknown => then_v.merge_ambiguous(else_v),
        }
    }

    // ---- case matching --------------------------------------------------

    /// Plain `case` label match: case equality (`===`).
    pub fn case_match(&self, label: &LogicVec) -> bool {
        self.case_eq(label) == Logic::One
    }

    /// `casez` label match: `z` (or `?`) in either operand is a wildcard.
    pub fn casez_match(&self, label: &LogicVec) -> bool {
        if use_reference() {
            return reference::casez_match(self, label);
        }
        let n = words_for(self.width().max(label.width()));
        (0..n).all(|i| {
            let (a1, b1) = self.word(i);
            let (a2, b2) = label.word(i);
            let wild = (!a1 & b1) | (!a2 & b2);
            let eq = !((a1 ^ a2) | (b1 ^ b2));
            eq | wild == u64::MAX
        })
    }

    /// `casex` label match: `x` and `z` in either operand are wildcards.
    pub fn casex_match(&self, label: &LogicVec) -> bool {
        if use_reference() {
            return reference::casex_match(self, label);
        }
        let n = words_for(self.width().max(label.width()));
        (0..n).all(|i| {
            let (a1, b1) = self.word(i);
            let (a2, b2) = label.word(i);
            let eq = !((a1 ^ a2) | (b1 ^ b2));
            eq | b1 | b2 == u64::MAX
        })
    }
}

/// Outcome of resolving a shift amount.
enum ShiftAmount {
    Unknown,
    Overflow,
    Bits(usize),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: u64, w: usize) -> LogicVec {
        LogicVec::from_u64(x, w)
    }

    #[test]
    fn add_wraps_at_width() {
        assert_eq!(v(15, 4).add(&v(1, 4)).to_u64(), Some(0));
        assert_eq!(v(7, 4).add(&v(1, 4)).to_u64(), Some(8));
        // Mixed widths use the max width.
        assert_eq!(v(255, 8).add(&v(1, 4)).to_u64(), Some(0));
    }

    #[test]
    fn sub_wraps_unsigned() {
        assert_eq!(v(0, 4).sub(&v(1, 4)).to_u64(), Some(15));
        assert_eq!(v(9, 4).sub(&v(4, 4)).to_u64(), Some(5));
    }

    #[test]
    fn unknown_poisons_arithmetic() {
        let x = LogicVec::unknown(4);
        assert!(v(3, 4).add(&x).has_unknown());
        assert!(x.mul(&v(2, 4)).has_unknown());
        assert!(x.neg().has_unknown());
    }

    #[test]
    fn div_rem_by_zero_is_x() {
        assert!(v(5, 4).div(&v(0, 4)).has_unknown());
        assert!(v(5, 4).rem(&v(0, 4)).has_unknown());
        assert_eq!(v(7, 4).div(&v(2, 4)).to_u64(), Some(3));
        assert_eq!(v(7, 4).rem(&v(2, 4)).to_u64(), Some(1));
    }

    #[test]
    fn bitwise_ops() {
        assert_eq!(v(0b1100, 4).bit_and(&v(0b1010, 4)).to_u64(), Some(0b1000));
        assert_eq!(v(0b1100, 4).bit_or(&v(0b1010, 4)).to_u64(), Some(0b1110));
        assert_eq!(v(0b1100, 4).bit_xor(&v(0b1010, 4)).to_u64(), Some(0b0110));
        assert_eq!(v(0b1100, 4).bit_not().to_u64(), Some(0b0011));
        assert_eq!(v(0b1100, 4).bit_xnor(&v(0b1010, 4)).to_u64(), Some(0b1001));
    }

    #[test]
    fn bitwise_partial_unknown() {
        let mut a = v(0b0001, 4);
        a.set_bit(3, Logic::X);
        // 0 & x = 0; x & 1 = x
        let and = a.bit_and(&v(0b1001, 4));
        assert_eq!(and.bit(0), Logic::One);
        assert_eq!(and.bit(3), Logic::X);
        // 1 | x = 1
        let or = a.bit_or(&v(0b1000, 4));
        assert_eq!(or.bit(3), Logic::One);
    }

    #[test]
    fn reductions() {
        assert_eq!(v(0b1111, 4).reduce_and(), Logic::One);
        assert_eq!(v(0b1110, 4).reduce_and(), Logic::Zero);
        assert_eq!(v(0, 4).reduce_or(), Logic::Zero);
        assert_eq!(v(0b0100, 4).reduce_or(), Logic::One);
        assert_eq!(v(0b0110, 4).reduce_xor(), Logic::Zero);
        assert_eq!(v(0b0111, 4).reduce_xor(), Logic::One);
        assert_eq!(v(0b1111, 4).reduce_nand(), Logic::Zero);
        assert_eq!(LogicVec::unknown(2).reduce_or(), Logic::X);
        // A zero bit decides reduction AND regardless of x bits.
        let mut a = LogicVec::unknown(2);
        a.set_bit(0, Logic::Zero);
        assert_eq!(a.reduce_and(), Logic::Zero);
    }

    #[test]
    fn equality_with_unknowns() {
        assert_eq!(v(3, 4).logic_eq(&v(3, 4)), Logic::One);
        assert_eq!(v(3, 4).logic_eq(&v(4, 4)), Logic::Zero);
        // A definite bit difference decides even with x elsewhere.
        let mut a = v(0b0001, 4);
        a.set_bit(3, Logic::X);
        assert_eq!(a.logic_eq(&v(0b0000, 4)), Logic::Zero);
        // Otherwise unknown.
        assert_eq!(a.logic_eq(&v(0b0001, 4)), Logic::X);
    }

    #[test]
    fn case_equality_is_exact() {
        let a = LogicVec::unknown(2);
        assert_eq!(a.case_eq(&LogicVec::unknown(2)), Logic::One);
        assert_eq!(a.case_eq(&LogicVec::high_z(2)), Logic::Zero);
        assert_eq!(v(2, 2).case_neq(&v(2, 2)), Logic::Zero);
    }

    #[test]
    fn relational() {
        assert_eq!(v(2, 4).lt(&v(3, 4)), Logic::One);
        assert_eq!(v(3, 4).lt(&v(3, 4)), Logic::Zero);
        assert_eq!(v(3, 4).le(&v(3, 4)), Logic::One);
        assert_eq!(v(4, 4).gt(&v(3, 4)), Logic::One);
        assert_eq!(v(4, 4).ge(&v(5, 4)), Logic::Zero);
        assert_eq!(LogicVec::unknown(4).lt(&v(3, 4)), Logic::X);
    }

    #[test]
    fn logical_ops() {
        assert_eq!(v(2, 4).logical_and(&v(1, 4)), Logic::One);
        assert_eq!(v(0, 4).logical_and(&LogicVec::unknown(4)), Logic::Zero);
        assert_eq!(v(1, 4).logical_or(&LogicVec::unknown(4)), Logic::One);
        assert_eq!(v(0, 4).logical_not(), Logic::One);
        assert_eq!(LogicVec::unknown(4).logical_not(), Logic::X);
    }

    #[test]
    fn shifts_keep_width() {
        assert_eq!(v(0b0011, 4).shl(&v(2, 4)).to_u64(), Some(0b1100));
        assert_eq!(v(0b0011, 4).shl(&v(4, 4)).to_u64(), Some(0));
        assert_eq!(v(0b1100, 4).shr(&v(2, 4)).to_u64(), Some(0b0011));
        assert!(v(1, 4).shl(&LogicVec::unknown(2)).has_unknown());
    }

    #[test]
    fn select_merges_on_unknown_condition() {
        let t = v(0b1100, 4);
        let e = v(0b1010, 4);
        assert_eq!(v(1, 1).select(&t, &e), t);
        assert_eq!(v(0, 1).select(&t, &e), e);
        let m = LogicVec::unknown(1).select(&t, &e);
        assert_eq!(m.to_string(), "4'b1xx0");
    }

    #[test]
    fn case_matching_variants() {
        let subject = v(0b10, 2);
        assert!(subject.case_match(&v(0b10, 2)));
        assert!(!subject.case_match(&LogicVec::unknown(2)));
        // casez: z is a wildcard.
        let mut pat = v(0b10, 2);
        pat.set_bit(0, Logic::Z);
        assert!(subject.casez_match(&pat));
        assert!(v(0b11, 2).casez_match(&pat));
        assert!(!v(0b01, 2).casez_match(&pat));
        // casex: x is also a wildcard.
        let mut patx = v(0b10, 2);
        patx.set_bit(0, Logic::X);
        assert!(!subject.casez_match(&patx) || subject.bit(0) == Logic::Zero);
        assert!(subject.casex_match(&patx));
    }

    // -- regressions for 4-state bugs flushed out by the differential
    //    sweep (satellite: the old per-bit backend got these wrong) ---

    #[test]
    fn known_shift_amount_wider_than_u64_shifts_everything_out() {
        // The old backend routed the amount through `to_u64()` and
        // treated `None` (a fully-known 1 above bit 63) as unknown,
        // yielding all-x; a known huge amount must yield all-0.
        let mut amount = LogicVec::zero(70);
        amount.set_bit(69, Logic::One);
        assert!(amount.is_fully_known());
        assert_eq!(v(0b1011, 4).shl(&amount).to_u64(), Some(0));
        assert_eq!(v(0b1011, 4).shr(&amount).to_u64(), Some(0));
    }

    #[test]
    fn arithmetic_works_beyond_128_bits() {
        // The old backend computed add/sub/neg via `to_u128()` and
        // yielded all-x for any fully-known operand with a 1 above bit
        // 127. Multiword ripple-carry has no such limit.
        let mut a = LogicVec::zero(200);
        a.set_bit(199, Logic::One); // 2^199
        let one = LogicVec::from_u64(1, 200);
        let sum = a.add(&one);
        assert_eq!(sum.bit(199), Logic::One);
        assert_eq!(sum.bit(0), Logic::One);
        assert!(sum.is_fully_known());
        assert_eq!(sum.sub(&one), a);
        // -(2^199) at width 200 is 2^199 (two's complement fixpoint).
        assert_eq!(a.neg(), a);
    }

    #[test]
    fn comparison_works_beyond_128_bits() {
        // Same `to_u128()` failure: fully-known >128-bit compares
        // returned x instead of deciding.
        let mut big = LogicVec::zero(200);
        big.set_bit(199, Logic::One);
        let small = LogicVec::from_u64(7, 200);
        assert_eq!(small.lt(&big), Logic::One);
        assert_eq!(big.lt(&small), Logic::Zero);
        assert_eq!(big.ge(&small), Logic::One);
        assert_eq!(big.le(&big), Logic::One);
    }
}
