//! Process-wide evaluation-backend switch for differential testing.
//!
//! The word-packed operators in `ops.rs` are the production backend.
//! For whole-run equivalence testing the simulator can be flipped to
//! the per-bit [`crate::reference`] algorithms, which compute every
//! operator bit by bit through the `bit()`/`set_bit()` adapters. Both
//! backends implement the same IEEE 1364 semantics; the differential
//! suites assert they are indistinguishable.
//!
//! The switch is a process-wide relaxed atomic rather than a field of
//! any configuration struct: simulator configs are folded into
//! persisted problem digests, and the backend choice must never
//! perturb those (the whole point is that it is unobservable).

use std::sync::atomic::{AtomicU8, Ordering};

/// Which operator implementations [`crate::LogicVec`] methods run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Two-plane word-packed operators (production).
    Packed,
    /// Per-bit reference algorithms (differential testing).
    Reference,
}

static BACKEND: AtomicU8 = AtomicU8::new(0);

/// Selects the operator backend for the whole process.
pub fn set_backend(backend: Backend) {
    BACKEND.store(backend as u8, Ordering::Relaxed);
}

/// The currently selected operator backend.
#[inline]
pub fn backend() -> Backend {
    if BACKEND.load(Ordering::Relaxed) == 0 {
        Backend::Packed
    } else {
        Backend::Reference
    }
}

/// `true` when the per-bit reference backend is selected.
#[inline]
pub(crate) fn use_reference() -> bool {
    backend() == Backend::Reference
}
