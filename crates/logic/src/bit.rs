//! The scalar four-state logic value.

use std::fmt;

/// A single four-state Verilog logic value.
///
/// `X` models an unknown value (uninitialized registers, conflicting
/// drivers); `Z` models high impedance (undriven nets).
///
/// # Examples
///
/// ```
/// use cirfix_logic::Logic;
/// assert_eq!(Logic::Zero.and(Logic::X), Logic::Zero); // 0 dominates AND
/// assert_eq!(Logic::One.or(Logic::X), Logic::One);    // 1 dominates OR
/// assert_eq!(Logic::X.not(), Logic::X);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Logic {
    /// Logic low.
    Zero,
    /// Logic high.
    One,
    /// Unknown.
    X,
    /// High impedance.
    Z,
}

impl Logic {
    /// All four values, in a fixed order (useful for exhaustive tests).
    pub const ALL: [Logic; 4] = [Logic::Zero, Logic::One, Logic::X, Logic::Z];

    /// Returns `true` for `x` or `z`.
    #[inline]
    pub fn is_unknown(self) -> bool {
        matches!(self, Logic::X | Logic::Z)
    }

    /// Returns `true` only for a definite `1`.
    #[inline]
    pub fn is_one(self) -> bool {
        self == Logic::One
    }

    /// Returns `true` only for a definite `0`.
    #[inline]
    pub fn is_zero(self) -> bool {
        self == Logic::Zero
    }

    /// Converts a boolean to `0`/`1`.
    #[inline]
    pub fn from_bool(b: bool) -> Logic {
        if b {
            Logic::One
        } else {
            Logic::Zero
        }
    }

    /// Four-state AND: `0` dominates, unknowns yield `x`.
    #[inline]
    pub fn and(self, other: Logic) -> Logic {
        match (self, other) {
            (Logic::Zero, _) | (_, Logic::Zero) => Logic::Zero,
            (Logic::One, Logic::One) => Logic::One,
            _ => Logic::X,
        }
    }

    /// Four-state OR: `1` dominates, unknowns yield `x`.
    #[inline]
    pub fn or(self, other: Logic) -> Logic {
        match (self, other) {
            (Logic::One, _) | (_, Logic::One) => Logic::One,
            (Logic::Zero, Logic::Zero) => Logic::Zero,
            _ => Logic::X,
        }
    }

    /// Four-state XOR: any unknown yields `x`.
    #[inline]
    pub fn xor(self, other: Logic) -> Logic {
        match (self, other) {
            (Logic::Zero, Logic::Zero) | (Logic::One, Logic::One) => Logic::Zero,
            (Logic::Zero, Logic::One) | (Logic::One, Logic::Zero) => Logic::One,
            _ => Logic::X,
        }
    }

    /// Four-state XNOR.
    #[inline]
    pub fn xnor(self, other: Logic) -> Logic {
        self.xor(other).not()
    }

    /// Four-state NOT: unknowns yield `x`.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Logic {
        match self {
            Logic::Zero => Logic::One,
            Logic::One => Logic::Zero,
            _ => Logic::X,
        }
    }

    /// The character used for this value in Verilog literals (`0 1 x z`).
    #[inline]
    pub fn to_char(self) -> char {
        match self {
            Logic::Zero => '0',
            Logic::One => '1',
            Logic::X => 'x',
            Logic::Z => 'z',
        }
    }

    /// Parses a single literal digit character (case-insensitive; `?` is `z`).
    pub fn from_char(c: char) -> Option<Logic> {
        match c.to_ascii_lowercase() {
            '0' => Some(Logic::Zero),
            '1' => Some(Logic::One),
            'x' => Some(Logic::X),
            'z' | '?' => Some(Logic::Z),
            _ => None,
        }
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

/// Three-valued truth used when evaluating conditions (`if`, `&&`, `!`).
///
/// A vector is [`Truth::True`] when it has at least one definite `1` bit
/// (it is then a known non-zero value), [`Truth::False`] when every bit is a
/// definite `0`, and [`Truth::Unknown`] otherwise. Verilog conditional
/// statements treat `Unknown` as false.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Truth {
    /// Definitely non-zero.
    True,
    /// Definitely zero.
    False,
    /// Contains `x`/`z` and no definite `1` bit.
    Unknown,
}

impl Truth {
    /// Treats `Unknown` as false, as Verilog `if` does.
    #[inline]
    pub fn as_bool(self) -> bool {
        self == Truth::True
    }

    /// Three-valued AND.
    pub fn and(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::False, _) | (_, Truth::False) => Truth::False,
            (Truth::True, Truth::True) => Truth::True,
            _ => Truth::Unknown,
        }
    }

    /// Three-valued OR.
    pub fn or(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::True, _) | (_, Truth::True) => Truth::True,
            (Truth::False, Truth::False) => Truth::False,
            _ => Truth::Unknown,
        }
    }

    /// Three-valued NOT.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Truth {
        match self {
            Truth::True => Truth::False,
            Truth::False => Truth::True,
            Truth::Unknown => Truth::Unknown,
        }
    }

    /// Converts to a single [`Logic`] bit (`1`, `0` or `x`).
    pub fn to_logic(self) -> Logic {
        match self {
            Truth::True => Logic::One,
            Truth::False => Logic::Zero,
            Truth::Unknown => Logic::X,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_truth_table() {
        use Logic::*;
        assert_eq!(Zero.and(Zero), Zero);
        assert_eq!(Zero.and(One), Zero);
        assert_eq!(Zero.and(X), Zero);
        assert_eq!(Zero.and(Z), Zero);
        assert_eq!(One.and(One), One);
        assert_eq!(One.and(X), X);
        assert_eq!(One.and(Z), X);
        assert_eq!(X.and(X), X);
        assert_eq!(Z.and(Z), X);
    }

    #[test]
    fn or_truth_table() {
        use Logic::*;
        assert_eq!(One.or(Zero), One);
        assert_eq!(One.or(X), One);
        assert_eq!(One.or(Z), One);
        assert_eq!(Zero.or(Zero), Zero);
        assert_eq!(Zero.or(X), X);
        assert_eq!(X.or(Z), X);
    }

    #[test]
    fn xor_truth_table() {
        use Logic::*;
        assert_eq!(Zero.xor(One), One);
        assert_eq!(One.xor(One), Zero);
        assert_eq!(One.xor(X), X);
        assert_eq!(Z.xor(Zero), X);
        assert_eq!(One.xnor(One), One);
        assert_eq!(One.xnor(Zero), Zero);
        assert_eq!(One.xnor(Z), X);
    }

    #[test]
    fn not_truth_table() {
        use Logic::*;
        assert_eq!(Zero.not(), One);
        assert_eq!(One.not(), Zero);
        assert_eq!(X.not(), X);
        assert_eq!(Z.not(), X);
    }

    #[test]
    fn char_round_trip() {
        for l in Logic::ALL {
            assert_eq!(Logic::from_char(l.to_char()), Some(l));
        }
        assert_eq!(Logic::from_char('?'), Some(Logic::Z));
        assert_eq!(Logic::from_char('X'), Some(Logic::X));
        assert_eq!(Logic::from_char('7'), None);
    }

    #[test]
    fn truth_ops() {
        use Truth::*;
        assert_eq!(True.and(Unknown), Unknown);
        assert_eq!(False.and(Unknown), False);
        assert_eq!(True.or(Unknown), True);
        assert_eq!(False.or(Unknown), Unknown);
        assert_eq!(Unknown.not(), Unknown);
        assert!(!Unknown.as_bool());
        assert_eq!(Unknown.to_logic(), Logic::X);
    }

    #[test]
    fn and_or_are_commutative() {
        for a in Logic::ALL {
            for b in Logic::ALL {
                assert_eq!(a.and(b), b.and(a));
                assert_eq!(a.or(b), b.or(a));
                assert_eq!(a.xor(b), b.xor(a));
            }
        }
    }
}
