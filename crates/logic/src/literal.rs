//! Parsing of Verilog based literals (`4'b10x0`, `8'hff`, `16'd500`, …).

use std::fmt;

use crate::bit::Logic;
use crate::vec::LogicVec;

/// The base of a Verilog based literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LiteralBase {
    /// `'b`
    Binary,
    /// `'o`
    Octal,
    /// `'d`
    Decimal,
    /// `'h`
    Hex,
}

impl LiteralBase {
    /// Bits contributed per digit (decimal handled separately).
    fn bits_per_digit(self) -> usize {
        match self {
            LiteralBase::Binary => 1,
            LiteralBase::Octal => 3,
            LiteralBase::Decimal => 0,
            LiteralBase::Hex => 4,
        }
    }

    /// The base letter as written in source.
    pub fn to_char(self) -> char {
        match self {
            LiteralBase::Binary => 'b',
            LiteralBase::Octal => 'o',
            LiteralBase::Decimal => 'd',
            LiteralBase::Hex => 'h',
        }
    }

    /// Parses the base letter (case-insensitive).
    pub fn from_char(c: char) -> Option<LiteralBase> {
        match c.to_ascii_lowercase() {
            'b' => Some(LiteralBase::Binary),
            'o' => Some(LiteralBase::Octal),
            'd' => Some(LiteralBase::Decimal),
            'h' => Some(LiteralBase::Hex),
            _ => None,
        }
    }
}

impl fmt::Display for LiteralBase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

/// Error produced when a based literal is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLiteralError {
    message: String,
}

impl ParseLiteralError {
    fn new(message: impl Into<String>) -> ParseLiteralError {
        ParseLiteralError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseLiteralError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid verilog literal: {}", self.message)
    }
}

impl std::error::Error for ParseLiteralError {}

impl LogicVec {
    /// Parses the digit portion of a based literal into a value of `width`
    /// bits (or a self-determined width when `width` is `None`: at least 32
    /// bits, more if the digits need them — Verilog's unsized literal rule).
    ///
    /// Underscores are ignored. `x`/`z`/`?` digits are accepted in binary,
    /// octal and hex (each expands to a full digit's worth of bits), and as
    /// the *only* digit in decimal (`'dx`). When a sized literal is shorter
    /// than its width, it is extended with `0`, unless its leading digit is
    /// `x`/`z`, which extends with that value (IEEE 1364 §3.5.1).
    ///
    /// # Errors
    ///
    /// Returns an error for empty digit strings, digits invalid in the
    /// base, or mixed `x`/`z` decimal literals.
    ///
    /// # Examples
    ///
    /// ```
    /// use cirfix_logic::{LiteralBase, LogicVec};
    /// let v = LogicVec::parse_based(Some(4), LiteralBase::Binary, "1x0z")?;
    /// assert_eq!(v.to_string(), "4'b1x0z");
    /// let d = LogicVec::parse_based(Some(10), LiteralBase::Decimal, "500")?;
    /// assert_eq!(d.to_u64(), Some(500));
    /// # Ok::<(), cirfix_logic::ParseLiteralError>(())
    /// ```
    pub fn parse_based(
        width: Option<usize>,
        base: LiteralBase,
        digits: &str,
    ) -> Result<LogicVec, ParseLiteralError> {
        let cleaned: Vec<char> = digits.chars().filter(|c| *c != '_').collect();
        if cleaned.is_empty() {
            return Err(ParseLiteralError::new("empty digit string"));
        }
        if let Some(w) = width {
            if w == 0 {
                return Err(ParseLiteralError::new("zero width"));
            }
            if w > (1 << 16) {
                return Err(ParseLiteralError::new("literal width exceeds the limit"));
            }
        }

        let bits_msb_first: Vec<Logic> = match base {
            LiteralBase::Decimal => {
                if cleaned.len() == 1
                    && Logic::from_char(cleaned[0]).is_some_and(|l| l.is_unknown())
                {
                    let fill = Logic::from_char(cleaned[0]).expect("checked");
                    let w = width.unwrap_or(32);
                    return Ok(LogicVec::filled(w, fill));
                }
                let text: String = cleaned.iter().collect();
                let value: u128 = text
                    .parse()
                    .map_err(|_| ParseLiteralError::new(format!("bad decimal digits `{text}`")))?;
                let needed = (128 - value.leading_zeros() as usize).max(1);
                let w = width.unwrap_or(needed.max(32));
                return Ok(LogicVec::from_u128(value, w));
            }
            _ => {
                let per = base.bits_per_digit();
                let radix = 1u32 << per;
                let mut bits = Vec::with_capacity(cleaned.len() * per);
                for c in &cleaned {
                    if let Some(l) = Logic::from_char(*c) {
                        if l.is_unknown() {
                            for _ in 0..per {
                                bits.push(l);
                            }
                            continue;
                        }
                    }
                    let d = c.to_digit(radix).ok_or_else(|| {
                        ParseLiteralError::new(format!(
                            "digit `{c}` invalid in base {}",
                            base.to_char()
                        ))
                    })?;
                    for k in (0..per).rev() {
                        bits.push(Logic::from_bool((d >> k) & 1 == 1));
                    }
                }
                bits
            }
        };

        // Convert MSB-first digit expansion to an LSB-first vector.
        let lsb_first: Vec<Logic> = bits_msb_first.iter().rev().copied().collect();
        let natural = LogicVec::from_bits_lsb(lsb_first);
        let leading = bits_msb_first[0];
        let fill = if leading.is_unknown() {
            leading
        } else {
            Logic::Zero
        };
        let w = width.unwrap_or_else(|| natural.width().max(32));
        Ok(natural.resized_with(w, fill))
    }

    /// Formats in a given base; falls back to binary when the value has
    /// unknown bits that do not fill whole digits.
    pub fn to_based_string(&self, base: LiteralBase) -> String {
        match base {
            LiteralBase::Decimal => match self.to_u128() {
                Some(v) => format!("{}'d{}", self.width(), v),
                None => self.to_string(),
            },
            LiteralBase::Binary => self.to_string(),
            LiteralBase::Octal | LiteralBase::Hex => {
                let per = base.bits_per_digit();
                let mut digits = String::new();
                let mut i = 0;
                let mut ok = true;
                let mut out = Vec::new();
                while i < self.width() {
                    let hi = (i + per - 1).min(self.width() - 1);
                    let chunk = self.slice(hi, i);
                    if chunk.is_fully_known() {
                        let v = chunk.to_u64().expect("known chunk");
                        out.push(char::from_digit(v as u32, 16).expect("digit"));
                    } else if chunk.bits_lsb().iter().all(|b| *b == Logic::X) {
                        out.push('x');
                    } else if chunk.bits_lsb().iter().all(|b| *b == Logic::Z) {
                        out.push('z');
                    } else {
                        ok = false;
                        break;
                    }
                    i += per;
                }
                if !ok {
                    return self.to_string();
                }
                for c in out.iter().rev() {
                    digits.push(*c);
                }
                format!("{}'{}{}", self.width(), base.to_char(), digits)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_literals() {
        let v = LogicVec::parse_based(Some(4), LiteralBase::Binary, "1010").unwrap();
        assert_eq!(v.to_u64(), Some(0b1010));
        let v = LogicVec::parse_based(Some(4), LiteralBase::Binary, "1x0z").unwrap();
        assert_eq!(v.to_string(), "4'b1x0z");
    }

    #[test]
    fn hex_and_octal() {
        let v = LogicVec::parse_based(Some(8), LiteralBase::Hex, "fF").unwrap();
        assert_eq!(v.to_u64(), Some(0xff));
        let v = LogicVec::parse_based(Some(6), LiteralBase::Octal, "52").unwrap();
        assert_eq!(v.to_u64(), Some(0o52));
        let v = LogicVec::parse_based(Some(8), LiteralBase::Hex, "x").unwrap();
        assert_eq!(v.to_string(), "8'bxxxxxxxx"); // x-extended to width
    }

    #[test]
    fn decimal_literals() {
        let v = LogicVec::parse_based(Some(10), LiteralBase::Decimal, "500").unwrap();
        assert_eq!(v.to_u64(), Some(500));
        // Truncation when the width is too small — the reed_solomon
        // "insufficient register size" defect relies on this.
        let v = LogicVec::parse_based(Some(8), LiteralBase::Decimal, "500").unwrap();
        assert_eq!(v.to_u64(), Some(500 % 256));
        let v = LogicVec::parse_based(Some(4), LiteralBase::Decimal, "x").unwrap();
        assert_eq!(v.to_string(), "4'bxxxx");
    }

    #[test]
    fn unsized_literals_are_at_least_32_bits() {
        let v = LogicVec::parse_based(None, LiteralBase::Decimal, "7").unwrap();
        assert_eq!(v.width(), 32);
        assert_eq!(v.to_u64(), Some(7));
        let v = LogicVec::parse_based(None, LiteralBase::Hex, "1_0000_0000").unwrap();
        assert_eq!(v.width(), 36);
    }

    #[test]
    fn underscores_ignored() {
        let v = LogicVec::parse_based(Some(8), LiteralBase::Binary, "1010_0101").unwrap();
        assert_eq!(v.to_u64(), Some(0b1010_0101));
    }

    #[test]
    fn x_extension_rule() {
        // Leading x digit extends with x; leading known digit extends with 0.
        let v = LogicVec::parse_based(Some(8), LiteralBase::Binary, "x1").unwrap();
        assert_eq!(v.to_string(), "8'bxxxxxxx1");
        let v = LogicVec::parse_based(Some(8), LiteralBase::Binary, "11").unwrap();
        assert_eq!(v.to_u64(), Some(3));
        let v = LogicVec::parse_based(Some(8), LiteralBase::Binary, "z").unwrap();
        assert_eq!(v.to_string(), "8'bzzzzzzzz");
    }

    #[test]
    fn invalid_literals_error() {
        assert!(LogicVec::parse_based(Some(4), LiteralBase::Binary, "2").is_err());
        assert!(LogicVec::parse_based(Some(4), LiteralBase::Binary, "").is_err());
        assert!(LogicVec::parse_based(Some(4), LiteralBase::Decimal, "12x").is_err());
        assert!(LogicVec::parse_based(Some(0), LiteralBase::Binary, "1").is_err());
        assert!(LogicVec::parse_based(Some(4), LiteralBase::Hex, "g").is_err());
    }

    #[test]
    fn based_display_round_trips() {
        let v = LogicVec::from_u64(0xAB, 8);
        assert_eq!(v.to_based_string(LiteralBase::Hex), "8'hab");
        assert_eq!(v.to_based_string(LiteralBase::Decimal), "8'd171");
        assert_eq!(
            LogicVec::unknown(8).to_based_string(LiteralBase::Hex),
            "8'hxx"
        );
        // Mixed unknown chunks fall back to binary.
        let mut m = LogicVec::from_u64(0, 8);
        m.set_bit(0, Logic::X);
        assert!(m.to_based_string(LiteralBase::Hex).contains("'b"));
    }
}
