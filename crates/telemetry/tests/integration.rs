//! Cross-cutting telemetry tests: atomic counters under thread fan-out,
//! span nesting, observer sink swapping, and a golden-file check of the
//! summary report format.

use std::sync::{Arc, Mutex};
use std::thread;

use cirfix_telemetry::{
    CandidateEvent, Counter, Event, FanoutSink, FaultLocEvent, GenerationStats, HeartbeatEvent,
    HistogramEvent, JsonLinesSink, MetricsRegistry, NullSink, Observer, PhaseEvent, SimStats, Span,
    SpanEvent, SummarySink, TelemetrySink, TimingFreeSink,
};

/// A sink that stores every event for later inspection.
#[derive(Default)]
struct RecordingSink {
    events: Mutex<Vec<Event>>,
}

impl RecordingSink {
    fn names(&self) -> Vec<String> {
        self.events
            .lock()
            .unwrap()
            .iter()
            .map(|e| match e {
                Event::Span(s) => s.name.clone(),
                other => other.kind().to_string(),
            })
            .collect()
    }
}

impl TelemetrySink for RecordingSink {
    fn record(&self, event: &Event) {
        self.events.lock().unwrap().push(event.clone());
    }
}

#[test]
fn counters_are_exact_under_thread_fanout() {
    let registry = Arc::new(MetricsRegistry::new());
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;

    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let evals: Arc<Counter> = registry.counter("fitness_evals");
            thread::spawn(move || {
                for _ in 0..PER_THREAD {
                    evals.inc();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker panicked");
    }

    assert_eq!(
        registry.counter("fitness_evals").get(),
        THREADS as u64 * PER_THREAD,
        "no increments may be lost across threads"
    );
    assert_eq!(
        registry.counter_values(),
        vec![("fitness_evals".to_string(), THREADS as u64 * PER_THREAD)]
    );
}

#[test]
fn gauge_peak_tracking_is_monotone_across_threads() {
    let registry = Arc::new(MetricsRegistry::new());
    let handles: Vec<_> = (1..=16i64)
        .map(|v| {
            let peak = registry.gauge("queue_peak");
            thread::spawn(move || peak.max_with(v))
        })
        .collect();
    for h in handles {
        h.join().expect("worker panicked");
    }
    assert_eq!(registry.gauge("queue_peak").get(), 16);
}

#[test]
fn spans_nest_and_report_inner_first() {
    let sink = RecordingSink::default();
    {
        let _outer = Span::enter("outer", &sink);
        {
            let _inner = Span::enter("inner", &sink);
        }
        {
            let _inner2 = Span::enter("inner2", &sink);
        }
    }
    assert_eq!(sink.names(), vec!["inner", "inner2", "outer"]);
    // The outer span's duration covers both inner spans.
    let events = sink.events.lock().unwrap();
    let nanos_of = |name: &str| {
        events
            .iter()
            .find_map(|e| match e {
                Event::Span(s) if s.name == name => Some(s.nanos),
                _ => None,
            })
            .expect("span recorded")
    };
    assert!(nanos_of("outer") >= nanos_of("inner"));
}

#[test]
fn spans_against_a_disabled_sink_record_nothing() {
    // NullSink is disabled, so the drop path must not try to record.
    let _span = Span::enter("ignored", &NullSink);
    let fan = FanoutSink::new(vec![]);
    assert!(!fan.enabled(), "an empty fanout observes nothing");
    let _span = Span::enter("ignored", &fan);
}

#[test]
fn observer_sinks_can_be_swapped() {
    // A config's observer can move from "off" to a live sink; events
    // only reach sinks attached at emit time.
    let mut observer = Observer::none();
    assert!(!observer.enabled());
    let mut built = 0u32;
    observer.emit(|| {
        built += 1;
        Event::Generation(GenerationStats::default())
    });
    assert_eq!(built, 0, "disabled observers must not even build events");

    let recording = Arc::new(RecordingSink::default());
    observer = Observer::new(recording.clone());
    assert!(observer.enabled());
    observer.emit(|| {
        built += 1;
        Event::Generation(GenerationStats::default())
    });
    assert_eq!(built, 1);
    assert_eq!(recording.names(), vec!["generation"]);

    // Swapping back to none leaves the recorded history intact.
    observer = Observer::none();
    observer.emit(|| Event::Generation(GenerationStats::default()));
    assert_eq!(recording.names().len(), 1);
}

#[test]
fn fanout_duplicates_events_to_every_sink() {
    let a = Arc::new(RecordingSink::default());
    let b = Arc::new(RecordingSink::default());
    let fan = FanoutSink::new(vec![Box::new(a.clone()), Box::new(b.clone())]);
    fan.record(&Event::Sim(SimStats::default()));
    assert_eq!(a.names(), vec!["sim"]);
    assert_eq!(b.names(), vec!["sim"]);
}

#[test]
fn json_lines_sink_emits_one_parseable_line_per_event() {
    let sink = JsonLinesSink::new(Vec::new());
    sink.record(&Event::Candidate(CandidateEvent {
        patch_len: 2,
        growth_factor: 1.5,
        fitness: 0.75,
        cached: false,
        op: "template".to_string(),
    }));
    sink.record(&Event::Span(SpanEvent {
        name: "repair".to_string(),
        nanos: 1_000,
    }));
    let text = String::from_utf8(sink.into_inner()).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2);
    for line in lines {
        cirfix_telemetry::validate_json_line(line).expect("valid JSON");
    }
}

#[test]
fn timing_free_sink_scrubs_wall_clock_payloads() {
    let sink = TimingFreeSink::new(JsonLinesSink::new(Vec::new()));
    sink.record(&Event::Span(SpanEvent {
        name: "repair".to_string(),
        nanos: 123_456,
    }));
    sink.record(&Event::Phase(PhaseEvent {
        name: "simulate".to_string(),
        count: 4,
        nanos: 999_999,
    }));
    sink.record(&Event::Heartbeat(HeartbeatEvent {
        status: "search".to_string(),
        generation: 1,
        fitness_evals: 42,
        evals_per_s: 88.5,
        ..HeartbeatEvent::default()
    }));
    sink.record(&Event::Histogram(HistogramEvent {
        name: "eval_latency".to_string(),
        total: 3,
        buckets: vec![(10, 3)],
    }));
    let text = String::from_utf8(sink.into_inner().into_inner()).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    // The histogram is dropped outright; everything else survives with
    // its wall-clock payloads zeroed and its counts intact.
    assert_eq!(lines.len(), 3);
    assert!(lines[0].contains("\"nanos\":0") && !lines[0].contains("123"));
    assert!(lines[1].contains("\"count\":4") && lines[1].contains("\"nanos\":0"));
    assert!(lines[2].contains("\"fitness_evals\":42") && lines[2].contains("\"evals_per_s\":0.0"));
}

/// Feeds a fixed event sequence to a [`SummarySink`] and compares the
/// rendered report byte-for-byte against the checked-in golden file.
#[test]
fn summary_report_matches_golden_file() {
    let sink = SummarySink::new();
    for generation in 0..=3u64 {
        sink.record(&Event::Generation(GenerationStats {
            generation,
            best_fitness: 0.7 + 0.1 * generation as f64,
            median_fitness: 0.5,
            mean_fitness: 0.45,
            distinct_fitness: 5,
            elites: 2,
            template_children: 4,
            mutation_children: 8,
            crossover_children: 6,
        }));
    }
    for i in 0..10u64 {
        sink.record(&Event::Candidate(CandidateEvent {
            patch_len: i % 4,
            growth_factor: 1.0,
            fitness: 0.5,
            cached: i % 5 == 0,
            op: "mutation".to_string(),
        }));
    }
    sink.record(&Event::FaultLoc(FaultLocEvent {
        implicated_nodes: 7,
        mismatched_vars: 2,
        node_fraction: 0.25,
    }));
    sink.record(&Event::Sim(SimStats {
        active_events: 100,
        inactive_events: 20,
        nba_flushes: 30,
        timesteps: 40,
        process_resumptions: 50,
        peak_queue_depth: 6,
    }));
    sink.record(&Event::Span(SpanEvent {
        name: "repair".to_string(),
        nanos: 2_500_000,
    }));
    sink.record(&Event::Span(SpanEvent {
        name: "repair".to_string(),
        nanos: 1_500_000,
    }));

    let expected = include_str!("golden/summary.txt");
    assert_eq!(
        sink.report(),
        expected,
        "SummarySink output drifted from tests/golden/summary.txt"
    );
}
