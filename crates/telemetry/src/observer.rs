//! A cheap, cloneable handle carrying a shared sink through config
//! structs.

use std::sync::Arc;

use crate::event::Event;
use crate::sink::{NullSink, TelemetrySink};

/// A shared handle to a [`TelemetrySink`], designed to ride inside
/// config structs that derive `Clone`/`PartialEq`/`Debug`.
///
/// Equality is sink *identity* (two observers are equal when they share
/// the same sink allocation), which is what config comparison wants.
#[derive(Clone)]
pub struct Observer {
    sink: Arc<dyn TelemetrySink>,
}

impl Observer {
    /// An observer that records nothing (the default).
    pub fn none() -> Observer {
        Observer {
            sink: Arc::new(NullSink),
        }
    }

    /// Wraps a sink.
    pub fn new(sink: Arc<dyn TelemetrySink>) -> Observer {
        Observer { sink }
    }

    /// Whether events will be observed. Callers should gate event
    /// construction on this to keep the disabled path nearly free.
    pub fn enabled(&self) -> bool {
        self.sink.enabled()
    }

    /// Records one event.
    pub fn record(&self, event: &Event) {
        self.sink.record(event);
    }

    /// Builds and records an event only when enabled — the common
    /// hot-path form.
    pub fn emit(&self, make: impl FnOnce() -> Event) {
        if self.enabled() {
            self.sink.record(&make());
        }
    }

    /// Flushes the underlying sink.
    pub fn flush(&self) {
        self.sink.flush();
    }

    /// Borrows the sink for APIs that take `&dyn TelemetrySink`.
    pub fn sink(&self) -> &dyn TelemetrySink {
        self.sink.as_ref()
    }
}

impl Default for Observer {
    fn default() -> Observer {
        Observer::none()
    }
}

impl std::fmt::Debug for Observer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Observer")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl PartialEq for Observer {
    fn eq(&self, other: &Observer) -> bool {
        Arc::ptr_eq(&self.sink, &other.sink)
            // Two disabled observers are interchangeable, which keeps
            // `Config::default() == Config::default()` true.
            || (!self.enabled() && !other.enabled())
    }
}
