//! A hierarchical span profiler with per-phase busy attribution.
//!
//! The repair pipeline fans evaluations out over a worker pool, so a
//! single wall-clock timeline cannot say where time went: five workers
//! simulating for one second each is five seconds of *busy* simulate
//! time inside one second of wall time. The [`Profiler`] therefore
//! accumulates **exclusive busy nanoseconds** per [`Phase`] across all
//! threads: a [`PhaseGuard`] measures its own elapsed time, deducts the
//! time spent in nested guards (which attribute themselves to their own
//! phase), and adds the remainder to its phase's atomic total. Nesting
//! is tracked per thread, which matches how the worker pool runs one
//! evaluation per thread at a time.
//!
//! The profiler also keeps a log-bucketed latency histogram for whole
//! fitness evaluations: bucket `i` counts evaluations whose duration
//! `d` satisfies `2^i <= d < 2^(i+1)` nanoseconds. Log buckets keep the
//! histogram small (64 counters cover nanoseconds to centuries) while
//! still separating cache-warm microsecond evaluations from
//! pathological multi-second simulations.
//!
//! Everything is atomics; recording from worker threads never locks.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::event::{HistogramEvent, PhaseEvent};

/// The fixed pipeline phases the profiler attributes time to, in
/// pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Patch application and AST re-derivation.
    Parse,
    /// Design elaboration (module flattening, sensitivity wiring).
    Elaborate,
    /// Event-driven simulation of the instrumented testbench.
    Simulate,
    /// Fitness scoring against the oracle.
    Score,
    /// Persistent-store reads and write-throughs.
    Store,
}

impl Phase {
    /// All phases, in pipeline order.
    pub const ALL: [Phase; 5] = [
        Phase::Parse,
        Phase::Elaborate,
        Phase::Simulate,
        Phase::Score,
        Phase::Store,
    ];

    /// The phase's stable name, as written to traces.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::Elaborate => "elaborate",
            Phase::Simulate => "simulate",
            Phase::Score => "score",
            Phase::Store => "store",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Parse => 0,
            Phase::Elaborate => 1,
            Phase::Simulate => 2,
            Phase::Score => 3,
            Phase::Store => 4,
        }
    }
}

const PHASES: usize = Phase::ALL.len();
const HIST_BUCKETS: usize = 64;

thread_local! {
    // Nanoseconds consumed by completed child guards at each open
    // nesting level on this thread. Guards push a zero on entry; on
    // exit they deduct their own slot and add their full elapsed time
    // to the parent's slot.
    static CHILD_NANOS: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Lock-free accumulator for per-phase busy time and eval latency.
#[derive(Debug)]
pub struct Profiler {
    counts: [AtomicU64; PHASES],
    nanos: [AtomicU64; PHASES],
    eval_total: AtomicU64,
    eval_buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for Profiler {
    fn default() -> Profiler {
        Profiler {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            nanos: std::array::from_fn(|_| AtomicU64::new(0)),
            eval_total: AtomicU64::new(0),
            eval_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Profiler {
    /// Creates an empty profiler.
    pub fn new() -> Profiler {
        Profiler::default()
    }

    /// Starts a span attributed to `phase`; time is recorded when the
    /// returned guard drops. Guards nest: a parent's exclusive time
    /// excludes whatever its children recorded.
    pub fn span(&self, phase: Phase) -> PhaseGuard<'_> {
        CHILD_NANOS.with(|stack| stack.borrow_mut().push(0));
        PhaseGuard {
            profiler: self,
            phase,
            started: Instant::now(),
        }
    }

    /// Records `nanos` of already-measured exclusive time against
    /// `phase` (for callers that time externally, e.g. the simulator's
    /// own counters).
    pub fn record(&self, phase: Phase, nanos: u64) {
        let i = phase.index();
        self.counts[i].fetch_add(1, Ordering::Relaxed);
        self.nanos[i].fetch_add(nanos, Ordering::Relaxed);
    }

    /// Records one whole-evaluation latency sample into the log
    /// histogram.
    pub fn record_eval(&self, nanos: u64) {
        self.eval_total.fetch_add(1, Ordering::Relaxed);
        let bucket = if nanos == 0 {
            0
        } else {
            63 - nanos.leading_zeros() as usize
        };
        self.eval_buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Span count and exclusive busy nanoseconds for one phase.
    pub fn phase_totals(&self, phase: Phase) -> (u64, u64) {
        let i = phase.index();
        (
            self.counts[i].load(Ordering::Relaxed),
            self.nanos[i].load(Ordering::Relaxed),
        )
    }

    /// One [`PhaseEvent`] per phase that recorded at least one span, in
    /// pipeline order.
    pub fn phase_events(&self) -> Vec<PhaseEvent> {
        Phase::ALL
            .iter()
            .filter_map(|&phase| {
                let (count, nanos) = self.phase_totals(phase);
                (count > 0).then(|| PhaseEvent {
                    name: phase.as_str().to_string(),
                    count,
                    nanos,
                })
            })
            .collect()
    }

    /// The eval-latency histogram as an event, or `None` when no
    /// evaluation was recorded.
    pub fn eval_histogram(&self) -> Option<HistogramEvent> {
        let total = self.eval_total.load(Ordering::Relaxed);
        if total == 0 {
            return None;
        }
        let buckets = self
            .eval_buckets
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let count = c.load(Ordering::Relaxed);
                (count > 0).then_some((i as u32, count))
            })
            .collect();
        Some(HistogramEvent {
            name: "eval_latency".to_string(),
            total,
            buckets,
        })
    }
}

/// An open span; attributes its exclusive elapsed time to a phase when
/// dropped.
pub struct PhaseGuard<'a> {
    profiler: &'a Profiler,
    phase: Phase,
    started: Instant,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        let elapsed = self.started.elapsed().as_nanos() as u64;
        let child = CHILD_NANOS.with(|stack| {
            let mut stack = stack.borrow_mut();
            let child = stack.pop().unwrap_or(0);
            if let Some(parent) = stack.last_mut() {
                *parent += elapsed;
            }
            child
        });
        self.profiler
            .record(self.phase, elapsed.saturating_sub(child));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn nested_spans_attribute_exclusive_time() {
        let p = Profiler::new();
        {
            let _outer = p.span(Phase::Parse);
            std::thread::sleep(Duration::from_millis(4));
            {
                let _inner = p.span(Phase::Simulate);
                std::thread::sleep(Duration::from_millis(8));
            }
        }
        let (parse_count, parse_nanos) = p.phase_totals(Phase::Parse);
        let (sim_count, sim_nanos) = p.phase_totals(Phase::Simulate);
        assert_eq!(parse_count, 1);
        assert_eq!(sim_count, 1);
        // The inner 8 ms belongs to simulate, not parse.
        assert!(sim_nanos >= 7_000_000, "sim {sim_nanos}");
        assert!(
            parse_nanos < sim_nanos,
            "parse {parse_nanos} should exclude sim {sim_nanos}"
        );
    }

    #[test]
    fn sibling_spans_credit_their_parent_once_each() {
        let p = Profiler::new();
        {
            let _outer = p.span(Phase::Score);
            for _ in 0..3 {
                let _inner = p.span(Phase::Store);
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        let (store_count, store_nanos) = p.phase_totals(Phase::Store);
        let (_, score_nanos) = p.phase_totals(Phase::Score);
        assert_eq!(store_count, 3);
        assert!(store_nanos >= 5_000_000);
        assert!(score_nanos < store_nanos);
    }

    #[test]
    fn histogram_buckets_by_log2_nanos() {
        let p = Profiler::new();
        p.record_eval(0); // bucket 0
        p.record_eval(1); // bucket 0
        p.record_eval(1024); // bucket 10
        p.record_eval(1500); // bucket 10
        p.record_eval(2048); // bucket 11
        let h = p.eval_histogram().expect("samples recorded");
        assert_eq!(h.total, 5);
        assert_eq!(h.buckets, vec![(0, 2), (10, 2), (11, 1)]);
    }

    #[test]
    fn empty_profiler_reports_nothing() {
        let p = Profiler::new();
        assert!(p.phase_events().is_empty());
        assert!(p.eval_histogram().is_none());
    }

    #[test]
    fn phase_events_follow_pipeline_order() {
        let p = Profiler::new();
        p.record(Phase::Store, 5);
        p.record(Phase::Parse, 7);
        let names: Vec<String> = p.phase_events().into_iter().map(|e| e.name).collect();
        assert_eq!(names, ["parse", "store"]);
    }
}
