//! Spans, counters, and gauges.
//!
//! Counters and gauges live in a [`MetricsRegistry`] and update through
//! atomics, so a future parallel evaluation loop can increment them
//! from worker threads without locking. Spans time a scope and report
//! their duration to a sink on drop.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::event::{Event, SpanEvent};
use crate::sink::TelemetrySink;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if it is currently lower (peak tracking).
    pub fn max_with(&self, v: i64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A named registry of counters and gauges.
///
/// Handles are `Arc`s: a registered counter can be cloned out once and
/// incremented lock-free from any thread, while readers walk the
/// registry by name for reporting.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Returns the counter named `name`, creating it at zero on first
    /// use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("registry poisoned");
        map.entry(name.to_string()).or_default().clone()
    }

    /// Returns the gauge named `name`, creating it at zero on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("registry poisoned");
        map.entry(name.to_string()).or_default().clone()
    }

    /// Snapshot of all counters, sorted by name.
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        let map = self.counters.lock().expect("registry poisoned");
        map.iter().map(|(k, v)| (k.clone(), v.get())).collect()
    }

    /// Snapshot of all gauges, sorted by name.
    pub fn gauge_values(&self) -> Vec<(String, i64)> {
        let map = self.gauges.lock().expect("registry poisoned");
        map.iter().map(|(k, v)| (k.clone(), v.get())).collect()
    }
}

/// Times a scope and reports a [`SpanEvent`] to the sink when dropped.
///
/// ```
/// # use cirfix_telemetry::{Span, NullSink};
/// let sink = NullSink;
/// {
///     let _span = Span::enter("parse", &sink);
///     // ... timed work ...
/// } // emits Event::Span { name: "parse", .. } on drop
/// ```
pub struct Span<'a> {
    name: &'a str,
    started: Instant,
    sink: &'a dyn TelemetrySink,
}

impl<'a> Span<'a> {
    /// Starts timing `name` against `sink`.
    pub fn enter(name: &'a str, sink: &'a dyn TelemetrySink) -> Span<'a> {
        Span {
            name,
            started: Instant::now(),
            sink,
        }
    }

    /// Elapsed time so far, in nanoseconds.
    pub fn elapsed_nanos(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if self.sink.enabled() {
            self.sink.record(&Event::Span(SpanEvent {
                name: self.name.to_string(),
                nanos: self.elapsed_nanos(),
            }));
        }
    }
}
