//! The typed event model: one variant per pipeline stage worth
//! observing, mapped to the paper's Algorithm 1 / §3.2 structure.

use crate::json::JsonValue;

/// Per-generation population statistics (Algorithm 1's outer loop).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GenerationStats {
    /// Generation index; 0 is the seed population.
    pub generation: u64,
    /// Best fitness in the population after evaluation.
    pub best_fitness: f64,
    /// Median fitness of the population.
    pub median_fitness: f64,
    /// Mean fitness of the population.
    pub mean_fitness: f64,
    /// Number of distinct fitness values — a diversity proxy.
    pub distinct_fitness: u64,
    /// Individuals carried over by elitism.
    pub elites: u64,
    /// Children produced by a repair template this generation.
    pub template_children: u64,
    /// Children produced by a random mutation this generation.
    pub mutation_children: u64,
    /// Children produced by crossover this generation.
    pub crossover_children: u64,
}

/// One candidate patch evaluation (Algorithm 1's `fitness` call).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CandidateEvent {
    /// Number of edits in the candidate patch.
    pub patch_len: u64,
    /// Variant AST size relative to the original (1.0 = unchanged).
    pub growth_factor: f64,
    /// The fitness score in [0, 1].
    pub fitness: f64,
    /// Whether the score came from the evaluation cache rather than a
    /// fresh simulation.
    pub cached: bool,
    /// The operator that proposed the candidate: `"original"`,
    /// `"template"`, `"mutation"`, `"crossover"`, `"minimize"`, or
    /// `""` when unknown.
    pub op: String,
}

/// One fault-localization pass (Algorithm 2).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultLocEvent {
    /// Number of implicated AST nodes.
    pub implicated_nodes: u64,
    /// Number of mismatched output variables that seeded the pass.
    pub mismatched_vars: u64,
    /// Implicated nodes as a fraction of the design's nodes, in [0, 1].
    pub node_fraction: f64,
}

/// Simulator effort counters for one run (the stratified event queue of
/// §3.2's instrumented testbench evaluation).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SimStats {
    /// Events processed from the active region.
    pub active_events: u64,
    /// Events promoted from the inactive region.
    pub inactive_events: u64,
    /// Non-blocking assignments flushed from the NBA region.
    pub nba_flushes: u64,
    /// Simulation timesteps advanced.
    pub timesteps: u64,
    /// Behavioral process resumptions.
    pub process_resumptions: u64,
    /// Largest queue depth observed across all regions.
    pub peak_queue_depth: u64,
}

/// One static-analysis diagnostic (a lint finding, or a mutant rejected
/// by the repair loop's static filter before simulation).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LintEvent {
    /// Module the diagnostic is anchored in.
    pub module: String,
    /// Stable diagnostic code, e.g. `"multiple-drivers"`.
    pub code: String,
    /// `"error"` or `"warning"`.
    pub severity: String,
    /// AST node id the diagnostic points at.
    pub node_id: u64,
    /// Human-readable explanation.
    pub message: String,
}

/// One persistent-store operation (PR 4's `cirfix-store`): cache hits
/// and write-throughs, session checkpoints and resumes, and detected
/// damage.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StoreEvent {
    /// What happened: `"hit"` (evaluation answered from the persistent
    /// cache), `"write"` (evaluation persisted), `"checkpoint"`
    /// (session state saved at a generation boundary), `"resume"`
    /// (session state restored), or `"damage"` (corrupt or torn
    /// records detected and skipped).
    pub op: String,
    /// Content digest of the record involved (empty when the operation
    /// is not about one record).
    pub key: String,
    /// Records involved: 1 for hit/write, the restored generation for
    /// resume, population size for checkpoint, damaged-record count for
    /// damage.
    pub records: u64,
}

/// The classified conclusion of one fresh candidate evaluation — the
/// fault-containment taxonomy (clean run, simulator guard trip,
/// per-candidate budget expiry, contained panic, resource cap, static
/// rejection).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EvalOutcomeEvent {
    /// Stable outcome name: `"ok"`, `"elaboration"`, `"oscillation"`,
    /// `"runaway"`, `"step_limit"`, `"runtime"`, `"timeout"`,
    /// `"panicked"`, `"resource_exhausted"`, or `"rejected"`.
    pub kind: String,
    /// The evaluation's error text (empty for `"ok"`).
    pub error: String,
}

/// A closed span: a named phase and its wall-clock duration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpanEvent {
    /// Phase name, e.g. `"repair"` or `"minimize"`.
    pub name: String,
    /// Elapsed wall-clock time in nanoseconds.
    pub nanos: u64,
}

/// Aggregated busy time attributed to one pipeline phase by the
/// [`Profiler`](crate::Profiler): exclusive time (child spans deducted)
/// summed across all worker threads.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PhaseEvent {
    /// Phase name: `"parse"`, `"elaborate"`, `"simulate"`, `"score"`,
    /// or `"store"`.
    pub name: String,
    /// How many spans closed against this phase.
    pub count: u64,
    /// Total exclusive busy nanoseconds across all threads.
    pub nanos: u64,
}

/// A periodic snapshot of search progress, emitted at generation
/// boundaries (a deterministic cadence) and once more when the run
/// ends.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HeartbeatEvent {
    /// `"search"` while the run is live, `"done"` or `"interrupted"`
    /// for the final snapshot.
    pub status: String,
    /// Last completed generation.
    pub generation: u64,
    /// Best fitness seen so far.
    pub best_fitness: f64,
    /// Fresh fitness evaluations so far.
    pub fitness_evals: u64,
    /// In-memory cache hits so far.
    pub cache_hits: u64,
    /// Persistent-store cache hits so far.
    pub store_hits: u64,
    /// Mutants rejected by the static filter before simulation.
    pub rejected_static: u64,
    /// Evaluations that expired their per-candidate budget.
    pub timeouts: u64,
    /// Evaluations that panicked and were contained.
    pub panics: u64,
    /// Evaluations stopped by a simulator resource guard.
    pub exhausted: u64,
    /// Fresh-evaluation throughput since the run started (0 in
    /// timing-free traces).
    pub evals_per_s: f64,
}

/// A log-bucketed latency histogram: bucket `i` counts samples whose
/// duration in nanoseconds satisfies `2^i <= nanos < 2^(i+1)`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HistogramEvent {
    /// What was measured, e.g. `"eval_latency"`.
    pub name: String,
    /// Total number of samples.
    pub total: u64,
    /// Non-empty buckets as `(bucket index, count)` pairs, ascending.
    pub buckets: Vec<(u32, u64)>,
}

/// One fix-pattern mining operation or pattern usage in the search.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MineEvent {
    /// What happened: `"mined"` (patterns written), `"loaded"`
    /// (patterns fed into a repair run), or `"pattern_hit"` (a mined
    /// template produced the candidate being reported).
    pub op: String,
    /// Shape digest of the pattern involved (empty for aggregates).
    pub pattern: String,
    /// The pattern's corpus support (0 for aggregates).
    pub support: u64,
    /// Operation-specific count: patterns written/loaded, or 1 per hit.
    pub count: u64,
}

/// Any telemetry event the pipeline can emit.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Per-generation population statistics.
    Generation(GenerationStats),
    /// One candidate evaluation.
    Candidate(CandidateEvent),
    /// One fault-localization pass.
    FaultLoc(FaultLocEvent),
    /// One simulation run's effort counters.
    Sim(SimStats),
    /// One static-analysis diagnostic.
    Lint(LintEvent),
    /// One persistent-store operation.
    Store(StoreEvent),
    /// The classified conclusion of one fresh candidate evaluation.
    EvalOutcome(EvalOutcomeEvent),
    /// A completed timing span.
    Span(SpanEvent),
    /// Aggregated per-phase busy time from the profiler.
    Phase(PhaseEvent),
    /// A periodic search-progress snapshot.
    Heartbeat(HeartbeatEvent),
    /// A log-bucketed latency histogram.
    Histogram(HistogramEvent),
    /// A fix-pattern mining operation or mined-pattern usage.
    Mine(MineEvent),
}

impl Event {
    /// The event's type tag, as written to the JSON stream.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::Generation(_) => "generation",
            Event::Candidate(_) => "candidate",
            Event::FaultLoc(_) => "fault_loc",
            Event::Sim(_) => "sim",
            Event::Lint(_) => "lint",
            Event::Store(_) => "store",
            Event::EvalOutcome(_) => "eval_outcome",
            Event::Span(_) => "span",
            Event::Phase(_) => "phase",
            Event::Heartbeat(_) => "heartbeat",
            Event::Histogram(_) => "histogram",
            Event::Mine(_) => "mine",
        }
    }

    /// Serializes the event as a single-line JSON object with a
    /// `"type"` tag followed by the variant's fields.
    pub fn to_json(&self) -> String {
        self.to_json_tagged(&[])
    }

    /// [`Event::to_json`] with extra string fields appended after the
    /// variant's own — used by the daemon to scope events to a job
    /// (`{"type":"heartbeat",...,"job":"4f09a1d2e6b3"}`) in an
    /// aggregate trace shared by every session. Tag keys must not
    /// collide with event fields; callers pick reserved names.
    pub fn to_json_tagged(&self, tags: &[(&str, &str)]) -> String {
        let mut pairs = vec![("type", JsonValue::Str(self.kind().into()))];
        match self {
            Event::Generation(g) => {
                pairs.push(("generation", JsonValue::Uint(g.generation)));
                pairs.push(("best_fitness", JsonValue::Float(g.best_fitness)));
                pairs.push(("median_fitness", JsonValue::Float(g.median_fitness)));
                pairs.push(("mean_fitness", JsonValue::Float(g.mean_fitness)));
                pairs.push(("distinct_fitness", JsonValue::Uint(g.distinct_fitness)));
                pairs.push(("elites", JsonValue::Uint(g.elites)));
                pairs.push(("template_children", JsonValue::Uint(g.template_children)));
                pairs.push(("mutation_children", JsonValue::Uint(g.mutation_children)));
                pairs.push(("crossover_children", JsonValue::Uint(g.crossover_children)));
            }
            Event::Candidate(c) => {
                pairs.push(("patch_len", JsonValue::Uint(c.patch_len)));
                pairs.push(("growth_factor", JsonValue::Float(c.growth_factor)));
                pairs.push(("fitness", JsonValue::Float(c.fitness)));
                pairs.push(("cached", JsonValue::Bool(c.cached)));
                pairs.push(("op", JsonValue::Str(c.op.clone())));
            }
            Event::FaultLoc(f) => {
                pairs.push(("implicated_nodes", JsonValue::Uint(f.implicated_nodes)));
                pairs.push(("mismatched_vars", JsonValue::Uint(f.mismatched_vars)));
                pairs.push(("node_fraction", JsonValue::Float(f.node_fraction)));
            }
            Event::Sim(s) => {
                pairs.push(("active_events", JsonValue::Uint(s.active_events)));
                pairs.push(("inactive_events", JsonValue::Uint(s.inactive_events)));
                pairs.push(("nba_flushes", JsonValue::Uint(s.nba_flushes)));
                pairs.push(("timesteps", JsonValue::Uint(s.timesteps)));
                pairs.push((
                    "process_resumptions",
                    JsonValue::Uint(s.process_resumptions),
                ));
                pairs.push(("peak_queue_depth", JsonValue::Uint(s.peak_queue_depth)));
            }
            Event::Lint(l) => {
                pairs.push(("module", JsonValue::Str(l.module.clone())));
                pairs.push(("code", JsonValue::Str(l.code.clone())));
                pairs.push(("severity", JsonValue::Str(l.severity.clone())));
                pairs.push(("node_id", JsonValue::Uint(l.node_id)));
                pairs.push(("message", JsonValue::Str(l.message.clone())));
            }
            Event::Store(st) => {
                pairs.push(("op", JsonValue::Str(st.op.clone())));
                pairs.push(("key", JsonValue::Str(st.key.clone())));
                pairs.push(("records", JsonValue::Uint(st.records)));
            }
            Event::EvalOutcome(o) => {
                pairs.push(("kind", JsonValue::Str(o.kind.clone())));
                pairs.push(("error", JsonValue::Str(o.error.clone())));
            }
            Event::Span(sp) => {
                pairs.push(("name", JsonValue::Str(sp.name.clone())));
                pairs.push(("nanos", JsonValue::Uint(sp.nanos)));
            }
            Event::Phase(p) => {
                pairs.push(("name", JsonValue::Str(p.name.clone())));
                pairs.push(("count", JsonValue::Uint(p.count)));
                pairs.push(("nanos", JsonValue::Uint(p.nanos)));
            }
            Event::Heartbeat(h) => {
                pairs.push(("status", JsonValue::Str(h.status.clone())));
                pairs.push(("generation", JsonValue::Uint(h.generation)));
                pairs.push(("best_fitness", JsonValue::Float(h.best_fitness)));
                pairs.push(("fitness_evals", JsonValue::Uint(h.fitness_evals)));
                pairs.push(("cache_hits", JsonValue::Uint(h.cache_hits)));
                pairs.push(("store_hits", JsonValue::Uint(h.store_hits)));
                pairs.push(("rejected_static", JsonValue::Uint(h.rejected_static)));
                pairs.push(("timeouts", JsonValue::Uint(h.timeouts)));
                pairs.push(("panics", JsonValue::Uint(h.panics)));
                pairs.push(("exhausted", JsonValue::Uint(h.exhausted)));
                pairs.push(("evals_per_s", JsonValue::Float(h.evals_per_s)));
            }
            Event::Histogram(h) => {
                pairs.push(("name", JsonValue::Str(h.name.clone())));
                pairs.push(("total", JsonValue::Uint(h.total)));
                pairs.push((
                    "buckets",
                    JsonValue::Array(
                        h.buckets
                            .iter()
                            .map(|&(bucket, count)| {
                                JsonValue::Array(vec![
                                    JsonValue::Uint(u64::from(bucket)),
                                    JsonValue::Uint(count),
                                ])
                            })
                            .collect(),
                    ),
                ));
            }
            Event::Mine(m) => {
                pairs.push(("op", JsonValue::Str(m.op.clone())));
                pairs.push(("pattern", JsonValue::Str(m.pattern.clone())));
                pairs.push(("support", JsonValue::Uint(m.support)));
                pairs.push(("count", JsonValue::Uint(m.count)));
            }
        }
        for &(key, value) in tags {
            pairs.push((key, JsonValue::Str(value.into())));
        }
        JsonValue::obj(pairs).to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_json_line;

    #[test]
    fn every_variant_serializes_to_valid_json() {
        let events = [
            Event::Generation(GenerationStats {
                generation: 3,
                best_fitness: 0.99,
                ..GenerationStats::default()
            }),
            Event::Candidate(CandidateEvent {
                patch_len: 2,
                growth_factor: 1.5,
                fitness: 0.75,
                cached: true,
                op: "mutation".into(),
            }),
            Event::FaultLoc(FaultLocEvent::default()),
            Event::Sim(SimStats::default()),
            Event::Lint(LintEvent {
                module: "cnt".into(),
                code: "multiple-drivers".into(),
                severity: "error".into(),
                node_id: 42,
                message: "`q` is driven from 2 places".into(),
            }),
            Event::Store(StoreEvent {
                op: "hit".into(),
                key: "6c62272e07bb014262b821756295c58d".into(),
                records: 1,
            }),
            Event::EvalOutcome(EvalOutcomeEvent {
                kind: "timeout".into(),
                error: "evaluation exceeded its wall-clock budget".into(),
            }),
            Event::Span(SpanEvent {
                name: "repair \"quoted\"".into(),
                nanos: 12345,
            }),
            Event::Phase(PhaseEvent {
                name: "simulate".into(),
                count: 40,
                nanos: 7_000_000,
            }),
            Event::Heartbeat(HeartbeatEvent {
                status: "search".into(),
                generation: 2,
                best_fitness: 0.875,
                fitness_evals: 123,
                cache_hits: 9,
                evals_per_s: 4200.5,
                ..HeartbeatEvent::default()
            }),
            Event::Histogram(HistogramEvent {
                name: "eval_latency".into(),
                total: 5,
                buckets: vec![(14, 3), (17, 2)],
            }),
            Event::Mine(MineEvent {
                op: "pattern_hit".into(),
                pattern: "6c62272e07bb014262b821756295c58d".into(),
                support: 3,
                count: 1,
            }),
        ];
        for e in &events {
            let line = e.to_json();
            validate_json_line(&line).expect("valid JSON");
            assert!(line.contains(&format!("\"type\":\"{}\"", e.kind())));
        }
    }
}
