#![warn(missing_docs)]

//! Zero-dependency observability for the repair pipeline.
//!
//! The crate provides three layers:
//!
//! * **Primitives** — [`Span`] wall-clock timers and atomic
//!   [`Counter`]/[`Gauge`] registries ([`MetricsRegistry`]), safe to
//!   bump from multiple threads.
//! * **Typed events** — [`Event`] and its payloads
//!   ([`GenerationStats`], [`CandidateEvent`], [`FaultLocEvent`],
//!   [`SimStats`], [`SpanEvent`], [`PhaseEvent`], [`HeartbeatEvent`],
//!   [`HistogramEvent`]) describing what each pipeline stage did, in
//!   terms that map to the paper's Algorithm 1 / §3.2.
//! * **Profiler** — the [`Profiler`] attributes exclusive busy time to
//!   the fixed pipeline [`Phase`]s (parse / elaborate / simulate /
//!   score / store) across worker threads with nestable guards, and
//!   log-buckets whole-evaluation latencies.
//! * **Sinks** — the [`TelemetrySink`] trait and its implementations:
//!   [`NullSink`] (default, near-zero overhead), [`JsonLinesSink`]
//!   (machine-readable event stream), [`SummarySink`] (human-readable
//!   end-of-run report), [`TimingFreeSink`] (scrubs wall-clock payloads
//!   so traces are byte-identical across `--jobs`), and [`FanoutSink`]
//!   (several at once).
//!
//! Producers hold an [`Observer`] — a cloneable `Arc` handle that fits
//! inside config structs — and call [`Observer::emit`] with a closure
//! so that event construction is skipped entirely when nothing is
//! listening.

mod event;
mod json;
mod metrics;
mod observer;
mod profiler;
mod sink;

pub use event::{
    CandidateEvent, EvalOutcomeEvent, Event, FaultLocEvent, GenerationStats, HeartbeatEvent,
    HistogramEvent, LintEvent, MineEvent, PhaseEvent, SimStats, SpanEvent, StoreEvent,
};
pub use json::{validate_json_line, JsonValue};
pub use metrics::{Counter, Gauge, MetricsRegistry, Span};
pub use observer::Observer;
pub use profiler::{Phase, PhaseGuard, Profiler};
pub use sink::{
    FanoutSink, JsonLinesSink, NullSink, SummarySink, TaggedJsonLinesSink, TelemetrySink,
    TimingFreeSink,
};
