//! A minimal JSON writer and line validator.
//!
//! The build environment has no crates.io access, so serde is
//! unavailable; events carry only strings, integers, floats, and bools,
//! which this module serializes by hand. The validator exists so tests
//! (and downstream consumers) can check that an emitted trace parses
//! line-by-line without a full JSON library.

use std::fmt::Write as _;

/// An owned JSON value under construction.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any integer (serialized without an exponent).
    Int(i64),
    /// Unsigned integer wide enough for counters.
    Uint(u64),
    /// A float. Non-finite values serialize as the strings `"NaN"`,
    /// `"Infinity"`, and `"-Infinity"` (JSON numbers cannot express
    /// them), which readers map back losslessly.
    Float(f64),
    /// A string, escaped on write.
    Str(String),
    /// An ordered list of key/value pairs (objects keep insertion order).
    Object(Vec<(String, JsonValue)>),
    /// An array of values.
    Array(Vec<JsonValue>),
}

impl JsonValue {
    /// Convenience constructor for objects.
    pub fn obj(pairs: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serializes to a compact single-line JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => {
                let _ = write!(out, "{i}");
            }
            JsonValue::Uint(u) => {
                let _ = write!(out, "{u}");
            }
            JsonValue::Float(f) => {
                if f.is_finite() {
                    // `{f:?}` keeps a decimal point or exponent, so the
                    // output re-parses as a float rather than an int.
                    let _ = write!(out, "{f:?}");
                } else if f.is_nan() {
                    out.push_str("\"NaN\"");
                } else if *f > 0.0 {
                    out.push_str("\"Infinity\"");
                } else {
                    out.push_str("\"-Infinity\"");
                }
            }
            JsonValue::Str(s) => write_escaped(s, out),
            JsonValue::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
            JsonValue::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Checks that `line` is one complete, well-formed JSON value.
///
/// This is a structural validator, not a parser: it verifies tokens,
/// nesting, and separators, which is what the trace-format tests need.
pub fn validate_json_line(line: &str) -> Result<(), String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(format!("expected '{word}' at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                other => return Err(format!("unexpected {other:?} in object")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                other => return Err(format!("unexpected {other:?} in array")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        while let Some(b) = self.peek() {
            self.pos += 1;
            match b {
                b'"' => return Ok(()),
                b'\\' => match self.peek() {
                    Some(b'u') => {
                        self.pos += 1;
                        for _ in 0..4 {
                            match self.peek() {
                                Some(c) if c.is_ascii_hexdigit() => self.pos += 1,
                                _ => return Err("bad \\u escape".into()),
                            }
                        }
                    }
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                        self.pos += 1;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                _ => {}
            }
        }
        Err("unterminated string".into())
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(format!("expected digits at byte {}", self.pos));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err("expected fraction digits".into());
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err("expected exponent digits".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_escaped_strings() {
        let v = JsonValue::Str("a\"b\\c\nd".into());
        assert_eq!(v.to_json(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn writes_nested_objects() {
        let v = JsonValue::obj(vec![
            ("k", JsonValue::Uint(3)),
            ("f", JsonValue::Float(0.5)),
            (
                "a",
                JsonValue::Array(vec![JsonValue::Int(-1), JsonValue::Bool(true)]),
            ),
        ]);
        assert_eq!(v.to_json(), r#"{"k":3,"f":0.5,"a":[-1,true]}"#);
    }

    #[test]
    fn non_finite_floats_become_tagged_strings() {
        assert_eq!(JsonValue::Float(f64::NAN).to_json(), "\"NaN\"");
        assert_eq!(JsonValue::Float(f64::INFINITY).to_json(), "\"Infinity\"");
        assert_eq!(
            JsonValue::Float(f64::NEG_INFINITY).to_json(),
            "\"-Infinity\""
        );
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            validate_json_line(&JsonValue::Float(v).to_json()).expect("valid");
        }
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(JsonValue::Float(1.0).to_json(), "1.0");
    }

    #[test]
    fn validator_accepts_writer_output() {
        let v = JsonValue::obj(vec![
            ("s", JsonValue::Str("x\t\"y\"".into())),
            ("n", JsonValue::Float(6.02e23)),
            (
                "nested",
                JsonValue::obj(vec![("empty", JsonValue::Array(vec![]))]),
            ),
        ]);
        validate_json_line(&v.to_json()).expect("valid");
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        for bad in [
            "{",
            "{\"a\":}",
            "[1,]",
            "\"unterminated",
            "{\"a\":1} extra",
            "01e",
            "1.",
        ] {
            assert!(validate_json_line(bad).is_err(), "{bad}");
        }
    }
}
