//! Event sinks: where telemetry goes.
//!
//! [`NullSink`] drops everything (the default; near-zero overhead
//! because producers check [`TelemetrySink::enabled`] before even
//! building events). [`JsonLinesSink`] appends one JSON object per
//! event to a writer for machine consumption. [`SummarySink`]
//! accumulates aggregates and renders a human-readable end-of-run
//! report.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::event::Event;

/// A destination for telemetry events.
///
/// Object-safe and `Send + Sync`, so one sink can be shared (behind an
/// `Arc`) across the repair loop and, later, parallel evaluators.
pub trait TelemetrySink: Send + Sync {
    /// Records one event.
    fn record(&self, event: &Event);

    /// Whether events will be observed at all. Producers should skip
    /// event construction when this is `false`; the default is `true`.
    fn enabled(&self) -> bool {
        true
    }

    /// Flushes any buffered output. The default is a no-op.
    fn flush(&self) {}
}

/// Shared sinks forward through the `Arc`, so a caller can keep a
/// handle (e.g. to render a [`SummarySink`] report after the run) while
/// the same sink participates in a [`FanoutSink`].
impl<T: TelemetrySink + ?Sized> TelemetrySink for Arc<T> {
    fn record(&self, event: &Event) {
        (**self).record(event);
    }

    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    fn flush(&self) {
        (**self).flush();
    }
}

/// The default sink: ignores everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    fn record(&self, _event: &Event) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// Writes one JSON object per line to an arbitrary writer.
pub struct JsonLinesSink<W: Write + Send> {
    writer: Mutex<W>,
}

impl JsonLinesSink<BufWriter<File>> {
    /// Opens (truncating) `path` for a buffered JSON-lines stream.
    pub fn create(path: &Path) -> std::io::Result<JsonLinesSink<BufWriter<File>>> {
        Ok(JsonLinesSink::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write + Send> JsonLinesSink<W> {
    /// Wraps an existing writer.
    pub fn new(writer: W) -> JsonLinesSink<W> {
        JsonLinesSink {
            writer: Mutex::new(writer),
        }
    }

    /// Consumes the sink and returns the inner writer (flushing is the
    /// caller's job for raw writers; buffered writers flush on drop).
    pub fn into_inner(self) -> W {
        self.writer.into_inner().expect("sink poisoned")
    }
}

impl<W: Write + Send> TelemetrySink for JsonLinesSink<W> {
    fn record(&self, event: &Event) {
        let mut w = self.writer.lock().expect("sink poisoned");
        // Telemetry must never take down a repair run; drop on error.
        let _ = writeln!(w, "{}", event.to_json());
    }

    fn flush(&self) {
        let _ = self.writer.lock().expect("sink poisoned").flush();
    }
}

/// A [`JsonLinesSink`] over a *shared* writer that scopes every event
/// with a constant string field, e.g. `"job": "<id>"`. The `cirfix
/// serve` daemon gives each session its own tag over one aggregate
/// trace file, so interleaved events from concurrent jobs stay
/// attributable. Per-job traces stay untagged (and therefore
/// byte-identical to a batch run's); only the shared stream is tagged.
pub struct TaggedJsonLinesSink<W: Write + Send> {
    key: String,
    value: String,
    writer: Arc<Mutex<W>>,
}

impl<W: Write + Send> TaggedJsonLinesSink<W> {
    /// Tags every event with `key: value` and appends it to the shared
    /// `writer`. Clones of the `Arc` may back other tags or sinks; each
    /// line is written atomically under the lock.
    pub fn new(key: &str, value: &str, writer: Arc<Mutex<W>>) -> TaggedJsonLinesSink<W> {
        TaggedJsonLinesSink {
            key: key.to_string(),
            value: value.to_string(),
            writer,
        }
    }
}

impl<W: Write + Send> TelemetrySink for TaggedJsonLinesSink<W> {
    fn record(&self, event: &Event) {
        let line = event.to_json_tagged(&[(&self.key, &self.value)]);
        let mut w = self.writer.lock().expect("sink poisoned");
        // Telemetry must never take down a repair run; drop on error.
        let _ = writeln!(w, "{line}");
    }

    fn flush(&self) {
        let _ = self.writer.lock().expect("sink poisoned").flush();
    }
}

/// Running aggregates for the summary report.
#[derive(Debug, Default, Clone)]
struct SummaryState {
    generations: u64,
    last_best: f64,
    candidates: u64,
    cached: u64,
    fitness_sum: f64,
    max_patch_len: u64,
    fault_loc_passes: u64,
    implicated_last: u64,
    sim_runs: u64,
    sim_events: u64,
    sim_timesteps: u64,
    nba_flushes: u64,
    peak_queue_depth: u64,
    lint_errors: u64,
    lint_warnings: u64,
    store_hits: u64,
    store_writes: u64,
    store_checkpoints: u64,
    store_resumes: u64,
    store_damage: u64,
    store_degraded: u64,
    outcomes: Vec<(String, u64)>, // outcome kind, count (first-seen order)
    spans: Vec<(String, u64, u64)>, // name, count, total nanos
    phases: Vec<(String, u64, u64)>, // name, count, total nanos
    heartbeats: u64,
    eval_samples: u64, // eval-latency histogram totals
    pattern_hits: u64, // mined-template candidates proposed
}

/// Accumulates events and renders a human-readable end-of-run report.
#[derive(Debug, Default)]
pub struct SummarySink {
    state: Mutex<SummaryState>,
}

impl SummarySink {
    /// Creates an empty summary.
    pub fn new() -> SummarySink {
        SummarySink::default()
    }

    /// Renders the report from everything recorded so far.
    pub fn report(&self) -> String {
        let s = self.state.lock().expect("sink poisoned").clone();
        let mut out = String::new();
        let _ = writeln!(out, "=== telemetry summary ===");
        let _ = writeln!(out, "search:");
        let _ = writeln!(out, "  generations          {:>12}", s.generations);
        let _ = writeln!(out, "  best fitness         {:>12.4}", s.last_best);
        let _ = writeln!(out, "  candidates evaluated {:>12}", s.candidates);
        let cache_pct = if s.candidates > 0 {
            100.0 * s.cached as f64 / s.candidates as f64
        } else {
            0.0
        };
        let _ = writeln!(out, "  cache hit rate       {:>11.1}%", cache_pct);
        let mean = if s.candidates > 0 {
            s.fitness_sum / s.candidates as f64
        } else {
            0.0
        };
        let _ = writeln!(out, "  mean cand. fitness   {:>12.4}", mean);
        let _ = writeln!(out, "  max patch length     {:>12}", s.max_patch_len);
        let _ = writeln!(out, "fault localization:");
        let _ = writeln!(out, "  passes               {:>12}", s.fault_loc_passes);
        let _ = writeln!(out, "  implicated (last)    {:>12}", s.implicated_last);
        let _ = writeln!(out, "simulation:");
        let _ = writeln!(out, "  runs                 {:>12}", s.sim_runs);
        let _ = writeln!(out, "  events processed     {:>12}", s.sim_events);
        let _ = writeln!(out, "  timesteps            {:>12}", s.sim_timesteps);
        let _ = writeln!(out, "  NBA flushes          {:>12}", s.nba_flushes);
        let _ = writeln!(out, "  peak queue depth     {:>12}", s.peak_queue_depth);
        if s.lint_errors + s.lint_warnings > 0 {
            let _ = writeln!(out, "lint:");
            let _ = writeln!(out, "  errors               {:>12}", s.lint_errors);
            let _ = writeln!(out, "  warnings             {:>12}", s.lint_warnings);
        }
        if !s.outcomes.is_empty() {
            let _ = writeln!(out, "evaluation outcomes:");
            let mut outcomes = s.outcomes.clone();
            outcomes.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            for (kind, count) in &outcomes {
                let _ = writeln!(out, "  {kind:<20} {count:>12}");
            }
        }
        if s.store_hits
            + s.store_writes
            + s.store_checkpoints
            + s.store_resumes
            + s.store_damage
            + s.store_degraded
            > 0
        {
            let _ = writeln!(out, "store:");
            let _ = writeln!(out, "  hits                 {:>12}", s.store_hits);
            let _ = writeln!(out, "  writes               {:>12}", s.store_writes);
            let _ = writeln!(out, "  checkpoints          {:>12}", s.store_checkpoints);
            if s.store_resumes > 0 {
                let _ = writeln!(out, "  resumes              {:>12}", s.store_resumes);
            }
            if s.store_damage > 0 {
                let _ = writeln!(out, "  damaged records      {:>12}", s.store_damage);
            }
            if s.store_degraded > 0 {
                let _ = writeln!(out, "  degraded (memory)    {:>12}", s.store_degraded);
            }
        }
        if !s.spans.is_empty() {
            let _ = writeln!(out, "spans:");
            for (name, count, nanos) in &s.spans {
                let ms = *nanos as f64 / 1e6;
                let _ = writeln!(out, "  {name:<20} {count:>6}x {ms:>12.3} ms");
            }
        }
        if !s.phases.is_empty() {
            let _ = writeln!(out, "phases (busy):");
            for (name, count, nanos) in &s.phases {
                let ms = *nanos as f64 / 1e6;
                let _ = writeln!(out, "  {name:<20} {count:>6}x {ms:>12.3} ms");
            }
        }
        if s.pattern_hits > 0 {
            let _ = writeln!(out, "mined patterns:");
            let _ = writeln!(out, "  template hits        {:>12}", s.pattern_hits);
        }
        if s.heartbeats > 0 {
            let _ = writeln!(out, "heartbeats:");
            let _ = writeln!(out, "  snapshots            {:>12}", s.heartbeats);
        }
        if s.eval_samples > 0 {
            let _ = writeln!(out, "eval latency:");
            let _ = writeln!(out, "  samples              {:>12}", s.eval_samples);
        }
        out
    }
}

impl TelemetrySink for SummarySink {
    fn record(&self, event: &Event) {
        let mut s = self.state.lock().expect("sink poisoned");
        match event {
            Event::Generation(g) => {
                s.generations = s.generations.max(g.generation);
                s.last_best = g.best_fitness;
            }
            Event::Candidate(c) => {
                s.candidates += 1;
                if c.cached {
                    s.cached += 1;
                }
                s.fitness_sum += c.fitness;
                s.max_patch_len = s.max_patch_len.max(c.patch_len);
            }
            Event::FaultLoc(f) => {
                s.fault_loc_passes += 1;
                s.implicated_last = f.implicated_nodes;
            }
            Event::Sim(m) => {
                s.sim_runs += 1;
                s.sim_events += m.active_events + m.inactive_events;
                s.sim_timesteps += m.timesteps;
                s.nba_flushes += m.nba_flushes;
                s.peak_queue_depth = s.peak_queue_depth.max(m.peak_queue_depth);
            }
            Event::Lint(l) => {
                if l.severity == "error" {
                    s.lint_errors += 1;
                } else {
                    s.lint_warnings += 1;
                }
            }
            Event::Store(st) => match st.op.as_str() {
                "hit" => s.store_hits += 1,
                "write" => s.store_writes += 1,
                "checkpoint" => s.store_checkpoints += 1,
                "resume" => s.store_resumes += 1,
                "degraded" => s.store_degraded += 1,
                _ => s.store_damage += st.records,
            },
            Event::EvalOutcome(o) => {
                if let Some(entry) = s.outcomes.iter_mut().find(|(k, _)| *k == o.kind) {
                    entry.1 += 1;
                } else {
                    s.outcomes.push((o.kind.clone(), 1));
                }
            }
            Event::Span(sp) => {
                if let Some(entry) = s.spans.iter_mut().find(|(n, _, _)| *n == sp.name) {
                    entry.1 += 1;
                    entry.2 += sp.nanos;
                } else {
                    s.spans.push((sp.name.clone(), 1, sp.nanos));
                }
            }
            Event::Phase(p) => {
                if let Some(entry) = s.phases.iter_mut().find(|(n, _, _)| *n == p.name) {
                    entry.1 += p.count;
                    entry.2 += p.nanos;
                } else {
                    s.phases.push((p.name.clone(), p.count, p.nanos));
                }
            }
            Event::Heartbeat(h) => {
                s.heartbeats += 1;
                s.last_best = s.last_best.max(h.best_fitness);
            }
            Event::Histogram(h) => {
                s.eval_samples += h.total;
            }
            Event::Mine(m) => {
                if m.op == "pattern_hit" {
                    s.pattern_hits += m.count;
                }
            }
        }
    }
}

/// Scrubs wall-clock-dependent payloads before forwarding to an inner
/// sink, so traces are byte-identical across worker counts and
/// machines: span and phase durations become zero, heartbeat
/// throughput becomes zero, and latency histograms are dropped
/// entirely. Counts (span/phase tallies, heartbeat progress counters)
/// are deterministic and pass through untouched.
pub struct TimingFreeSink<S> {
    inner: S,
}

impl<S: TelemetrySink> TimingFreeSink<S> {
    /// Wraps `inner`.
    pub fn new(inner: S) -> TimingFreeSink<S> {
        TimingFreeSink { inner }
    }

    /// Consumes the wrapper and returns the inner sink.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: TelemetrySink> TelemetrySink for TimingFreeSink<S> {
    fn record(&self, event: &Event) {
        match event {
            Event::Span(sp) => {
                let mut sp = sp.clone();
                sp.nanos = 0;
                self.inner.record(&Event::Span(sp));
            }
            Event::Phase(p) => {
                let mut p = p.clone();
                p.nanos = 0;
                self.inner.record(&Event::Phase(p));
            }
            Event::Heartbeat(h) => {
                let mut h = h.clone();
                h.evals_per_s = 0.0;
                self.inner.record(&Event::Heartbeat(h));
            }
            Event::Histogram(_) => {}
            other => self.inner.record(other),
        }
    }

    fn enabled(&self) -> bool {
        self.inner.enabled()
    }

    fn flush(&self) {
        self.inner.flush();
    }
}

/// Broadcasts each event to every inner sink (e.g. a JSON trace and a
/// summary at the same time).
pub struct FanoutSink {
    sinks: Vec<Box<dyn TelemetrySink>>,
}

impl FanoutSink {
    /// Builds a fanout over `sinks`.
    pub fn new(sinks: Vec<Box<dyn TelemetrySink>>) -> FanoutSink {
        FanoutSink { sinks }
    }
}

impl TelemetrySink for FanoutSink {
    fn record(&self, event: &Event) {
        for sink in &self.sinks {
            sink.record(event);
        }
    }

    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }
}
