//! Recursive-descent parser producing a numbered AST.

use cirfix_ast::{
    BinaryOp, CaseArm, CaseKind, Connection, Decl, DeclKind, DeclVar, EventExpr, Expr, Instance,
    Item, LValue, Module, NodeIdGen, ParamDecl, Sensitivity, SourceFile, Stmt, UnaryOp,
};
use cirfix_logic::{EdgeKind, LiteralBase, LogicVec};

use crate::error::ParseError;
use crate::lexer::{tokenize, Spanned, Token};

/// Parses Verilog source text into a [`SourceFile`], numbering nodes from a
/// fresh [`NodeIdGen`].
///
/// # Errors
///
/// Returns a [`ParseError`] with line/column information when the source
/// does not conform to the supported subset.
///
/// # Examples
///
/// ```
/// let src = "module t (q); output reg q; initial q = 1'b0; endmodule";
/// let file = cirfix_parser::parse(src)?;
/// assert_eq!(file.modules[0].name, "t");
/// # Ok::<(), cirfix_parser::ParseError>(())
/// ```
pub fn parse(source: &str) -> Result<SourceFile, ParseError> {
    let mut ids = NodeIdGen::new();
    parse_with_ids(source, &mut ids)
}

/// Parses with an explicit id generator, so multiple files (design +
/// testbench) can share one numbering space.
///
/// # Errors
///
/// See [`parse`].
pub fn parse_with_ids(source: &str, ids: &mut NodeIdGen) -> Result<SourceFile, ParseError> {
    let tokens = tokenize(source).map_err(ParseError::from_lex)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        ids,
        depth: 0,
    };
    parser.parse_source_file()
}

/// Maximum statement/expression nesting depth. The parser (and every
/// recursive consumer downstream of it: printer, elaborator, linter)
/// walks the tree on the call stack, so unbounded nesting in hostile
/// input would abort with a stack overflow — which `catch_unwind`
/// cannot contain. Sized so a maximally nested tree still fits a 2 MiB
/// worker-thread stack in debug builds, yet no real design comes close
/// (the benchmark suite nests under 16 levels).
const MAX_DEPTH: u32 = 64;

struct Parser<'a> {
    tokens: Vec<Spanned>,
    pos: usize,
    ids: &'a mut NodeIdGen,
    /// Current statement/expression nesting depth (see [`MAX_DEPTH`]).
    depth: u32,
}

const KEYWORDS: &[&str] = &[
    "module",
    "endmodule",
    "input",
    "output",
    "inout",
    "wire",
    "reg",
    "integer",
    "event",
    "parameter",
    "localparam",
    "assign",
    "always",
    "initial",
    "begin",
    "end",
    "if",
    "else",
    "case",
    "casez",
    "casex",
    "endcase",
    "default",
    "for",
    "while",
    "repeat",
    "forever",
    "posedge",
    "negedge",
    "or",
    "wait",
];

impl Parser<'_> {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].token
    }

    fn here(&self) -> (u32, u32) {
        let s = &self.tokens[self.pos.min(self.tokens.len() - 1)];
        (s.line, s.col)
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)]
            .token
            .clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        let (line, col) = self.here();
        ParseError::new(message, line, col)
    }

    /// Runs `f` one nesting level deeper, failing cleanly once
    /// [`MAX_DEPTH`] is reached instead of overflowing the stack.
    fn nested<T>(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<T, ParseError>,
    ) -> Result<T, ParseError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.error("statement or expression nesting too deep"));
        }
        self.depth += 1;
        let result = f(self);
        self.depth -= 1;
        result
    }

    fn expect(&mut self, token: &Token) -> Result<(), ParseError> {
        if self.peek() == token {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected `{token}`, found `{}`", self.peek())))
        }
    }

    fn eat(&mut self, token: &Token) -> bool {
        if self.peek() == token {
            self.bump();
            true
        } else {
            false
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Token::Ident(s) if s == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{kw}`, found `{}`", self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Token::Ident(name) => {
                if KEYWORDS.contains(&name.as_str()) {
                    Err(self.error(format!("expected identifier, found keyword `{name}`")))
                } else {
                    self.bump();
                    Ok(name)
                }
            }
            other => Err(self.error(format!("expected identifier, found `{other}`"))),
        }
    }

    // -- top level ---------------------------------------------------------

    fn parse_source_file(&mut self) -> Result<SourceFile, ParseError> {
        let mut modules = Vec::new();
        while !matches!(self.peek(), Token::Eof) {
            modules.push(self.parse_module()?);
        }
        Ok(SourceFile { modules })
    }

    fn parse_module(&mut self) -> Result<Module, ParseError> {
        self.expect_keyword("module")?;
        let id = self.ids.fresh();
        let name = self.expect_ident()?;
        let mut ports = Vec::new();
        let mut header_items = Vec::new();
        if self.eat(&Token::LParen) && !self.eat(&Token::RParen) {
            self.parse_port_list(&mut ports, &mut header_items)?;
            self.expect(&Token::RParen)?;
        }
        self.expect(&Token::Semi)?;
        let mut items = header_items;
        while !self.at_keyword("endmodule") {
            if matches!(self.peek(), Token::Eof) {
                return Err(self.error("unexpected end of input inside module"));
            }
            self.parse_item(&mut items)?;
        }
        self.expect_keyword("endmodule")?;
        Ok(Module {
            id,
            name,
            ports,
            items,
        })
    }

    /// Parses either a plain port-name list or an ANSI declaration list.
    fn parse_port_list(
        &mut self,
        ports: &mut Vec<String>,
        items: &mut Vec<Item>,
    ) -> Result<(), ParseError> {
        loop {
            if self.at_keyword("input") || self.at_keyword("output") || self.at_keyword("inout") {
                // ANSI declaration group.
                let kind = match self.bump() {
                    Token::Ident(s) if s == "input" => DeclKind::Input,
                    Token::Ident(s) if s == "output" => DeclKind::Output,
                    _ => DeclKind::Inout,
                };
                let also_reg = self.eat_keyword("reg");
                let range = self.parse_opt_range()?;
                loop {
                    let var_name = self.expect_ident()?;
                    ports.push(var_name.clone());
                    items.push(Item::Decl(Decl {
                        id: self.ids.fresh(),
                        kind,
                        range: range.clone(),
                        also_reg,
                        vars: vec![DeclVar {
                            id: self.ids.fresh(),
                            name: var_name,
                            array: None,
                            init: None,
                        }],
                    }));
                    if !self.eat(&Token::Comma) {
                        return Ok(());
                    }
                    // A direction keyword starts the next group.
                    if self.at_keyword("input")
                        || self.at_keyword("output")
                        || self.at_keyword("inout")
                    {
                        break;
                    }
                }
            } else {
                // Plain name list.
                loop {
                    ports.push(self.expect_ident()?);
                    if !self.eat(&Token::Comma) {
                        return Ok(());
                    }
                    if self.at_keyword("input")
                        || self.at_keyword("output")
                        || self.at_keyword("inout")
                    {
                        break;
                    }
                }
            }
        }
    }

    fn parse_opt_range(&mut self) -> Result<Option<(Expr, Expr)>, ParseError> {
        if self.eat(&Token::LBracket) {
            let msb = self.parse_expr()?;
            self.expect(&Token::Colon)?;
            let lsb = self.parse_expr()?;
            self.expect(&Token::RBracket)?;
            Ok(Some((msb, lsb)))
        } else {
            Ok(None)
        }
    }

    fn parse_item(&mut self, items: &mut Vec<Item>) -> Result<(), ParseError> {
        match self.peek().clone() {
            Token::Ident(kw) => match kw.as_str() {
                "input" | "output" | "inout" | "wire" | "reg" | "integer" | "event" => {
                    items.push(Item::Decl(self.parse_decl()?));
                    Ok(())
                }
                "parameter" | "localparam" => {
                    let local = kw == "localparam";
                    self.bump();
                    loop {
                        let id = self.ids.fresh();
                        let name = self.expect_ident()?;
                        self.expect(&Token::Assign)?;
                        let value = self.parse_expr()?;
                        items.push(Item::Param(ParamDecl {
                            id,
                            local,
                            name,
                            value,
                        }));
                        if !self.eat(&Token::Comma) {
                            break;
                        }
                    }
                    self.expect(&Token::Semi)?;
                    Ok(())
                }
                "assign" => {
                    self.bump();
                    loop {
                        let id = self.ids.fresh();
                        let lhs = self.parse_lvalue()?;
                        self.expect(&Token::Assign)?;
                        let rhs = self.parse_expr()?;
                        items.push(Item::Assign { id, lhs, rhs });
                        if !self.eat(&Token::Comma) {
                            break;
                        }
                    }
                    self.expect(&Token::Semi)?;
                    Ok(())
                }
                "always" => {
                    self.bump();
                    let id = self.ids.fresh();
                    let body = self.parse_stmt()?;
                    items.push(Item::Always { id, body });
                    Ok(())
                }
                "initial" => {
                    self.bump();
                    let id = self.ids.fresh();
                    let body = self.parse_stmt()?;
                    items.push(Item::Initial { id, body });
                    Ok(())
                }
                _ if !KEYWORDS.contains(&kw.as_str()) => {
                    items.push(Item::Instance(self.parse_instance()?));
                    Ok(())
                }
                other => Err(self.error(format!("unsupported module item `{other}`"))),
            },
            other => Err(self.error(format!("expected module item, found `{other}`"))),
        }
    }

    fn parse_decl(&mut self) -> Result<Decl, ParseError> {
        let id = self.ids.fresh();
        let kind = match self.bump() {
            Token::Ident(s) => match s.as_str() {
                "input" => DeclKind::Input,
                "output" => DeclKind::Output,
                "inout" => DeclKind::Inout,
                "wire" => DeclKind::Wire,
                "reg" => DeclKind::Reg,
                "integer" => DeclKind::Integer,
                "event" => DeclKind::Event,
                other => return Err(self.error(format!("not a declaration keyword `{other}`"))),
            },
            other => return Err(self.error(format!("not a declaration `{other}`"))),
        };
        let also_reg = kind.is_port() && self.eat_keyword("reg");
        let range = self.parse_opt_range()?;
        let mut vars = Vec::new();
        loop {
            let var_id = self.ids.fresh();
            let name = self.expect_ident()?;
            let array = self.parse_opt_range()?;
            let init = if self.eat(&Token::Assign) {
                Some(self.parse_expr()?)
            } else {
                None
            };
            vars.push(DeclVar {
                id: var_id,
                name,
                array,
                init,
            });
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::Semi)?;
        Ok(Decl {
            id,
            kind,
            range,
            also_reg,
            vars,
        })
    }

    fn parse_instance(&mut self) -> Result<Instance, ParseError> {
        let id = self.ids.fresh();
        let module = self.expect_ident()?;
        let params = if self.eat(&Token::Hash) {
            self.expect(&Token::LParen)?;
            let conns = self.parse_connections()?;
            self.expect(&Token::RParen)?;
            conns
        } else {
            Vec::new()
        };
        let name = self.expect_ident()?;
        self.expect(&Token::LParen)?;
        let ports = if self.peek() == &Token::RParen {
            Vec::new()
        } else {
            self.parse_connections()?
        };
        self.expect(&Token::RParen)?;
        self.expect(&Token::Semi)?;
        Ok(Instance {
            id,
            module,
            name,
            params,
            ports,
        })
    }

    fn parse_connections(&mut self) -> Result<Vec<Connection>, ParseError> {
        let mut conns = Vec::new();
        loop {
            let id = self.ids.fresh();
            if self.eat(&Token::Dot) {
                let name = self.expect_ident()?;
                self.expect(&Token::LParen)?;
                let expr = if self.peek() == &Token::RParen {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect(&Token::RParen)?;
                conns.push(Connection {
                    id,
                    name: Some(name),
                    expr,
                });
            } else {
                let expr = self.parse_expr()?;
                conns.push(Connection {
                    id,
                    name: None,
                    expr: Some(expr),
                });
            }
            if !self.eat(&Token::Comma) {
                return Ok(conns);
            }
        }
    }

    // -- statements ----------------------------------------------------------

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.nested(Self::parse_stmt_inner)
    }

    fn parse_stmt_inner(&mut self) -> Result<Stmt, ParseError> {
        match self.peek().clone() {
            Token::Ident(kw) => match kw.as_str() {
                "begin" => self.parse_block(),
                "if" => self.parse_if(),
                "case" => self.parse_case(CaseKind::Case),
                "casez" => self.parse_case(CaseKind::Casez),
                "casex" => self.parse_case(CaseKind::Casex),
                "for" => self.parse_for(),
                "while" => {
                    self.bump();
                    let id = self.ids.fresh();
                    self.expect(&Token::LParen)?;
                    let cond = self.parse_expr()?;
                    self.expect(&Token::RParen)?;
                    let body = Box::new(self.parse_stmt()?);
                    Ok(Stmt::While { id, cond, body })
                }
                "repeat" => {
                    self.bump();
                    let id = self.ids.fresh();
                    self.expect(&Token::LParen)?;
                    let count = self.parse_expr()?;
                    self.expect(&Token::RParen)?;
                    let body = Box::new(self.parse_stmt()?);
                    Ok(Stmt::Repeat { id, count, body })
                }
                "forever" => {
                    self.bump();
                    let id = self.ids.fresh();
                    let body = Box::new(self.parse_stmt()?);
                    Ok(Stmt::Forever { id, body })
                }
                "wait" => {
                    self.bump();
                    let id = self.ids.fresh();
                    self.expect(&Token::LParen)?;
                    let cond = self.parse_expr()?;
                    self.expect(&Token::RParen)?;
                    let body = self.parse_opt_body()?;
                    Ok(Stmt::Wait { id, cond, body })
                }
                _ if !KEYWORDS.contains(&kw.as_str()) => self.parse_assignment(),
                other => Err(self.error(format!("unsupported statement keyword `{other}`"))),
            },
            Token::Hash => {
                self.bump();
                let id = self.ids.fresh();
                let amount = self.parse_delay_value()?;
                let body = self.parse_opt_body()?;
                Ok(Stmt::Delay { id, amount, body })
            }
            Token::At => self.parse_event_control(),
            Token::Arrow => {
                self.bump();
                let id = self.ids.fresh();
                let name = self.expect_ident()?;
                self.expect(&Token::Semi)?;
                Ok(Stmt::EventTrigger { id, name })
            }
            Token::SysIdent(name) => {
                self.bump();
                let id = self.ids.fresh();
                let args = if self.eat(&Token::LParen) {
                    let mut args = Vec::new();
                    if self.peek() != &Token::RParen {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.eat(&Token::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&Token::RParen)?;
                    args
                } else {
                    Vec::new()
                };
                self.expect(&Token::Semi)?;
                Ok(Stmt::SysCall { id, name, args })
            }
            Token::Semi => {
                let id = self.ids.fresh();
                self.bump();
                Ok(Stmt::Null { id })
            }
            Token::LBrace => self.parse_assignment(),
            other => Err(self.error(format!("expected statement, found `{other}`"))),
        }
    }

    /// A statement body that is omitted when the next token is `;`
    /// (e.g. `@(negedge clk);`).
    fn parse_opt_body(&mut self) -> Result<Option<Box<Stmt>>, ParseError> {
        if self.eat(&Token::Semi) {
            Ok(None)
        } else {
            Ok(Some(Box::new(self.parse_stmt()?)))
        }
    }

    fn parse_block(&mut self) -> Result<Stmt, ParseError> {
        self.expect_keyword("begin")?;
        let id = self.ids.fresh();
        let name = if self.eat(&Token::Colon) {
            Some(self.expect_ident()?)
        } else {
            None
        };
        let mut stmts = Vec::new();
        while !self.at_keyword("end") {
            if matches!(self.peek(), Token::Eof) {
                return Err(self.error("unexpected end of input inside begin/end"));
            }
            stmts.push(self.parse_stmt()?);
        }
        self.expect_keyword("end")?;
        Ok(Stmt::Block { id, name, stmts })
    }

    fn parse_if(&mut self) -> Result<Stmt, ParseError> {
        self.expect_keyword("if")?;
        let id = self.ids.fresh();
        self.expect(&Token::LParen)?;
        let cond = self.parse_expr()?;
        self.expect(&Token::RParen)?;
        let then_s = Box::new(self.parse_stmt()?);
        let else_s = if self.eat_keyword("else") {
            Some(Box::new(self.parse_stmt()?))
        } else {
            None
        };
        Ok(Stmt::If {
            id,
            cond,
            then_s,
            else_s,
        })
    }

    fn parse_case(&mut self, kind: CaseKind) -> Result<Stmt, ParseError> {
        self.bump(); // case/casez/casex
        let id = self.ids.fresh();
        self.expect(&Token::LParen)?;
        let subject = self.parse_expr()?;
        self.expect(&Token::RParen)?;
        let mut arms = Vec::new();
        let mut default = None;
        while !self.at_keyword("endcase") {
            if matches!(self.peek(), Token::Eof) {
                return Err(self.error("unexpected end of input inside case"));
            }
            if self.eat_keyword("default") {
                self.eat(&Token::Colon);
                default = Some(Box::new(self.parse_stmt()?));
                continue;
            }
            let arm_id = self.ids.fresh();
            let mut labels = vec![self.parse_expr()?];
            while self.eat(&Token::Comma) {
                labels.push(self.parse_expr()?);
            }
            self.expect(&Token::Colon)?;
            let body = self.parse_stmt()?;
            arms.push(CaseArm {
                id: arm_id,
                labels,
                body,
            });
        }
        self.expect_keyword("endcase")?;
        Ok(Stmt::Case {
            id,
            kind,
            subject,
            arms,
            default,
        })
    }

    fn parse_for(&mut self) -> Result<Stmt, ParseError> {
        self.expect_keyword("for")?;
        let id = self.ids.fresh();
        self.expect(&Token::LParen)?;
        let init = Box::new(self.parse_headless_assignment()?);
        self.expect(&Token::Semi)?;
        let cond = self.parse_expr()?;
        self.expect(&Token::Semi)?;
        let step = Box::new(self.parse_headless_assignment()?);
        self.expect(&Token::RParen)?;
        let body = Box::new(self.parse_stmt()?);
        Ok(Stmt::For {
            id,
            init,
            cond,
            step,
            body,
        })
    }

    /// An assignment without trailing semicolon, as in `for` headers.
    fn parse_headless_assignment(&mut self) -> Result<Stmt, ParseError> {
        let id = self.ids.fresh();
        let lhs = self.parse_lvalue()?;
        self.expect(&Token::Assign)?;
        let rhs = self.parse_expr()?;
        Ok(Stmt::Blocking {
            id,
            lhs,
            delay: None,
            rhs,
        })
    }

    fn parse_assignment(&mut self) -> Result<Stmt, ParseError> {
        let id = self.ids.fresh();
        let lhs = self.parse_lvalue()?;
        let blocking = match self.bump() {
            Token::Assign => true,
            Token::LtEq => false,
            other => {
                return Err(self.error(format!("expected `=` or `<=`, found `{other}`")));
            }
        };
        let delay = if self.eat(&Token::Hash) {
            Some(self.parse_delay_value()?)
        } else {
            None
        };
        let rhs = self.parse_expr()?;
        self.expect(&Token::Semi)?;
        Ok(if blocking {
            Stmt::Blocking {
                id,
                lhs,
                delay,
                rhs,
            }
        } else {
            Stmt::NonBlocking {
                id,
                lhs,
                delay,
                rhs,
            }
        })
    }

    fn parse_event_control(&mut self) -> Result<Stmt, ParseError> {
        self.expect(&Token::At)?;
        let id = self.ids.fresh();
        let sensitivity = if self.eat(&Token::Star) {
            Sensitivity::Star
        } else if self.eat(&Token::LParen) {
            if self.eat(&Token::Star) {
                self.expect(&Token::RParen)?;
                Sensitivity::Star
            } else {
                let mut events = vec![self.parse_event_expr()?];
                while self.eat_keyword("or") || self.eat(&Token::Comma) {
                    events.push(self.parse_event_expr()?);
                }
                self.expect(&Token::RParen)?;
                Sensitivity::List(events)
            }
        } else {
            // Bare `@ident`.
            let ev_id = self.ids.fresh();
            let name = self.expect_ident()?;
            Sensitivity::List(vec![EventExpr {
                id: ev_id,
                edge: EdgeKind::Any,
                expr: Expr::Ident {
                    id: self.ids.fresh(),
                    name,
                },
            }])
        };
        let body = self.parse_opt_body()?;
        Ok(Stmt::EventControl {
            id,
            sensitivity,
            body,
        })
    }

    fn parse_event_expr(&mut self) -> Result<EventExpr, ParseError> {
        let id = self.ids.fresh();
        let edge = if self.eat_keyword("posedge") {
            EdgeKind::Pos
        } else if self.eat_keyword("negedge") {
            EdgeKind::Neg
        } else {
            EdgeKind::Any
        };
        let expr = self.parse_expr()?;
        Ok(EventExpr { id, edge, expr })
    }

    /// A delay amount: number, identifier, or parenthesized expression.
    fn parse_delay_value(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Token::Number { .. } => self.parse_primary(),
            Token::Ident(_) => {
                let id = self.ids.fresh();
                let name = self.expect_ident()?;
                Ok(Expr::Ident { id, name })
            }
            Token::LParen => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            other => Err(self.error(format!("expected delay value, found `{other}`"))),
        }
    }

    fn parse_lvalue(&mut self) -> Result<LValue, ParseError> {
        self.nested(Self::parse_lvalue_inner)
    }

    fn parse_lvalue_inner(&mut self) -> Result<LValue, ParseError> {
        if self.eat(&Token::LBrace) {
            let id = self.ids.fresh();
            let mut parts = vec![self.parse_lvalue()?];
            while self.eat(&Token::Comma) {
                parts.push(self.parse_lvalue()?);
            }
            self.expect(&Token::RBrace)?;
            return Ok(LValue::Concat { id, parts });
        }
        let id = self.ids.fresh();
        let base = self.expect_ident()?;
        if self.eat(&Token::LBracket) {
            let first = self.parse_expr()?;
            if self.eat(&Token::Colon) {
                let lsb = self.parse_expr()?;
                self.expect(&Token::RBracket)?;
                Ok(LValue::Range {
                    id,
                    base,
                    msb: first,
                    lsb,
                })
            } else {
                self.expect(&Token::RBracket)?;
                Ok(LValue::Index {
                    id,
                    base,
                    index: first,
                })
            }
        } else {
            Ok(LValue::Ident { id, name: base })
        }
    }

    // -- expressions ---------------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.nested(Self::parse_expr_inner)
    }

    fn parse_expr_inner(&mut self) -> Result<Expr, ParseError> {
        let cond = self.parse_binary(0)?;
        if self.eat(&Token::Question) {
            let id = self.ids.fresh();
            let then_e = self.parse_expr()?;
            self.expect(&Token::Colon)?;
            let else_e = self.parse_expr()?;
            Ok(Expr::Cond {
                id,
                cond: Box::new(cond),
                then_e: Box::new(then_e),
                else_e: Box::new(else_e),
            })
        } else {
            Ok(cond)
        }
    }

    fn peek_binop(&self) -> Option<BinaryOp> {
        Some(match self.peek() {
            Token::Plus => BinaryOp::Add,
            Token::Minus => BinaryOp::Sub,
            Token::Star => BinaryOp::Mul,
            Token::Slash => BinaryOp::Div,
            Token::Percent => BinaryOp::Rem,
            Token::Eq => BinaryOp::Eq,
            Token::Neq => BinaryOp::Neq,
            Token::CaseEq => BinaryOp::CaseEq,
            Token::CaseNeq => BinaryOp::CaseNeq,
            Token::Lt => BinaryOp::Lt,
            Token::LtEq => BinaryOp::Le,
            Token::Gt => BinaryOp::Gt,
            Token::GtEq => BinaryOp::Ge,
            Token::AmpAmp => BinaryOp::LogicAnd,
            Token::PipePipe => BinaryOp::LogicOr,
            Token::Amp => BinaryOp::BitAnd,
            Token::Pipe => BinaryOp::BitOr,
            Token::Caret => BinaryOp::BitXor,
            Token::TildeCaret => BinaryOp::BitXnor,
            Token::Shl => BinaryOp::Shl,
            Token::Shr => BinaryOp::Shr,
            _ => return None,
        })
    }

    fn parse_binary(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary()?;
        while let Some(op) = self.peek_binop() {
            let prec = op.precedence();
            if prec < min_prec {
                break;
            }
            self.bump();
            let id = self.ids.fresh();
            let rhs = self.parse_binary(prec + 1)?;
            lhs = Expr::Binary {
                id,
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        self.nested(Self::parse_unary_inner)
    }

    fn parse_unary_inner(&mut self) -> Result<Expr, ParseError> {
        let op = match self.peek() {
            Token::Bang => Some(UnaryOp::LogicNot),
            Token::Tilde => Some(UnaryOp::BitNot),
            Token::Minus => Some(UnaryOp::Minus),
            Token::Plus => Some(UnaryOp::Plus),
            Token::Amp => Some(UnaryOp::RedAnd),
            Token::Pipe => Some(UnaryOp::RedOr),
            Token::Caret => Some(UnaryOp::RedXor),
            Token::TildeAmp => Some(UnaryOp::RedNand),
            Token::TildePipe => Some(UnaryOp::RedNor),
            Token::TildeCaret => Some(UnaryOp::RedXnor),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let id = self.ids.fresh();
            let arg = self.parse_unary()?;
            Ok(Expr::Unary {
                id,
                op,
                arg: Box::new(arg),
            })
        } else {
            self.parse_primary()
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Token::Number {
                width,
                base,
                digits,
            } => {
                self.bump();
                let id = self.ids.fresh();
                let lit_base = base.unwrap_or(LiteralBase::Decimal);
                let value = LogicVec::parse_based(width, lit_base, &digits)
                    .map_err(|e| self.error(e.to_string()))?;
                Ok(Expr::Literal {
                    id,
                    value,
                    base: lit_base,
                    sized: width.is_some(),
                })
            }
            Token::Str(s) => {
                self.bump();
                Ok(Expr::Str {
                    id: self.ids.fresh(),
                    value: s,
                })
            }
            Token::LParen => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::LBrace => {
                self.bump();
                let id = self.ids.fresh();
                let first = self.parse_expr()?;
                if self.peek() == &Token::LBrace {
                    // Replication: {count{parts}}.
                    self.bump();
                    let mut parts = vec![self.parse_expr()?];
                    while self.eat(&Token::Comma) {
                        parts.push(self.parse_expr()?);
                    }
                    self.expect(&Token::RBrace)?;
                    self.expect(&Token::RBrace)?;
                    Ok(Expr::Repeat {
                        id,
                        count: Box::new(first),
                        parts,
                    })
                } else {
                    let mut parts = vec![first];
                    while self.eat(&Token::Comma) {
                        parts.push(self.parse_expr()?);
                    }
                    self.expect(&Token::RBrace)?;
                    Ok(Expr::Concat { id, parts })
                }
            }
            Token::SysIdent(name) => {
                self.bump();
                let id = self.ids.fresh();
                let args = if self.eat(&Token::LParen) {
                    let mut args = Vec::new();
                    if self.peek() != &Token::RParen {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.eat(&Token::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&Token::RParen)?;
                    args
                } else {
                    Vec::new()
                };
                Ok(Expr::SysCall { id, name, args })
            }
            Token::Ident(_) => {
                let id = self.ids.fresh();
                let name = self.expect_ident()?;
                if self.eat(&Token::LBracket) {
                    let first = self.parse_expr()?;
                    if self.eat(&Token::Colon) {
                        let lsb = self.parse_expr()?;
                        self.expect(&Token::RBracket)?;
                        Ok(Expr::Range {
                            id,
                            base: name,
                            msb: Box::new(first),
                            lsb: Box::new(lsb),
                        })
                    } else {
                        self.expect(&Token::RBracket)?;
                        Ok(Expr::Index {
                            id,
                            base: name,
                            index: Box::new(first),
                        })
                    }
                } else {
                    Ok(Expr::Ident { id, name })
                }
            }
            other => Err(self.error(format!("expected expression, found `{other}`"))),
        }
    }
}
