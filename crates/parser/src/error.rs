//! Parse errors with source positions.

use std::fmt;

use crate::lexer::LexError;

/// An error produced while parsing Verilog source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    message: String,
    line: u32,
    col: u32,
}

impl ParseError {
    pub(crate) fn new(message: impl Into<String>, line: u32, col: u32) -> ParseError {
        ParseError {
            message: message.into(),
            line,
            col,
        }
    }

    pub(crate) fn from_lex(err: LexError) -> ParseError {
        ParseError {
            message: err.message,
            line: err.line,
            col: err.col,
        }
    }

    /// 1-based line of the offending token.
    pub fn line(&self) -> u32 {
        self.line
    }

    /// 1-based column of the offending token.
    pub fn col(&self) -> u32 {
        self.col
    }

    /// Human-readable description.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}
