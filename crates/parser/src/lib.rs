#![warn(missing_docs)]

//! Lexer and recursive-descent parser for the Verilog subset used by the
//! CirFix benchmarks.
//!
//! The supported subset covers everything the 11 benchmark projects and
//! their testbenches use: modules with ANSI or non-ANSI ports, net and
//! variable declarations (including memories), parameters, continuous
//! assignments, `always`/`initial` processes, the full procedural
//! statement set (`if`, `case`/`casez`/`casex`, `for`, `while`, `repeat`,
//! `forever`, `wait`, delays, event controls, named events and triggers,
//! system tasks), module instantiation with positional and named
//! connections, and the full expression grammar of IEEE 1364 over the
//! operators implemented by [`cirfix_logic`].
//!
//! This replaces the PyVerilog toolkit used by the paper's prototype: the
//! output is a numbered AST ([`cirfix_ast`]) from which source can be
//! regenerated.
//!
//! # Examples
//!
//! ```
//! let src = r#"
//! module counter (clk, reset, q);
//!     input clk, reset;
//!     output [3:0] q;
//!     reg [3:0] q;
//!     always @(posedge clk)
//!         if (reset) q <= 4'b0000;
//!         else q <= q + 1;
//! endmodule
//! "#;
//! let file = cirfix_parser::parse(src)?;
//! let printed = cirfix_ast::print::source_to_string(&file);
//! assert!(printed.contains("module counter"));
//! # Ok::<(), cirfix_parser::ParseError>(())
//! ```

mod error;
mod lexer;
mod parser;

pub use error::ParseError;
pub use lexer::{tokenize, LexError, Spanned, Token};
pub use parser::{parse, parse_with_ids};
