//! Tokenizer for the Verilog subset.

use std::fmt;

use cirfix_logic::LiteralBase;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (the parser distinguishes).
    Ident(String),
    /// System identifier, e.g. `$display` (without the `$`).
    SysIdent(String),
    /// A numeric literal: optional size, optional base, digit text.
    Number {
        /// Explicit bit width, when written (`4'b…`).
        width: Option<usize>,
        /// Base letter, when written.
        base: Option<LiteralBase>,
        /// Raw digits (may include `x`, `z`, `?`, `_`).
        digits: String,
    },
    /// String literal contents (unescaped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `#`
    Hash,
    /// `@`
    At,
    /// `?`
    Question,
    /// `=`
    Assign,
    /// `==`
    Eq,
    /// `===`
    CaseEq,
    /// `!=`
    Neq,
    /// `!==`
    CaseNeq,
    /// `<`
    Lt,
    /// `<=` (less-equal or non-blocking assign; context decides)
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `!`
    Bang,
    /// `~`
    Tilde,
    /// `&`
    Amp,
    /// `&&`
    AmpAmp,
    /// `|`
    Pipe,
    /// `||`
    PipePipe,
    /// `^`
    Caret,
    /// `~^` or `^~`
    TildeCaret,
    /// `~&`
    TildeAmp,
    /// `~|`
    TildePipe,
    /// `->`
    Arrow,
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::SysIdent(s) => write!(f, "${s}"),
            Token::Number {
                width,
                base,
                digits,
            } => {
                if let Some(w) = width {
                    write!(f, "{w}")?;
                }
                if let Some(b) = base {
                    write!(f, "'{b}")?;
                }
                write!(f, "{digits}")
            }
            Token::Str(s) => write!(f, "\"{s}\""),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::Semi => write!(f, ";"),
            Token::Colon => write!(f, ":"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Hash => write!(f, "#"),
            Token::At => write!(f, "@"),
            Token::Question => write!(f, "?"),
            Token::Assign => write!(f, "="),
            Token::Eq => write!(f, "=="),
            Token::CaseEq => write!(f, "==="),
            Token::Neq => write!(f, "!="),
            Token::CaseNeq => write!(f, "!=="),
            Token::Lt => write!(f, "<"),
            Token::LtEq => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::GtEq => write!(f, ">="),
            Token::Shl => write!(f, "<<"),
            Token::Shr => write!(f, ">>"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::Bang => write!(f, "!"),
            Token::Tilde => write!(f, "~"),
            Token::Amp => write!(f, "&"),
            Token::AmpAmp => write!(f, "&&"),
            Token::Pipe => write!(f, "|"),
            Token::PipePipe => write!(f, "||"),
            Token::Caret => write!(f, "^"),
            Token::TildeCaret => write!(f, "~^"),
            Token::TildeAmp => write!(f, "~&"),
            Token::TildePipe => write!(f, "~|"),
            Token::Arrow => write!(f, "->"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token plus its source position (1-based line and column).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

/// A lexical error with position.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Description of the problem.
    pub message: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for LexError {}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

/// Tokenizes `source` into a vector ending with [`Token::Eof`].
///
/// # Errors
///
/// Returns a [`LexError`] for unterminated strings or comments and for
/// characters outside the supported subset.
pub fn tokenize(source: &str) -> Result<Vec<Spanned>, LexError> {
    let mut lexer = Lexer {
        src: source.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut tokens = Vec::new();
    loop {
        lexer.skip_trivia()?;
        let (line, col) = (lexer.line, lexer.col);
        let Some(c) = lexer.peek() else {
            tokens.push(Spanned {
                token: Token::Eof,
                line,
                col,
            });
            return Ok(tokens);
        };
        let token = lexer.next_token(c)?;
        tokens.push(Spanned { token, line, col });
    }
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn error(&self, message: impl Into<String>) -> LexError {
        LexError {
            message: message.into(),
            line: self.line,
            col: self.col,
        }
    }

    fn skip_trivia(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            Some(_) => {
                                self.bump();
                            }
                            None => return Err(self.error("unterminated block comment")),
                        }
                    }
                }
                // Compiler directives (`timescale etc.) are skipped to
                // end of line; they do not affect our simulation model.
                Some(b'`') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self, c: u8) -> Result<Token, LexError> {
        match c {
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => Ok(Token::Ident(self.lex_name())),
            b'0'..=b'9' => self.lex_number(),
            b'\'' => self.lex_based(None),
            b'"' => self.lex_string(),
            b'$' => {
                self.bump();
                let name = self.lex_name();
                if name.is_empty() {
                    return Err(self.error("expected identifier after `$`"));
                }
                Ok(Token::SysIdent(name))
            }
            _ => self.lex_punct(c),
        }
    }

    fn lex_name(&mut self) -> String {
        let mut name = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'$' {
                name.push(c as char);
                self.bump();
            } else {
                break;
            }
        }
        name
    }

    fn lex_number(&mut self) -> Result<Token, LexError> {
        let mut digits = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == b'_' {
                digits.push(c as char);
                self.bump();
            } else {
                break;
            }
        }
        // Allow whitespace between the size and the base tick: `4 'b0`.
        let save = (self.pos, self.line, self.col);
        self.skip_trivia()?;
        if self.peek() == Some(b'\'') {
            let width: usize = digits
                .chars()
                .filter(|c| *c != '_')
                .collect::<String>()
                .parse()
                .map_err(|_| self.error(format!("bad literal size `{digits}`")))?;
            return self.lex_based(Some(width));
        }
        (self.pos, self.line, self.col) = save;
        Ok(Token::Number {
            width: None,
            base: None,
            digits,
        })
    }

    fn lex_based(&mut self, width: Option<usize>) -> Result<Token, LexError> {
        self.bump(); // the tick
        let Some(b) = self.peek() else {
            return Err(self.error("expected base letter after `'`"));
        };
        // `'b`, `'sb` (signed prefix tolerated and ignored).
        let b = if b == b's' || b == b'S' {
            self.bump();
            self.peek()
                .ok_or_else(|| self.error("expected base letter after `'s`"))?
        } else {
            b
        };
        let base = LiteralBase::from_char(b as char)
            .ok_or_else(|| self.error(format!("unknown literal base `{}`", b as char)))?;
        self.bump();
        let mut digits = String::new();
        while let Some(c) = self.peek() {
            let ch = c.to_ascii_lowercase() as char;
            let valid = ch.is_ascii_hexdigit() || matches!(ch, 'x' | 'z' | '?' | '_');
            if valid {
                digits.push(c as char);
                self.bump();
            } else {
                break;
            }
        }
        if digits.is_empty() {
            return Err(self.error("expected digits after literal base"));
        }
        Ok(Token::Number {
            width,
            base: Some(base),
            digits,
        })
    }

    fn lex_string(&mut self) -> Result<Token, LexError> {
        self.bump(); // opening quote
        let mut value = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(Token::Str(value)),
                Some(b'\\') => match self.bump() {
                    Some(b'n') => value.push('\n'),
                    Some(b't') => value.push('\t'),
                    Some(b'"') => value.push('"'),
                    Some(b'\\') => value.push('\\'),
                    Some(other) => value.push(other as char),
                    None => return Err(self.error("unterminated string")),
                },
                Some(b'\n') | None => return Err(self.error("unterminated string")),
                Some(other) => value.push(other as char),
            }
        }
    }

    /// `c` is the already-peeked byte at the current position; taking
    /// it as a parameter keeps this panic-free (no "caller checked"
    /// unwrap on a second read of the stream).
    fn lex_punct(&mut self, c: u8) -> Result<Token, LexError> {
        self.bump();
        let two = self.peek();
        let token = match (c, two) {
            (b'(', _) => Token::LParen,
            (b')', _) => Token::RParen,
            (b'[', _) => Token::LBracket,
            (b']', _) => Token::RBracket,
            (b'{', _) => Token::LBrace,
            (b'}', _) => Token::RBrace,
            (b';', _) => Token::Semi,
            (b':', _) => Token::Colon,
            (b',', _) => Token::Comma,
            (b'.', _) => Token::Dot,
            (b'#', _) => Token::Hash,
            (b'@', _) => Token::At,
            (b'?', _) => Token::Question,
            (b'=', Some(b'=')) => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Token::CaseEq
                } else {
                    Token::Eq
                }
            }
            (b'=', _) => Token::Assign,
            (b'!', Some(b'=')) => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Token::CaseNeq
                } else {
                    Token::Neq
                }
            }
            (b'!', _) => Token::Bang,
            (b'<', Some(b'=')) => {
                self.bump();
                Token::LtEq
            }
            (b'<', Some(b'<')) => {
                self.bump();
                Token::Shl
            }
            (b'<', _) => Token::Lt,
            (b'>', Some(b'=')) => {
                self.bump();
                Token::GtEq
            }
            (b'>', Some(b'>')) => {
                self.bump();
                Token::Shr
            }
            (b'>', _) => Token::Gt,
            (b'+', _) => Token::Plus,
            (b'-', Some(b'>')) => {
                self.bump();
                Token::Arrow
            }
            (b'-', _) => Token::Minus,
            (b'*', _) => Token::Star,
            (b'/', _) => Token::Slash,
            (b'%', _) => Token::Percent,
            (b'~', Some(b'^')) => {
                self.bump();
                Token::TildeCaret
            }
            (b'~', Some(b'&')) => {
                self.bump();
                Token::TildeAmp
            }
            (b'~', Some(b'|')) => {
                self.bump();
                Token::TildePipe
            }
            (b'~', _) => Token::Tilde,
            (b'&', Some(b'&')) => {
                self.bump();
                Token::AmpAmp
            }
            (b'&', _) => Token::Amp,
            (b'|', Some(b'|')) => {
                self.bump();
                Token::PipePipe
            }
            (b'|', _) => Token::Pipe,
            (b'^', Some(b'~')) => {
                self.bump();
                Token::TildeCaret
            }
            (b'^', _) => Token::Caret,
            (other, _) => {
                return Err(self.error(format!("unexpected character `{}`", other as char)))
            }
        };
        Ok(token)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        tokenize(src)
            .unwrap()
            .into_iter()
            .map(|s| s.token)
            .collect()
    }

    #[test]
    fn lexes_identifiers_and_keywords() {
        assert_eq!(
            toks("module foo_1 endmodule"),
            vec![
                Token::Ident("module".into()),
                Token::Ident("foo_1".into()),
                Token::Ident("endmodule".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn lexes_sized_literals() {
        assert_eq!(
            toks("4'b1x0z"),
            vec![
                Token::Number {
                    width: Some(4),
                    base: Some(LiteralBase::Binary),
                    digits: "1x0z".into()
                },
                Token::Eof
            ]
        );
        assert_eq!(
            toks("8'hFF"),
            vec![
                Token::Number {
                    width: Some(8),
                    base: Some(LiteralBase::Hex),
                    digits: "FF".into()
                },
                Token::Eof
            ]
        );
        // Space between size and tick.
        assert_eq!(
            toks("4 'd5"),
            vec![
                Token::Number {
                    width: Some(4),
                    base: Some(LiteralBase::Decimal),
                    digits: "5".into()
                },
                Token::Eof
            ]
        );
    }

    #[test]
    fn lexes_plain_decimal() {
        assert_eq!(
            toks("500"),
            vec![
                Token::Number {
                    width: None,
                    base: None,
                    digits: "500".into()
                },
                Token::Eof
            ]
        );
    }

    #[test]
    fn lexes_operators() {
        assert_eq!(
            toks("a <= b == c === d -> e"),
            vec![
                Token::Ident("a".into()),
                Token::LtEq,
                Token::Ident("b".into()),
                Token::Eq,
                Token::Ident("c".into()),
                Token::CaseEq,
                Token::Ident("d".into()),
                Token::Arrow,
                Token::Ident("e".into()),
                Token::Eof
            ]
        );
        assert_eq!(
            toks("~& ~| ~^ ^~ << >>"),
            vec![
                Token::TildeAmp,
                Token::TildePipe,
                Token::TildeCaret,
                Token::TildeCaret,
                Token::Shl,
                Token::Shr,
                Token::Eof
            ]
        );
    }

    #[test]
    fn skips_comments_and_directives() {
        let src = "a // line\n/* block\nmore */ b\n`timescale 1ns/1ps\nc";
        assert_eq!(
            toks(src),
            vec![
                Token::Ident("a".into()),
                Token::Ident("b".into()),
                Token::Ident("c".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn lexes_strings_with_escapes() {
        assert_eq!(
            toks(r#""time=%t\n""#),
            vec![Token::Str("time=%t\n".into()), Token::Eof]
        );
    }

    #[test]
    fn lexes_system_idents() {
        assert_eq!(
            toks("$display($time);"),
            vec![
                Token::SysIdent("display".into()),
                Token::LParen,
                Token::SysIdent("time".into()),
                Token::RParen,
                Token::Semi,
                Token::Eof
            ]
        );
    }

    #[test]
    fn reports_errors_with_position() {
        let err = tokenize("a\n  \"unterminated").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unterminated"));
        assert!(tokenize("4'q0").is_err());
        assert!(tokenize("4'b").is_err());
    }

    #[test]
    fn positions_track_lines() {
        let spanned = tokenize("a\n b").unwrap();
        assert_eq!(spanned[0].line, 1);
        assert_eq!(spanned[1].line, 2);
        assert_eq!(spanned[1].col, 2);
    }
}
