//! Parser feature coverage and print/parse round-trip tests.

use cirfix_ast::{print, visit, CaseKind, DeclKind, Expr, Item, Sensitivity, Stmt};
use cirfix_parser::parse;

/// Parse → print → parse → print must be a fixed point.
fn assert_round_trip(src: &str) {
    let first = parse(src).expect("first parse");
    let printed = print::source_to_string(&first);
    let second = parse(&printed)
        .unwrap_or_else(|e| panic!("reparse failed: {e}\n--- printed ---\n{printed}"));
    let reprinted = print::source_to_string(&second);
    assert_eq!(printed, reprinted, "printing must be a fixed point");
}

#[test]
fn parses_minimal_module() {
    let file = parse("module m; endmodule").unwrap();
    assert_eq!(file.modules.len(), 1);
    assert_eq!(file.modules[0].name, "m");
    assert!(file.modules[0].ports.is_empty());
}

#[test]
fn parses_non_ansi_ports() {
    let src = r#"
        module counter (clk, reset, enable, counter_out, overflow_out);
            input clk, reset, enable;
            output [3:0] counter_out;
            output overflow_out;
            reg [3:0] counter_out;
            reg overflow_out;
        endmodule
    "#;
    let file = parse(src).unwrap();
    let m = &file.modules[0];
    assert_eq!(m.ports.len(), 5);
    assert_eq!(m.decls_of("counter_out").len(), 2);
    assert_round_trip(src);
}

#[test]
fn parses_ansi_ports() {
    let src = r#"
        module ff (input clk, input rst_n, input t, output reg q);
            always @(posedge clk) q <= t ? ~q : q;
        endmodule
    "#;
    let file = parse(src).unwrap();
    let m = &file.modules[0];
    assert_eq!(m.ports, vec!["clk", "rst_n", "t", "q"]);
    let q_decls = m.decls_of("q");
    assert_eq!(q_decls.len(), 1);
    assert_eq!(q_decls[0].kind, DeclKind::Output);
    assert!(q_decls[0].also_reg);
    assert_round_trip(src);
}

#[test]
fn parses_always_with_sensitivity_variants() {
    for sens in [
        "@(posedge clk)",
        "@(negedge clk)",
        "@(a or b)",
        "@(a, b)",
        "@*",
        "@(*)",
    ] {
        let src = format!("module m; reg q; always {sens} q = 1'b0; endmodule");
        let file = parse(&src).unwrap_or_else(|e| panic!("{sens}: {e}"));
        let m = &file.modules[0];
        let always = m
            .items
            .iter()
            .find_map(|i| match i {
                Item::Always { body, .. } => Some(body),
                _ => None,
            })
            .expect("has always");
        match always {
            Stmt::EventControl { sensitivity, .. } => match (sens, sensitivity) {
                ("@*", Sensitivity::Star) | ("@(*)", Sensitivity::Star) => {}
                ("@*", _) | ("@(*)", _) => panic!("expected star for {sens}"),
                (_, Sensitivity::List(events)) => assert!(!events.is_empty()),
                (_, Sensitivity::Star) => panic!("unexpected star for {sens}"),
            },
            other => panic!("expected event control, got {other:?}"),
        }
    }
}

#[test]
fn parses_case_variants() {
    let src = r#"
        module m;
            reg [1:0] s;
            reg [3:0] q;
            always @(s)
                casez (s)
                    2'b0?: q = 4'd0;
                    2'b10, 2'b11: q = 4'd1;
                    default: q = 4'dx;
                endcase
        endmodule
    "#;
    let file = parse(src).unwrap();
    let m = &file.modules[0];
    let mut found = false;
    for s in visit::stmts_of_module(m) {
        if let Stmt::Case {
            kind,
            arms,
            default,
            ..
        } = s
        {
            assert_eq!(*kind, CaseKind::Casez);
            assert_eq!(arms.len(), 2);
            assert_eq!(arms[1].labels.len(), 2);
            assert!(default.is_some());
            found = true;
        }
    }
    assert!(found);
    assert_round_trip(src);
}

#[test]
fn parses_loops() {
    let src = r#"
        module m;
            integer i;
            reg [7:0] mem [0:15];
            initial begin
                for (i = 0; i < 16; i = i + 1) mem[i] = 8'd0;
                repeat (3) #5 ;
                while (i > 0) i = i - 1;
                forever #10 ;
            end
        endmodule
    "#;
    parse(src).unwrap();
    assert_round_trip(src);
}

#[test]
fn parses_delays_and_event_controls() {
    let src = r#"
        module tb;
            reg clk, reset;
            event reset_trigger, reset_done_trigger;
            always #5 clk = !clk;
            initial begin
                #10 -> reset_trigger;
                @(reset_done_trigger);
                @(negedge clk);
                reset = 1;
                reset = #2 0;
                wait (reset == 0) $display("done");
            end
        endmodule
    "#;
    let file = parse(src).unwrap();
    assert_eq!(file.modules[0].name, "tb");
    assert_round_trip(src);
}

#[test]
fn parses_nonblocking_with_delay() {
    let src = "module m; reg [3:0] q; always @(q) q <= #1 q + 1; endmodule";
    let file = parse(src).unwrap();
    let m = &file.modules[0];
    let has_nba_delay = visit::stmts_of_module(m)
        .iter()
        .any(|s| matches!(s, Stmt::NonBlocking { delay: Some(_), .. }));
    assert!(has_nba_delay);
    assert_round_trip(src);
}

#[test]
fn parses_instantiation_styles() {
    let src = r#"
        module top;
            wire [3:0] q;
            reg clk, rst;
            counter c0 (clk, rst, q);
            counter #(.WIDTH(4)) c1 (.clk(clk), .reset(rst), .q(q));
            counter c2 (.clk(clk), .reset(rst), .q());
        endmodule
    "#;
    let file = parse(src).unwrap();
    let m = &file.modules[0];
    let instances: Vec<_> = m
        .items
        .iter()
        .filter_map(|i| match i {
            Item::Instance(inst) => Some(inst),
            _ => None,
        })
        .collect();
    assert_eq!(instances.len(), 3);
    assert_eq!(instances[0].ports.len(), 3);
    assert!(instances[0].ports[0].name.is_none());
    assert_eq!(instances[1].params.len(), 1);
    assert_eq!(instances[1].ports[0].name.as_deref(), Some("clk"));
    assert!(instances[2].ports[2].expr.is_none());
    assert_round_trip(src);
}

#[test]
fn parses_expressions() {
    let src = r#"
        module m;
            wire [7:0] a, b;
            wire [15:0] w;
            wire x, y;
            assign w = {a, b};
            assign x = &a | ^b && !y;
            assign y = a[3] ^ b[7:4] === 4'bzzzz;
            assign a = y ? {2{b[3:0]}} : (b >> 2) + 8'h0f;
        endmodule
    "#;
    parse(src).unwrap();
    assert_round_trip(src);
}

#[test]
fn parses_concat_lvalue() {
    let src = "module m; reg c; reg [3:0] s; always @(s) {c, s} = s + 4'd9; endmodule";
    parse(src).unwrap();
    assert_round_trip(src);
}

#[test]
fn parses_system_tasks() {
    let src = r#"
        module tb;
            initial begin
                $display("t=%t q=%b", $time, 4'b1010);
                $monitor("%d", $time);
                $finish;
            end
        endmodule
    "#;
    parse(src).unwrap();
    assert_round_trip(src);
}

#[test]
fn parses_parameters_and_memories() {
    let src = r#"
        module m;
            parameter WIDTH = 8, DEPTH = 16;
            localparam HALF = WIDTH / 2;
            reg [WIDTH-1:0] mem [0:DEPTH-1];
            wire [HALF-1:0] lo;
        endmodule
    "#;
    let file = parse(src).unwrap();
    let params: Vec<_> = file.modules[0]
        .items
        .iter()
        .filter_map(|i| match i {
            Item::Param(p) => Some((p.name.as_str(), p.local)),
            _ => None,
        })
        .collect();
    assert_eq!(
        params,
        vec![("WIDTH", false), ("DEPTH", false), ("HALF", true)]
    );
    assert_round_trip(src);
}

#[test]
fn literal_values_survive_parsing() {
    let src = "module m; wire [3:0] w; assign w = 4'b1x0z; endmodule";
    let file = parse(src).unwrap();
    let m = &file.modules[0];
    let lit = visit::exprs_of_module(m)
        .into_iter()
        .find_map(|e| match e {
            Expr::Literal { value, .. } if value.has_unknown() => Some(value.clone()),
            _ => None,
        })
        .expect("has x/z literal");
    assert_eq!(lit.to_string(), "4'b1x0z");
}

#[test]
fn node_ids_are_unique_across_file() {
    let src = r#"
        module a; reg x; always @(x) x = !x; endmodule
        module b; reg y; initial y = 1'b1; endmodule
    "#;
    let file = parse(src).unwrap();
    let mut ids = Vec::new();
    visit::walk_source(&file, &mut |n| ids.push(n.id()));
    let len = ids.len();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), len, "all node ids must be unique");
}

#[test]
fn errors_carry_positions() {
    let err = parse("module m;\n  wire w\nendmodule").unwrap_err();
    assert!(err.line() >= 2, "error on line {} of decl", err.line());
    assert!(parse("module m; garbage!! endmodule").is_err());
    assert!(parse("module m; always fork endmodule").is_err());
    assert!(parse("module ; endmodule").is_err());
}

#[test]
fn rejects_keyword_as_identifier() {
    assert!(parse("module module; endmodule").is_err());
    assert!(parse("module m; wire case; endmodule").is_err());
}

#[test]
fn figure_1_counter_design_parses() {
    // The motivating example of the paper (Figure 1a, abridged).
    let src = r#"
        module counter (clk, reset, enable, counter_out, overflow_out);
            input clk, reset, enable;
            output [3:0] counter_out;
            output overflow_out;
            reg [3:0] counter_out;
            reg overflow_out;
            always @(posedge clk)
            begin : COUNTER
                if (reset == 1'b1) begin
                    counter_out <= #1 4'b0000;
                    overflow_out <= #1 1'b0;
                end
                else if (enable == 1'b1) begin
                    counter_out <= #1 counter_out + 1;
                end
                if (counter_out == 4'b1111) begin
                    overflow_out <= #1 1'b1;
                end
            end
        endmodule
    "#;
    let file = parse(src).unwrap();
    assert_eq!(file.modules[0].ports.len(), 5);
    assert_round_trip(src);
}

#[test]
fn figure_1_testbench_parses() {
    // The testbench of Figure 1b, abridged.
    let src = r#"
        module counter_tb;
            reg clk, reset, enable;
            wire [3:0] counter_out;
            wire overflow_out;
            event reset_trigger, reset_done_trigger, terminate_sim;
            counter dut (clk, reset, enable, counter_out, overflow_out);
            initial begin
                clk = 0; reset = 0; enable = 0;
            end
            always #5 clk = !clk;
            initial begin
                #5 ;
                forever begin
                    @(reset_trigger);
                    @(negedge clk);
                    reset = 1;
                    @(negedge clk);
                    reset = 0;
                    -> reset_done_trigger;
                end
            end
            initial begin
                #10 -> reset_trigger;
                @(reset_done_trigger);
                @(negedge clk);
                enable = 1;
                repeat (21) begin
                    @(negedge clk);
                end
                enable = 0;
                #5 -> terminate_sim;
            end
            initial begin
                @(terminate_sim);
                $finish;
            end
        endmodule
    "#;
    parse(src).unwrap();
    assert_round_trip(src);
}

#[test]
fn deep_expression_nesting_errors_instead_of_overflowing() {
    // 10k parens would overflow the call stack without the depth guard,
    // aborting the process in a way catch_unwind cannot contain.
    let deep = format!(
        "module m; wire w; assign w = {}1{}; endmodule",
        "(".repeat(10_000),
        ")".repeat(10_000)
    );
    let err = parse(&deep).unwrap_err();
    assert!(err.to_string().contains("nesting too deep"), "{err}");
}

#[test]
fn deep_statement_nesting_errors_instead_of_overflowing() {
    let deep = format!(
        "module m; reg r; initial {} r = 1; {} endmodule",
        "begin ".repeat(10_000),
        "end ".repeat(10_000)
    );
    let err = parse(&deep).unwrap_err();
    assert!(err.to_string().contains("nesting too deep"), "{err}");
}

#[test]
fn deep_unary_chain_errors_instead_of_overflowing() {
    let deep = format!(
        "module m; wire w; assign w = {}1; endmodule",
        "!".repeat(10_000)
    );
    assert!(parse(&deep).is_err());
    let deep_lvalue = format!(
        "module m; initial {}x{} = 1; endmodule",
        "{".repeat(10_000),
        "}".repeat(10_000)
    );
    assert!(parse(&deep_lvalue).is_err());
}

#[test]
fn moderate_nesting_still_parses() {
    // The guard must not reject designs with realistic nesting.
    let src = format!(
        "module m; wire w; assign w = {}1{}; endmodule",
        "(".repeat(25),
        ")".repeat(25)
    );
    parse(&src).unwrap();
    assert_round_trip(&src);
}

#[test]
fn bare_dollar_is_a_lex_error() {
    let err = parse("module m; initial $ ; endmodule").unwrap_err();
    assert!(err.to_string().contains("identifier after `$`"), "{err}");
}
