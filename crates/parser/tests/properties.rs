//! Property-based round-trip tests: generated ASTs survive
//! print → parse → print.

use cirfix_ast::{print, BinaryOp, Expr, NodeIdGen, UnaryOp};
use proptest::prelude::*;

fn arb_binop() -> impl Strategy<Value = BinaryOp> {
    prop_oneof![
        Just(BinaryOp::Add),
        Just(BinaryOp::Sub),
        Just(BinaryOp::Mul),
        Just(BinaryOp::Div),
        Just(BinaryOp::Rem),
        Just(BinaryOp::Eq),
        Just(BinaryOp::Neq),
        Just(BinaryOp::CaseEq),
        Just(BinaryOp::CaseNeq),
        Just(BinaryOp::Lt),
        Just(BinaryOp::Le),
        Just(BinaryOp::Gt),
        Just(BinaryOp::Ge),
        Just(BinaryOp::LogicAnd),
        Just(BinaryOp::LogicOr),
        Just(BinaryOp::BitAnd),
        Just(BinaryOp::BitOr),
        Just(BinaryOp::BitXor),
        Just(BinaryOp::BitXnor),
        Just(BinaryOp::Shl),
        Just(BinaryOp::Shr),
    ]
}

fn arb_unop() -> impl Strategy<Value = UnaryOp> {
    prop_oneof![
        Just(UnaryOp::LogicNot),
        Just(UnaryOp::BitNot),
        Just(UnaryOp::Minus),
        Just(UnaryOp::RedAnd),
        Just(UnaryOp::RedOr),
        Just(UnaryOp::RedXor),
        Just(UnaryOp::RedNand),
        Just(UnaryOp::RedNor),
        Just(UnaryOp::RedXnor),
    ]
}

/// Random expression trees over a small identifier alphabet.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0u64..256, 1usize..16).prop_map(|(v, w)| {
            let mut ids = NodeIdGen::new();
            Expr::literal_u64(&mut ids, v % (1 << w.min(16)), w)
        }),
        prop_oneof![Just("a"), Just("b"), Just("c"), Just("sel")].prop_map(|n| {
            let mut ids = NodeIdGen::new();
            Expr::ident(&mut ids, n)
        }),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (arb_binop(), inner.clone(), inner.clone()).prop_map(|(op, l, r)| {
                let mut ids = NodeIdGen::new();
                Expr::binary(&mut ids, op, l, r)
            }),
            (arb_unop(), inner.clone()).prop_map(|(op, a)| {
                let mut ids = NodeIdGen::new();
                Expr::unary(&mut ids, op, a)
            }),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, t, e)| Expr::Cond {
                id: 1,
                cond: Box::new(c),
                then_e: Box::new(t),
                else_e: Box::new(e),
            }),
        ]
    })
}

/// Strips node ids by printing — two ASTs are "equal modulo ids" when
/// they print identically.
fn printed(e: &Expr) -> String {
    print::expr_to_string(e)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// print → parse → print is a fixed point for generated expressions.
    #[test]
    fn expr_print_parse_round_trip(e in arb_expr()) {
        let text = printed(&e);
        // Embed in a module so the parser accepts it.
        let src = format!(
            "module m; wire [15:0] a, b, c, sel, y; assign y = {text}; endmodule"
        );
        let file = cirfix_parser::parse(&src)
            .unwrap_or_else(|err| panic!("reparse failed: {err}\nexpr: {text}"));
        let reprinted = print::source_to_string(&file);
        let file2 = cirfix_parser::parse(&reprinted).expect("fixed point parse");
        prop_assert_eq!(reprinted, print::source_to_string(&file2));
    }

    /// The printed expression preserves evaluation-relevant structure:
    /// reparsing and reprinting yields the same text (idempotence).
    #[test]
    fn expr_printing_is_idempotent(e in arb_expr()) {
        let text = printed(&e);
        let src = format!("module m; wire a, b, c, sel; wire y; assign y = {text}; endmodule");
        if let Ok(file) = cirfix_parser::parse(&src) {
            let again = print::source_to_string(&file);
            let file2 = cirfix_parser::parse(&again).expect("parses");
            prop_assert_eq!(again, print::source_to_string(&file2));
        }
    }

    /// Random identifier-ish strings never panic the lexer.
    #[test]
    fn lexer_never_panics(s in "[ -~]{0,60}") {
        let _ = cirfix_parser::tokenize(&s);
    }

    /// Random token soup never panics the parser.
    #[test]
    fn parser_never_panics(s in "[a-z0-9_\\[\\]:;=<>@#(){},.'\" ]{0,80}") {
        let _ = cirfix_parser::parse(&s);
    }
}
