//! Randomized round-trip tests: generated ASTs survive
//! print → parse → print.
//!
//! Formerly written with proptest; the build environment has no
//! crates.io access, so the generators are hand-rolled over a seeded
//! RNG — deterministic per build, random in shape.

use cirfix_ast::{print, BinaryOp, Expr, NodeIdGen, UnaryOp};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

const BINOPS: &[BinaryOp] = &[
    BinaryOp::Add,
    BinaryOp::Sub,
    BinaryOp::Mul,
    BinaryOp::Div,
    BinaryOp::Rem,
    BinaryOp::Eq,
    BinaryOp::Neq,
    BinaryOp::CaseEq,
    BinaryOp::CaseNeq,
    BinaryOp::Lt,
    BinaryOp::Le,
    BinaryOp::Gt,
    BinaryOp::Ge,
    BinaryOp::LogicAnd,
    BinaryOp::LogicOr,
    BinaryOp::BitAnd,
    BinaryOp::BitOr,
    BinaryOp::BitXor,
    BinaryOp::BitXnor,
    BinaryOp::Shl,
    BinaryOp::Shr,
];

const UNOPS: &[UnaryOp] = &[
    UnaryOp::LogicNot,
    UnaryOp::BitNot,
    UnaryOp::Minus,
    UnaryOp::RedAnd,
    UnaryOp::RedOr,
    UnaryOp::RedXor,
    UnaryOp::RedNand,
    UnaryOp::RedNor,
    UnaryOp::RedXnor,
];

fn arb_leaf(rng: &mut StdRng) -> Expr {
    let mut ids = NodeIdGen::new();
    if rng.gen_bool(0.5) {
        let v = rng.gen_range(0u64..256);
        let w = rng.gen_range(1usize..16);
        Expr::literal_u64(&mut ids, v % (1 << w.min(16)), w)
    } else {
        let name = *["a", "b", "c", "sel"].choose(rng).expect("non-empty");
        Expr::ident(&mut ids, name)
    }
}

/// Random expression trees over a small identifier alphabet, bounded in
/// depth.
fn arb_expr(rng: &mut StdRng, depth: usize) -> Expr {
    if depth == 0 {
        return arb_leaf(rng);
    }
    let mut ids = NodeIdGen::new();
    match rng.gen_range(0u32..4) {
        0 => arb_leaf(rng),
        1 => {
            let op = *BINOPS.choose(rng).expect("non-empty");
            let l = arb_expr(rng, depth - 1);
            let r = arb_expr(rng, depth - 1);
            Expr::binary(&mut ids, op, l, r)
        }
        2 => {
            let op = *UNOPS.choose(rng).expect("non-empty");
            Expr::unary(&mut ids, op, arb_expr(rng, depth - 1))
        }
        _ => Expr::Cond {
            id: 1,
            cond: Box::new(arb_expr(rng, depth - 1)),
            then_e: Box::new(arb_expr(rng, depth - 1)),
            else_e: Box::new(arb_expr(rng, depth - 1)),
        },
    }
}

/// Strips node ids by printing — two ASTs are "equal modulo ids" when
/// they print identically.
fn printed(e: &Expr) -> String {
    print::expr_to_string(e)
}

/// print → parse → print is a fixed point for generated expressions.
#[test]
fn expr_print_parse_round_trip() {
    let mut rng = StdRng::seed_from_u64(21);
    for _ in 0..200 {
        let e = arb_expr(&mut rng, 4);
        let text = printed(&e);
        // Embed in a module so the parser accepts it.
        let src = format!("module m; wire [15:0] a, b, c, sel, y; assign y = {text}; endmodule");
        let file = cirfix_parser::parse(&src)
            .unwrap_or_else(|err| panic!("reparse failed: {err}\nexpr: {text}"));
        let reprinted = print::source_to_string(&file);
        let file2 = cirfix_parser::parse(&reprinted).expect("fixed point parse");
        assert_eq!(reprinted, print::source_to_string(&file2));
    }
}

/// The printed expression preserves evaluation-relevant structure:
/// reparsing and reprinting yields the same text (idempotence).
#[test]
fn expr_printing_is_idempotent() {
    let mut rng = StdRng::seed_from_u64(22);
    for _ in 0..200 {
        let e = arb_expr(&mut rng, 4);
        let text = printed(&e);
        let src = format!("module m; wire a, b, c, sel; wire y; assign y = {text}; endmodule");
        if let Ok(file) = cirfix_parser::parse(&src) {
            let again = print::source_to_string(&file);
            let file2 = cirfix_parser::parse(&again).expect("parses");
            assert_eq!(again, print::source_to_string(&file2));
        }
    }
}

fn arb_string(rng: &mut StdRng, alphabet: &[u8], max_len: usize) -> String {
    let len = rng.gen_range(0usize..=max_len);
    (0..len)
        .map(|_| *alphabet.choose(rng).expect("non-empty") as char)
        .collect()
}

/// Random printable-ASCII strings never panic the lexer.
#[test]
fn lexer_never_panics() {
    let printable: Vec<u8> = (b' '..=b'~').collect();
    let mut rng = StdRng::seed_from_u64(23);
    for _ in 0..500 {
        let s = arb_string(&mut rng, &printable, 60);
        let _ = cirfix_parser::tokenize(&s);
    }
}

/// Random token soup never panics the parser.
#[test]
fn parser_never_panics() {
    let alphabet: Vec<u8> = (b'a'..=b'z')
        .chain(b'0'..=b'9')
        .chain(*b"_[]:;=<>@#(){},.'\" ")
        .collect();
    let mut rng = StdRng::seed_from_u64(24);
    for _ in 0..500 {
        let s = arb_string(&mut rng, &alphabet, 80);
        let _ = cirfix_parser::parse(&s);
    }
}
