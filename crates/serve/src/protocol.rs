//! The versioned JSON-lines wire protocol.
//!
//! One request per line, one (or, for `watch`, a stream of) response
//! line(s) per request, over a Unix or TCP socket. Requests carry a
//! protocol version `v`; the daemon rejects versions it does not speak
//! rather than guessing. The reader caps line length, recovers from
//! oversized and malformed input without dropping the connection, and
//! distinguishes a clean close from a truncated (newline-less) frame.
//!
//! Reusing the workspace's hand-rolled JSON — `cirfix-store`'s parser
//! for reading, `cirfix-telemetry`'s writer for writing — keeps the
//! daemon zero-dependency like everything else.
//!
//! ```text
//! → {"v":1,"verb":"submit","conf":"/abs/repair.conf","overrides":[["seed","7"]]}
//! ← {"v":1,"ok":true,"verb":"submit","job":"4f09a1d2e6b3","state":"queued"}
//! → {"v":1,"verb":"watch","job":"4f09a1d2e6b3","once":true}
//! ← {"v":1,"ok":true,"verb":"watch","job":"...","state":"running","event":{...}}
//! → {"v":1,"verb":"cancel","job":"4f09a1d2e6b3"}
//! ← {"v":1,"ok":true,"verb":"cancel","job":"...","state":"cancelled"}
//! ← {"v":1,"ok":false,"error":"unknown_verb","message":"no verb `frobnicate`"}
//! ```

use std::io::{self, BufRead};

use cirfix_store::{field, field_str, field_u64, parse_json};
use cirfix_telemetry::JsonValue;

/// The protocol version this build speaks.
pub const PROTOCOL_VERSION: u64 = 1;

/// Longest accepted request line, in bytes. A submit with overrides is
/// a few hundred bytes; anything near this cap is garbage or abuse.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// One parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a repair job: a config path plus CLI-style overrides.
    Submit {
        /// Path to the `repair.conf`, resolved by the daemon.
        conf: String,
        /// `(key, value)` config overrides, applied in order.
        overrides: Vec<(String, String)>,
    },
    /// Report one job (by id) or every known job.
    Status {
        /// Job id, or `None` for all jobs.
        job: Option<String>,
    },
    /// Stream heartbeat telemetry for a job until it reaches a
    /// terminal state (or just the latest snapshot, with `once`).
    Watch {
        /// Job id.
        job: String,
        /// Send one snapshot and stop instead of streaming.
        once: bool,
    },
    /// Stop a running (or dequeue a queued) job.
    Cancel {
        /// Job id.
        job: String,
    },
    /// Drain and stop the daemon: running jobs are interrupted at the
    /// next batch boundary and left resumable; queued jobs stay queued.
    Shutdown,
    /// Liveness probe.
    Ping,
}

/// A structured protocol-level error, sent back as
/// `{"ok":false,"error":<code>,"message":...}`.
#[derive(Debug, Clone, PartialEq)]
pub struct WireError {
    /// Stable machine-readable code (`bad_request`, `unknown_verb`,
    /// `oversized`, `unsupported_version`, `queue_full`,
    /// `unknown_job`, `shutting_down`).
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    /// Builds an error with the given code and message.
    pub fn new(code: &'static str, message: impl Into<String>) -> WireError {
        WireError {
            code,
            message: message.into(),
        }
    }
}

/// One framing outcome from [`read_frame`].
#[derive(Debug, PartialEq, Eq)]
pub enum Frame {
    /// A complete line (without its newline).
    Line(String),
    /// The line exceeded [`MAX_LINE_BYTES`]; it was consumed through
    /// its newline (or EOF) so the connection can keep serving.
    Oversized,
    /// The peer closed the connection cleanly (EOF at a line start).
    Eof,
    /// The connection died mid-line: bytes arrived but no newline.
    Truncated,
}

/// Reads one newline-delimited frame, enforcing the line-length cap.
///
/// # Errors
///
/// Propagates transport errors (other than EOF, which is a [`Frame`]).
pub fn read_frame<R: BufRead>(reader: &mut R, max: usize) -> io::Result<Frame> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let (found_newline, used) = {
            let available = match reader.fill_buf() {
                Ok(a) => a,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if available.is_empty() {
                return Ok(if buf.is_empty() {
                    Frame::Eof
                } else {
                    Frame::Truncated
                });
            }
            match available.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    buf.extend_from_slice(&available[..pos]);
                    (true, pos + 1)
                }
                None => {
                    buf.extend_from_slice(available);
                    (false, available.len())
                }
            }
        };
        reader.consume(used);
        if buf.len() > max {
            // Drain the rest of the oversized line so the next frame
            // starts clean, without buffering the garbage.
            let mut drained = found_newline;
            while !drained {
                let (done, used) = {
                    let available = reader.fill_buf()?;
                    if available.is_empty() {
                        return Ok(Frame::Oversized);
                    }
                    match available.iter().position(|&b| b == b'\n') {
                        Some(pos) => (true, pos + 1),
                        None => (false, available.len()),
                    }
                };
                reader.consume(used);
                drained = done;
            }
            return Ok(Frame::Oversized);
        }
        if found_newline {
            return Ok(Frame::Line(String::from_utf8_lossy(&buf).into_owned()));
        }
    }
}

fn str_pairs(v: &JsonValue) -> Option<Vec<(String, String)>> {
    let JsonValue::Array(items) = v else {
        return None;
    };
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        let JsonValue::Array(pair) = item else {
            return None;
        };
        match pair.as_slice() {
            [JsonValue::Str(k), JsonValue::Str(val)] => out.push((k.clone(), val.clone())),
            _ => return None,
        }
    }
    Some(out)
}

fn require_job(v: &JsonValue) -> Result<String, WireError> {
    field_str(v, "job")
        .map(str::to_string)
        .ok_or_else(|| WireError::new("bad_request", "missing string field `job`"))
}

/// Parses one request line.
///
/// # Errors
///
/// [`WireError`] with code `bad_request`, `unsupported_version`, or
/// `unknown_verb`; the connection stays usable after any of them.
pub fn parse_request(line: &str) -> Result<Request, WireError> {
    let v = parse_json(line).map_err(|e| WireError::new("bad_request", e))?;
    let version = field_u64(&v, "v")
        .ok_or_else(|| WireError::new("bad_request", "missing numeric field `v`"))?;
    if version != PROTOCOL_VERSION {
        return Err(WireError::new(
            "unsupported_version",
            format!("this daemon speaks v{PROTOCOL_VERSION}, request was v{version}"),
        ));
    }
    let verb = field_str(&v, "verb")
        .ok_or_else(|| WireError::new("bad_request", "missing string field `verb`"))?;
    match verb {
        "submit" => {
            let conf = field_str(&v, "conf")
                .map(str::to_string)
                .ok_or_else(|| WireError::new("bad_request", "missing string field `conf`"))?;
            let overrides = match field(&v, "overrides") {
                None => Vec::new(),
                Some(o) => str_pairs(o).ok_or_else(|| {
                    WireError::new(
                        "bad_request",
                        "`overrides` must be an array of [key, value] string pairs",
                    )
                })?,
            };
            Ok(Request::Submit { conf, overrides })
        }
        "status" => Ok(Request::Status {
            job: field_str(&v, "job").map(str::to_string),
        }),
        "watch" => Ok(Request::Watch {
            job: require_job(&v)?,
            once: matches!(field(&v, "once"), Some(JsonValue::Bool(true))),
        }),
        "cancel" => Ok(Request::Cancel {
            job: require_job(&v)?,
        }),
        "shutdown" => Ok(Request::Shutdown),
        "ping" => Ok(Request::Ping),
        other => Err(WireError::new("unknown_verb", format!("no verb `{other}`"))),
    }
}

/// Serializes a request — the client half of the wire format.
pub fn request_line(req: &Request) -> String {
    let mut pairs = vec![("v", JsonValue::Uint(PROTOCOL_VERSION))];
    match req {
        Request::Submit { conf, overrides } => {
            pairs.push(("verb", JsonValue::Str("submit".into())));
            pairs.push(("conf", JsonValue::Str(conf.clone())));
            if !overrides.is_empty() {
                pairs.push((
                    "overrides",
                    JsonValue::Array(
                        overrides
                            .iter()
                            .map(|(k, v)| {
                                JsonValue::Array(vec![
                                    JsonValue::Str(k.clone()),
                                    JsonValue::Str(v.clone()),
                                ])
                            })
                            .collect(),
                    ),
                ));
            }
        }
        Request::Status { job } => {
            pairs.push(("verb", JsonValue::Str("status".into())));
            if let Some(job) = job {
                pairs.push(("job", JsonValue::Str(job.clone())));
            }
        }
        Request::Watch { job, once } => {
            pairs.push(("verb", JsonValue::Str("watch".into())));
            pairs.push(("job", JsonValue::Str(job.clone())));
            if *once {
                pairs.push(("once", JsonValue::Bool(true)));
            }
        }
        Request::Cancel { job } => {
            pairs.push(("verb", JsonValue::Str("cancel".into())));
            pairs.push(("job", JsonValue::Str(job.clone())));
        }
        Request::Shutdown => pairs.push(("verb", JsonValue::Str("shutdown".into()))),
        Request::Ping => pairs.push(("verb", JsonValue::Str("ping".into()))),
    }
    JsonValue::obj(pairs).to_json()
}

/// Builds a success response line for `verb` with extra fields.
pub fn ok_line(verb: &str, fields: Vec<(&str, JsonValue)>) -> String {
    let mut pairs = vec![
        ("v", JsonValue::Uint(PROTOCOL_VERSION)),
        ("ok", JsonValue::Bool(true)),
        ("verb", JsonValue::Str(verb.into())),
    ];
    pairs.extend(fields);
    JsonValue::obj(pairs).to_json()
}

/// Builds the error response line for a [`WireError`].
pub fn err_line(e: &WireError) -> String {
    JsonValue::obj(vec![
        ("v", JsonValue::Uint(PROTOCOL_VERSION)),
        ("ok", JsonValue::Bool(false)),
        ("error", JsonValue::Str(e.code.into())),
        ("message", JsonValue::Str(e.message.clone())),
    ])
    .to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn request_lines_round_trip() {
        let reqs = [
            Request::Submit {
                conf: "/tmp/x.conf".into(),
                overrides: vec![("seed".into(), "7".into())],
            },
            Request::Submit {
                conf: "r.conf".into(),
                overrides: vec![],
            },
            Request::Status { job: None },
            Request::Status {
                job: Some("abc".into()),
            },
            Request::Watch {
                job: "abc".into(),
                once: true,
            },
            Request::Cancel { job: "abc".into() },
            Request::Shutdown,
            Request::Ping,
        ];
        for req in reqs {
            let line = request_line(&req);
            assert_eq!(parse_request(&line).unwrap(), req, "line: {line}");
        }
    }

    #[test]
    fn rejects_bad_versions_and_verbs() {
        let e = parse_request("{\"v\":2,\"verb\":\"ping\"}").unwrap_err();
        assert_eq!(e.code, "unsupported_version");
        let e = parse_request("{\"verb\":\"ping\"}").unwrap_err();
        assert_eq!(e.code, "bad_request");
        let e = parse_request("{\"v\":1,\"verb\":\"frobnicate\"}").unwrap_err();
        assert_eq!(e.code, "unknown_verb");
        let e = parse_request("not json at all").unwrap_err();
        assert_eq!(e.code, "bad_request");
    }

    #[test]
    fn frames_split_on_newlines_with_cap() {
        let data = b"short\n".to_vec();
        let mut r = BufReader::new(&data[..]);
        assert_eq!(read_frame(&mut r, 64).unwrap(), Frame::Line("short".into()));
        assert_eq!(read_frame(&mut r, 64).unwrap(), Frame::Eof);

        let mut big = vec![b'x'; 100];
        big.push(b'\n');
        big.extend_from_slice(b"after\n");
        let mut r = BufReader::new(&big[..]);
        assert_eq!(read_frame(&mut r, 64).unwrap(), Frame::Oversized);
        assert_eq!(read_frame(&mut r, 64).unwrap(), Frame::Line("after".into()));

        let torn = b"no newline".to_vec();
        let mut r = BufReader::new(&torn[..]);
        assert_eq!(read_frame(&mut r, 64).unwrap(), Frame::Truncated);
    }
}
