//! Job records: the daemon's unit of work and its persisted form.
//!
//! Every state transition is appended to the store's job registry
//! (`jobs/jobs.jsonl`); the *last* record per job id wins. On restart
//! the daemon folds the registry and re-enqueues every job that is not
//! in a terminal state — a SIGKILLed daemon therefore resumes its
//! in-flight jobs from their session checkpoints.

use std::collections::HashMap;

use cirfix_store::{field, field_str, field_u64};
use cirfix_telemetry::JsonValue;

/// The job state machine.
///
/// ```text
/// queued → running → plausible | failed        (terminal)
///              ↘ cancelled | interrupted        (resumable)
/// ```
///
/// `cancelled` (client asked) and `interrupted` (daemon shut down) are
/// deliberately *resumable*: the session checkpoint is intact, and a
/// daemon restarted over the same store picks the job back up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for a scheduler slot.
    Queued,
    /// Actively searching.
    Running,
    /// Finished with a plausible repair.
    Plausible,
    /// Finished without one (search exhausted, or the job errored —
    /// see [`JobRecord::detail`]).
    Failed,
    /// Stopped by a client `cancel`; resumable from its checkpoint.
    Cancelled,
    /// Stopped by daemon shutdown; resumable from its checkpoint.
    Interrupted,
}

impl JobState {
    /// The wire/registry spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Plausible => "plausible",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
            JobState::Interrupted => "interrupted",
        }
    }

    /// Parses the registry spelling.
    pub fn parse(s: &str) -> Option<JobState> {
        Some(match s {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "plausible" => JobState::Plausible,
            "failed" => JobState::Failed,
            "cancelled" => JobState::Cancelled,
            "interrupted" => JobState::Interrupted,
            _ => return None,
        })
    }

    /// Terminal states are never resumed or re-run by a restart.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Plausible | JobState::Failed)
    }
}

/// What a client submitted: a config path plus ordered overrides.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Path to the `repair.conf` (daemon-side).
    pub conf: String,
    /// `(key, value)` config overrides, applied in submission order.
    pub overrides: Vec<(String, String)>,
}

/// One job registry record — a full snapshot, not a delta, so folding
/// is simply "last record per id wins".
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Short job id: the first 12 hex digits of the session digest.
    pub id: String,
    /// Full session digest (hex) — names the session log in the store.
    pub session: String,
    /// The submitted work.
    pub spec: JobSpec,
    /// Current state.
    pub state: JobState,
    /// Admission sequence number; restart re-enqueues in this order so
    /// recovery preserves the original fairness rotation.
    pub seq: u64,
    /// Human-readable detail: final repair status, or the error that
    /// failed the job. Empty while queued/running.
    pub detail: String,
}

impl JobRecord {
    /// Serializes the record for the registry (and for `status`
    /// responses, which embed the same object).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("id", JsonValue::Str(self.id.clone())),
            ("session", JsonValue::Str(self.session.clone())),
            ("conf", JsonValue::Str(self.spec.conf.clone())),
            (
                "overrides",
                JsonValue::Array(
                    self.spec
                        .overrides
                        .iter()
                        .map(|(k, v)| {
                            JsonValue::Array(vec![
                                JsonValue::Str(k.clone()),
                                JsonValue::Str(v.clone()),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("state", JsonValue::Str(self.state.as_str().into())),
            ("seq", JsonValue::Uint(self.seq)),
            ("detail", JsonValue::Str(self.detail.clone())),
        ])
    }

    /// Deserializes a registry record; `None` for malformed records
    /// (skipped, like any other damaged store record).
    pub fn from_json(v: &JsonValue) -> Option<JobRecord> {
        let overrides = match field(v, "overrides") {
            Some(JsonValue::Array(items)) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    match item {
                        JsonValue::Array(pair) => match pair.as_slice() {
                            [JsonValue::Str(k), JsonValue::Str(val)] => {
                                out.push((k.clone(), val.clone()));
                            }
                            _ => return None,
                        },
                        _ => return None,
                    }
                }
                out
            }
            None => Vec::new(),
            Some(_) => return None,
        };
        Some(JobRecord {
            id: field_str(v, "id")?.to_string(),
            session: field_str(v, "session")?.to_string(),
            spec: JobSpec {
                conf: field_str(v, "conf")?.to_string(),
                overrides,
            },
            state: JobState::parse(field_str(v, "state")?)?,
            seq: field_u64(v, "seq")?,
            detail: field_str(v, "detail").unwrap_or_default().to_string(),
        })
    }
}

/// Folds raw registry records to the live view: last record per id
/// wins, result ordered by admission sequence.
pub fn fold_jobs(records: &[JsonValue]) -> Vec<JobRecord> {
    let mut latest: HashMap<String, JobRecord> = HashMap::new();
    for raw in records {
        if let Some(rec) = JobRecord::from_json(raw) {
            latest.insert(rec.id.clone(), rec);
        }
    }
    let mut out: Vec<JobRecord> = latest.into_values().collect();
    out.sort_by_key(|r| r.seq);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cirfix_store::parse_json;

    fn record(id: &str, state: JobState, seq: u64) -> JobRecord {
        JobRecord {
            id: id.into(),
            session: format!("{id}ffffffffffffffffffff"),
            spec: JobSpec {
                conf: "/tmp/r.conf".into(),
                overrides: vec![("seed".into(), "9".into())],
            },
            state,
            seq,
            detail: String::new(),
        }
    }

    #[test]
    fn record_round_trips_through_json() {
        let rec = record("abc123def456", JobState::Running, 3);
        let line = rec.to_json().to_json();
        let back = JobRecord::from_json(&parse_json(&line).unwrap()).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn fold_keeps_last_record_per_id_in_admission_order() {
        let raw: Vec<JsonValue> = [
            record("b", JobState::Queued, 2),
            record("a", JobState::Queued, 1),
            record("a", JobState::Running, 1),
            record("a", JobState::Plausible, 1),
            record("b", JobState::Running, 2),
        ]
        .iter()
        .map(JobRecord::to_json)
        .collect();
        let folded = fold_jobs(&raw);
        assert_eq!(folded.len(), 2);
        assert_eq!(
            (folded[0].id.as_str(), folded[0].state),
            ("a", JobState::Plausible)
        );
        assert_eq!(
            (folded[1].id.as_str(), folded[1].state),
            ("b", JobState::Running)
        );
    }

    #[test]
    fn malformed_records_are_skipped() {
        let raw = vec![
            parse_json("{\"id\":\"x\"}").unwrap(),
            record("ok", JobState::Queued, 1).to_json(),
        ];
        let folded = fold_jobs(&raw);
        assert_eq!(folded.len(), 1);
        assert_eq!(folded[0].id, "ok");
    }

    #[test]
    fn state_spellings_round_trip() {
        for state in [
            JobState::Queued,
            JobState::Running,
            JobState::Plausible,
            JobState::Failed,
            JobState::Cancelled,
            JobState::Interrupted,
        ] {
            assert_eq!(JobState::parse(state.as_str()), Some(state));
        }
        assert_eq!(JobState::parse("bogus"), None);
        assert!(JobState::Plausible.is_terminal());
        assert!(JobState::Failed.is_terminal());
        assert!(!JobState::Cancelled.is_terminal());
        assert!(!JobState::Interrupted.is_terminal());
    }
}
