//! Client side of the protocol: connect, send a verb, read responses.
//!
//! Used by the `cirfix submit/status/watch/cancel/shutdown` CLI verbs
//! and by the in-process tests and benchmarks.

use std::io::{self, BufReader, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;

use cirfix_store::{field_str, parse_json};
use cirfix_telemetry::JsonValue;

use crate::protocol::{read_frame, request_line, Frame, Request, MAX_LINE_BYTES};
use crate::server::ServeAddr;

enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    fn try_clone(&self) -> io::Result<Stream> {
        Ok(match self {
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
        })
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// One connection to a `cirfix serve` daemon.
pub struct Client {
    reader: BufReader<Stream>,
    writer: Stream,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Connection failures (daemon not running, wrong path, …).
    pub fn connect(addr: &ServeAddr) -> io::Result<Client> {
        let stream = match addr {
            ServeAddr::Unix(path) => Stream::Unix(UnixStream::connect(path)?),
            ServeAddr::Tcp(spec) => Stream::Tcp(TcpStream::connect(spec.as_str())?),
        };
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    fn send(&mut self, req: &Request) -> io::Result<()> {
        let line = request_line(req);
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Reads the next response line as parsed JSON.
    ///
    /// # Errors
    ///
    /// Transport errors; a closed or truncated connection surfaces as
    /// `UnexpectedEof`, unparseable response bytes as `InvalidData`.
    pub fn read_response(&mut self) -> io::Result<JsonValue> {
        match read_frame(&mut self.reader, MAX_LINE_BYTES)? {
            Frame::Line(line) => {
                parse_json(&line).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
            }
            Frame::Oversized => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "oversized response line",
            )),
            Frame::Eof | Frame::Truncated => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            )),
        }
    }

    /// Sends one request and reads one response.
    ///
    /// # Errors
    ///
    /// See [`Client::read_response`].
    pub fn request(&mut self, req: &Request) -> io::Result<JsonValue> {
        self.send(req)?;
        self.read_response()
    }

    /// Sends a `watch` request and hands every streamed line to
    /// `on_line` until the job finishes (`once` stops after the first
    /// snapshot). Returns the final line.
    ///
    /// # Errors
    ///
    /// See [`Client::read_response`]; the first error response line
    /// (e.g. `unknown_job`) is returned as the final line, not an
    /// error.
    pub fn watch(
        &mut self,
        job: &str,
        once: bool,
        mut on_line: impl FnMut(&JsonValue),
    ) -> io::Result<JsonValue> {
        self.send(&Request::Watch {
            job: job.to_string(),
            once,
        })?;
        loop {
            let line = self.read_response()?;
            on_line(&line);
            let failed = matches!(
                cirfix_store::field(&line, "ok"),
                Some(JsonValue::Bool(false))
            );
            let done = matches!(
                cirfix_store::field(&line, "done"),
                Some(JsonValue::Bool(true))
            );
            if failed || done || once {
                return Ok(line);
            }
        }
    }
}

/// Extracts the error message from a failed response line, or a
/// generic fallback.
pub fn response_error(line: &JsonValue) -> String {
    let code = field_str(line, "error").unwrap_or("error");
    match field_str(line, "message") {
        Some(msg) => format!("{code}: {msg}"),
        None => code.to_string(),
    }
}

/// Whether a response line reports success.
pub fn response_ok(line: &JsonValue) -> bool {
    matches!(cirfix_store::field(line, "ok"), Some(JsonValue::Bool(true)))
}
