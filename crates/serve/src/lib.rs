#![warn(missing_docs)]

//! Repair as a service: the `cirfix serve` daemon and its client.
//!
//! This crate turns the batch repair engine into a long-running
//! service without giving up the property the rest of the workspace is
//! built around: a daemon job produces **bit-identical** results (and
//! timing-free traces) to the equivalent standalone `cirfix repair`.
//!
//! * [`protocol`] — the versioned JSON-lines wire protocol (framing,
//!   parsing, response building), zero-dependency like everything
//!   else: `cirfix-store`'s JSON reader, `cirfix-telemetry`'s writer.
//! * [`job`] — the job state machine and its crash-safe registry
//!   records (`queued → running → plausible | failed`, with
//!   `cancelled`/`interrupted` as *resumable* stops).
//! * [`scheduler`] — admission control, the fair-share [`FairGate`]
//!   that time-slices the shared worker pool across sessions at
//!   candidate-batch granularity, per-job budgets, and restart
//!   recovery through the store.
//! * [`server`] / [`client`] — the Unix-socket (or TCP) daemon loop
//!   and the client used by `cirfix submit/status/watch/cancel/
//!   shutdown`.
//! * [`conf`] — `repair.conf` loading and the builders shared with the
//!   `cirfix` CLI.

pub mod client;
pub mod conf;
pub mod job;
pub mod protocol;
pub mod scheduler;
pub mod server;

pub use client::Client;
pub use conf::{Config, ConfigError};
pub use job::{JobRecord, JobSpec, JobState};
pub use protocol::{Request, WireError, MAX_LINE_BYTES, PROTOCOL_VERSION};
pub use scheduler::{FairGate, Progress, Scheduler, ServeOpts};
pub use server::{serve, ServeAddr};
