//! The multi-session scheduler: admission, fair-share dispatch,
//! budgets, and crash-safe job state.
//!
//! # Invariants
//!
//! * **Fairness is batch-granular.** Every active job must take a
//!   [`FairGate`] turn before dispatching one candidate batch to the
//!   worker pool, and turns rotate strictly round-robin across jobs.
//!   Candidate *generation* stays serial inside each job — that is what
//!   keeps each session RNG-faithful and bit-identical to a standalone
//!   `cirfix repair` — so the batch is the finest grain at which the
//!   pool can be shared without breaking determinism.
//! * **Every state transition is durable.** Jobs append a full snapshot
//!   record to the store's registry on admission, start, and
//!   completion; the last record per id wins. A SIGKILLed daemon
//!   restarted over the same store re-enqueues every non-terminal job,
//!   which then resumes from its session checkpoint.
//! * **Budgets clamp, never reshape.** Daemon-wide per-job caps
//!   (`max_evals_per_job`, `max_seconds_per_job`) only lower the
//!   submitted config's own limits, and are applied identically when
//!   computing the admission digest and when running — a job's identity
//!   never depends on *when* it ran.

use std::collections::{HashMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use cirfix::{
    apply_patch, problem_digest, repair_session, result_to_canonical_json, session_digest,
    BatchGate, Observer, RepairConfig, RepairProblem, RepairStatus, SearchControl,
};
use cirfix_store::{Lease, Store};
use cirfix_telemetry::{
    Event, FanoutSink, HeartbeatEvent, JsonLinesSink, TaggedJsonLinesSink, TelemetrySink,
    TimingFreeSink,
};

use crate::conf::{self, Config, ConfigError};
use crate::job::{fold_jobs, JobRecord, JobSpec, JobState};
use crate::protocol::WireError;

// ---------------------------------------------------------------------------
// Fair-share batch gate

/// How many recent turns the gate remembers for [`FairGate::turns`].
const TURN_LOG_CAP: usize = 4096;

#[derive(Default)]
struct GateState {
    /// Registered tickets in rotation order; the front holds the next
    /// turn.
    rotation: VecDeque<u64>,
    /// The ticket currently dispatching a batch, if any.
    busy: Option<u64>,
    /// Recent turn grants, oldest first (bounded by [`TURN_LOG_CAP`]).
    turns: Vec<u64>,
    next_ticket: u64,
}

/// Strict round-robin arbiter for the shared worker pool.
///
/// Jobs register a ticket; `acquire` blocks until the ticket is at the
/// front of the rotation and no batch is in flight, then `release`
/// moves it to the back. With every job acquiring once per candidate
/// batch, the pool time-slices across jobs at batch granularity in
/// registration order — deterministic given the arrival order, and
/// starvation-free by construction.
pub struct FairGate {
    state: Mutex<GateState>,
    cv: Condvar,
}

impl Default for FairGate {
    fn default() -> FairGate {
        FairGate::new()
    }
}

impl FairGate {
    /// An empty gate with no registered jobs.
    pub fn new() -> FairGate {
        FairGate {
            state: Mutex::new(GateState::default()),
            cv: Condvar::new(),
        }
    }

    /// Joins the rotation (at the back) and returns the new ticket.
    pub fn register(&self) -> u64 {
        let mut s = self.state.lock().expect("gate poisoned");
        let ticket = s.next_ticket;
        s.next_ticket += 1;
        s.rotation.push_back(ticket);
        self.cv.notify_all();
        ticket
    }

    /// Leaves the rotation; pending waiters are re-examined so the
    /// rotation never stalls on a departed job.
    pub fn deregister(&self, ticket: u64) {
        let mut s = self.state.lock().expect("gate poisoned");
        s.rotation.retain(|&t| t != ticket);
        if s.busy == Some(ticket) {
            s.busy = None;
        }
        self.cv.notify_all();
    }

    /// Blocks until it is `ticket`'s turn, or until `cancelled` trips.
    /// Returns whether the turn was actually taken — a cancelled
    /// acquire returns `false` without holding the slot, letting the
    /// engine reach its next cancellation check unimpeded.
    fn acquire(&self, ticket: u64, cancelled: &AtomicBool) -> bool {
        let mut s = self.state.lock().expect("gate poisoned");
        loop {
            if cancelled.load(Ordering::SeqCst) {
                return false;
            }
            if s.busy.is_none() && s.rotation.front() == Some(&ticket) {
                s.busy = Some(ticket);
                if s.turns.len() == TURN_LOG_CAP {
                    s.turns.remove(0);
                }
                s.turns.push(ticket);
                return true;
            }
            // The timeout is a backstop for a cancel that raced the
            // wait; [`FairGate::poke`] delivers the prompt wake-up.
            let (guard, _) = self
                .cv
                .wait_timeout(s, Duration::from_millis(100))
                .expect("gate poisoned");
            s = guard;
        }
    }

    /// Releases the in-flight slot and rotates the ticket to the back.
    fn release(&self, ticket: u64) {
        let mut s = self.state.lock().expect("gate poisoned");
        if s.busy == Some(ticket) {
            s.busy = None;
            if s.rotation.front() == Some(&ticket) {
                s.rotation.rotate_left(1);
            }
        }
        self.cv.notify_all();
    }

    /// Wakes all waiters (used after tripping a cancel flag).
    pub fn poke(&self) {
        self.cv.notify_all();
    }

    /// The recent turn-grant sequence, oldest first. Fairness tests
    /// assert strict alternation on this log.
    pub fn turns(&self) -> Vec<u64> {
        self.state.lock().expect("gate poisoned").turns.clone()
    }
}

/// One job's handle on the shared [`FairGate`], in the shape the
/// engine's [`BatchGate`] hook expects.
struct JobGate {
    gate: Arc<FairGate>,
    ticket: u64,
    cancelled: Arc<AtomicBool>,
    /// Whether the last `acquire` actually took the slot (a cancelled
    /// acquire does not, and its paired `release` must be a no-op).
    holding: AtomicBool,
}

impl BatchGate for JobGate {
    fn acquire(&self) {
        let got = self.gate.acquire(self.ticket, &self.cancelled);
        self.holding.store(got, Ordering::SeqCst);
    }

    fn release(&self) {
        if self.holding.swap(false, Ordering::SeqCst) {
            self.gate.release(self.ticket);
        }
    }
}

// ---------------------------------------------------------------------------
// Watch progress

#[derive(Default)]
struct ProgressState {
    version: u64,
    heartbeat: Option<HeartbeatEvent>,
    done: bool,
}

/// The latest heartbeat snapshot for one job, with change
/// notification — what a `watch` connection streams from.
#[derive(Default)]
pub struct Progress {
    state: Mutex<ProgressState>,
    cv: Condvar,
}

/// One observed progress snapshot: a change counter (for
/// [`Progress::wait_newer`]), the latest heartbeat if any arrived yet,
/// and whether the job has finished.
pub type ProgressSnapshot = (u64, Option<HeartbeatEvent>, bool);

impl Progress {
    fn publish(&self, heartbeat: HeartbeatEvent) {
        let mut s = self.state.lock().expect("progress poisoned");
        s.version += 1;
        s.heartbeat = Some(heartbeat);
        self.cv.notify_all();
    }

    fn finish(&self) {
        let mut s = self.state.lock().expect("progress poisoned");
        s.version += 1;
        s.done = true;
        self.cv.notify_all();
    }

    /// The current snapshot.
    pub fn snapshot(&self) -> ProgressSnapshot {
        let s = self.state.lock().expect("progress poisoned");
        (s.version, s.heartbeat.clone(), s.done)
    }

    /// Blocks until the version advances past `seen` (or the timeout
    /// elapses) and returns the then-current snapshot.
    pub fn wait_newer(&self, seen: u64, timeout: Duration) -> ProgressSnapshot {
        let s = self.state.lock().expect("progress poisoned");
        let (s, _) = self
            .cv
            .wait_timeout_while(s, timeout, |s| s.version == seen && !s.done)
            .expect("progress poisoned");
        (s.version, s.heartbeat.clone(), s.done)
    }
}

/// Telemetry sink that folds a job's heartbeat stream into its
/// [`Progress`] snapshot. Attaching it changes only what is *observed*,
/// never what the search does — daemon jobs stay bit-identical to
/// batch runs.
struct ProgressSink {
    progress: Arc<Progress>,
}

impl TelemetrySink for ProgressSink {
    fn record(&self, event: &Event) {
        if let Event::Heartbeat(h) = event {
            self.progress.publish(h.clone());
        }
    }
}

// ---------------------------------------------------------------------------
// Scheduler

/// Daemon-wide scheduler settings.
#[derive(Debug, Clone)]
pub struct ServeOpts {
    /// The shared persistent store: evaluations, session checkpoints,
    /// and the job registry all live here.
    pub store_dir: PathBuf,
    /// Concurrent running jobs (default 4).
    pub max_active: usize,
    /// Queued (admitted but not yet running) jobs beyond which new
    /// submissions are rejected with `queue_full` (default 16).
    pub max_queue: usize,
    /// Per-job cap on fitness evaluations; clamps (never raises) the
    /// submitted config's own `max_evals`.
    pub max_evals_per_job: Option<u64>,
    /// Per-job wall-clock cap in seconds; clamps the submitted
    /// config's own `timeout_s`.
    pub max_seconds_per_job: Option<u64>,
    /// Aggregate daemon trace: every job's telemetry, tagged with its
    /// job id, appended to this file. Per-job traces (the config's own
    /// `trace_out`) stay untagged and byte-identical to batch runs.
    pub trace_out: Option<PathBuf>,
    /// Background store-compaction cadence; `None` disables the sweep.
    pub gc_interval: Option<Duration>,
}

impl ServeOpts {
    /// Defaults for `store_dir`: 4 active jobs, a 16-deep queue, no
    /// budget caps, no aggregate trace, no background gc.
    pub fn new(store_dir: impl Into<PathBuf>) -> ServeOpts {
        ServeOpts {
            store_dir: store_dir.into(),
            max_active: 4,
            max_queue: 16,
            max_evals_per_job: None,
            max_seconds_per_job: None,
            trace_out: None,
            gc_interval: None,
        }
    }
}

struct JobEntry {
    record: JobRecord,
    /// Live control handle while running; `None` otherwise.
    control: Option<SearchControl>,
    /// The gate-side cancel flag paired with `control`.
    gate_cancel: Option<Arc<AtomicBool>>,
    progress: Arc<Progress>,
    /// Recovered jobs drop any `halt_after` override on re-run — the
    /// deterministic-kill rehearsal must not re-trip after the restart
    /// it rehearsed.
    strip_halt: bool,
}

struct SchedState {
    jobs: HashMap<String, JobEntry>,
    /// Admitted job ids waiting for a slot, in admission order.
    queue: VecDeque<String>,
    /// Currently running jobs.
    active: usize,
    next_seq: u64,
    /// Ticket → job id, for translating the gate's turn log.
    tickets: HashMap<u64, String>,
    workers: Vec<JoinHandle<()>>,
}

struct Inner {
    opts: ServeOpts,
    store: Store,
    /// Held for the daemon's lifetime so a concurrent gc never folds
    /// the registry out from under an append.
    _jobs_lease: Lease,
    /// Serializes registry appends across job threads.
    registry_lock: Mutex<()>,
    gate: Arc<FairGate>,
    aggregate: Option<Arc<Mutex<BufWriter<File>>>>,
    state: Mutex<SchedState>,
    /// Wakes the dispatcher (new work, freed slot, shutdown).
    work_cv: Condvar,
    /// Wakes `wait_idle` / `shutdown` (job finished).
    idle_cv: Condvar,
    shutting_down: AtomicBool,
}

impl Inner {
    fn append_registry(&self, record: &JobRecord) {
        let _guard = self.registry_lock.lock().expect("registry poisoned");
        // A failed append loses durability, not correctness: the
        // in-memory state machine stays right, and a restart simply
        // sees the previous snapshot.
        let _ = self.store.append_job(&record.to_json());
    }
}

/// The multi-session scheduler behind `cirfix serve`.
///
/// Owns the job table, the admission queue, the fair-share gate, and
/// the worker threads that drive [`repair_session`] — one per active
/// job, multiplexed over the evaluation pool at batch granularity.
pub struct Scheduler {
    inner: Arc<Inner>,
    dispatcher: Mutex<Option<JoinHandle<()>>>,
    gc: Mutex<Option<JoinHandle<()>>>,
}

impl Scheduler {
    /// Opens (or creates) the store, recovers every non-terminal job
    /// from the registry back into the queue, and starts the
    /// dispatcher (plus the background gc sweep, if configured).
    ///
    /// # Errors
    ///
    /// Store open/lease/registry I/O failures.
    pub fn new(opts: ServeOpts) -> io::Result<Scheduler> {
        let store = Store::open(&opts.store_dir)?;
        let jobs_lease = store.jobs_lease()?;
        let (raw, _health) = store.load_jobs()?;

        let mut state = SchedState {
            jobs: HashMap::new(),
            queue: VecDeque::new(),
            active: 0,
            next_seq: 0,
            tickets: HashMap::new(),
            workers: Vec::new(),
        };
        let mut requeued: Vec<JobRecord> = Vec::new();
        for mut record in fold_jobs(&raw) {
            state.next_seq = state.next_seq.max(record.seq + 1);
            let strip_halt = !record.state.is_terminal();
            if strip_halt {
                // Whatever the job was doing when the last daemon
                // died (queued, running, cancelled, interrupted), its
                // checkpoint is intact: queue it and let the session
                // layer resume it bit-identically.
                record.state = JobState::Queued;
                record.detail = "recovered after daemon restart".into();
                state.queue.push_back(record.id.clone());
                requeued.push(record.clone());
            }
            state.jobs.insert(
                record.id.clone(),
                JobEntry {
                    record,
                    control: None,
                    gate_cancel: None,
                    progress: Arc::new(Progress::default()),
                    strip_halt,
                },
            );
        }

        let aggregate = match &opts.trace_out {
            None => None,
            Some(path) => {
                // Append across daemon restarts: one continuous,
                // job-tagged history per store.
                let file = OpenOptions::new().create(true).append(true).open(path)?;
                Some(Arc::new(Mutex::new(BufWriter::new(file))))
            }
        };

        let inner = Arc::new(Inner {
            opts,
            store,
            _jobs_lease: jobs_lease,
            registry_lock: Mutex::new(()),
            gate: Arc::new(FairGate::new()),
            aggregate,
            state: Mutex::new(state),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            shutting_down: AtomicBool::new(false),
        });
        for record in requeued {
            inner.append_registry(&record);
        }

        let dispatcher = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || dispatch_loop(&inner))
        };
        let gc = inner.opts.gc_interval.map(|interval| {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || gc_loop(&inner, interval))
        });
        Ok(Scheduler {
            inner,
            dispatcher: Mutex::new(Some(dispatcher)),
            gc: Mutex::new(gc),
        })
    }

    /// Admits a job: loads and digests its configuration, dedups it
    /// against in-flight work, checks the queue bound, persists the
    /// admission, and wakes the dispatcher.
    ///
    /// Resubmitting an active job is idempotent (the existing record
    /// comes back); resubmitting a finished one re-enqueues it, which
    /// re-runs the session warm from the evaluation store.
    ///
    /// # Errors
    ///
    /// `shutting_down`, config errors as `bad_request`, or
    /// `queue_full`.
    pub fn submit(&self, spec: &JobSpec) -> Result<JobRecord, WireError> {
        if self.inner.shutting_down.load(Ordering::SeqCst) {
            return Err(WireError::new("shutting_down", "daemon is shutting down"));
        }
        let built = build_job(spec, &self.inner.opts, false)
            .map_err(|e| WireError::new("bad_request", e.to_string()))?;
        let session = built.session_hex;
        let id = session[..12].to_string();

        let mut s = self.inner.state.lock().expect("scheduler poisoned");
        if let Some(entry) = s.jobs.get(&id) {
            if !entry.record.state.is_terminal() {
                return Ok(entry.record.clone());
            }
        }
        if s.queue.len() >= self.inner.opts.max_queue {
            return Err(WireError::new(
                "queue_full",
                format!("queue limit {} reached", self.inner.opts.max_queue),
            ));
        }
        let seq = s.next_seq;
        s.next_seq += 1;
        let record = JobRecord {
            id: id.clone(),
            session,
            spec: spec.clone(),
            state: JobState::Queued,
            seq,
            detail: String::new(),
        };
        s.jobs.insert(
            id.clone(),
            JobEntry {
                record: record.clone(),
                control: None,
                gate_cancel: None,
                progress: Arc::new(Progress::default()),
                strip_halt: false,
            },
        );
        s.queue.push_back(id);
        drop(s);
        self.inner.append_registry(&record);
        self.inner.work_cv.notify_all();
        Ok(record)
    }

    /// All known jobs in admission order, or one by id.
    pub fn status(&self, id: Option<&str>) -> Vec<JobRecord> {
        let s = self.inner.state.lock().expect("scheduler poisoned");
        let mut records: Vec<JobRecord> = match id {
            Some(id) => s
                .jobs
                .get(id)
                .map(|e| e.record.clone())
                .into_iter()
                .collect(),
            None => s.jobs.values().map(|e| e.record.clone()).collect(),
        };
        records.sort_by_key(|r| r.seq);
        records
    }

    /// The progress stream for a job, if the job exists.
    pub fn progress(&self, id: &str) -> Option<(JobRecord, Arc<Progress>)> {
        let s = self.inner.state.lock().expect("scheduler poisoned");
        s.jobs
            .get(id)
            .map(|e| (e.record.clone(), Arc::clone(&e.progress)))
    }

    /// Cancels a job: dequeues it if still queued, or trips its cancel
    /// flag if running (the engine stops at the next candidate-batch
    /// boundary, leaving a resumable checkpoint). Idempotent on
    /// already-cancelled jobs.
    ///
    /// # Errors
    ///
    /// `unknown_job`, or `bad_request` for jobs already finished.
    pub fn cancel(&self, id: &str) -> Result<JobRecord, WireError> {
        let mut s = self.inner.state.lock().expect("scheduler poisoned");
        let entry = s
            .jobs
            .get_mut(id)
            .ok_or_else(|| WireError::new("unknown_job", format!("no job `{id}`")))?;
        match entry.record.state {
            JobState::Queued => {
                entry.record.state = JobState::Cancelled;
                entry.record.detail = "cancelled before start".into();
                entry.progress.finish();
                let record = entry.record.clone();
                s.queue.retain(|q| q != id);
                drop(s);
                self.inner.append_registry(&record);
                Ok(record)
            }
            JobState::Running => {
                if let Some(control) = &entry.control {
                    control.cancel();
                }
                if let Some(flag) = &entry.gate_cancel {
                    flag.store(true, Ordering::SeqCst);
                }
                // Report the requested state; the worker records the
                // durable transition when the engine actually stops.
                entry.record.state = JobState::Cancelled;
                entry.record.detail = "cancel requested".into();
                let record = entry.record.clone();
                drop(s);
                self.inner.gate.poke();
                Ok(record)
            }
            JobState::Cancelled => Ok(entry.record.clone()),
            state => Err(WireError::new(
                "bad_request",
                format!("job `{id}` already finished ({})", state.as_str()),
            )),
        }
    }

    /// Blocks until no job is queued or running. Test and bench
    /// convenience; the daemon itself never goes idle this way.
    pub fn wait_idle(&self) {
        let mut s = self.inner.state.lock().expect("scheduler poisoned");
        while s.active > 0 || !s.queue.is_empty() {
            let (guard, _) = self
                .inner
                .idle_cv
                .wait_timeout(s, Duration::from_millis(200))
                .expect("scheduler poisoned");
            s = guard;
        }
    }

    /// Recent batch turns as job ids, oldest first — the fairness
    /// tests assert strict alternation on this.
    pub fn turns(&self) -> Vec<String> {
        let tickets = self.inner.gate.turns();
        let s = self.inner.state.lock().expect("scheduler poisoned");
        tickets
            .into_iter()
            .filter_map(|t| s.tickets.get(&t).cloned())
            .collect()
    }

    /// Stops the daemon: refuses new work, interrupts every running
    /// job at its next batch boundary (leaving resumable checkpoints),
    /// and joins all worker threads. Queued jobs stay queued in the
    /// registry for the next daemon over this store.
    pub fn shutdown(&self) {
        self.inner.shutting_down.store(true, Ordering::SeqCst);
        self.inner.work_cv.notify_all();
        {
            let s = self.inner.state.lock().expect("scheduler poisoned");
            for entry in s.jobs.values() {
                if let Some(control) = &entry.control {
                    control.cancel();
                }
                if let Some(flag) = &entry.gate_cancel {
                    flag.store(true, Ordering::SeqCst);
                }
            }
        }
        self.inner.gate.poke();
        if let Some(handle) = self.dispatcher.lock().expect("scheduler poisoned").take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.gc.lock().expect("scheduler poisoned").take() {
            let _ = handle.join();
        }
        loop {
            let worker = {
                let mut s = self.inner.state.lock().expect("scheduler poisoned");
                s.workers.pop()
            };
            match worker {
                Some(handle) => {
                    let _ = handle.join();
                }
                None => break,
            }
        }
        if let Some(aggregate) = &self.inner.aggregate {
            use std::io::Write;
            let _ = aggregate.lock().expect("sink poisoned").flush();
        }
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutting_down.load(Ordering::SeqCst)
    }
}

fn dispatch_loop(inner: &Arc<Inner>) {
    loop {
        let id = {
            let mut s = inner.state.lock().expect("scheduler poisoned");
            loop {
                if inner.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                if s.active < inner.opts.max_active {
                    if let Some(id) = s.queue.pop_front() {
                        s.active += 1;
                        break id;
                    }
                }
                let (guard, _) = inner
                    .work_cv
                    .wait_timeout(s, Duration::from_millis(200))
                    .expect("scheduler poisoned");
                s = guard;
            }
        };
        let worker = {
            let inner = Arc::clone(inner);
            std::thread::spawn(move || run_job(&inner, &id))
        };
        inner
            .state
            .lock()
            .expect("scheduler poisoned")
            .workers
            .push(worker);
    }
}

fn gc_loop(inner: &Arc<Inner>, interval: Duration) {
    let tick = Duration::from_millis(50);
    loop {
        // Sleep in short ticks so shutdown stays responsive.
        let mut waited = Duration::ZERO;
        while waited < interval {
            if inner.shutting_down.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(tick.min(interval - waited));
            waited += tick;
        }
        if inner.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        // Live writers are protected by their leases; everything else
        // compacts underneath the running jobs.
        let _ = inner.store.gc();
    }
}

/// Everything derived from one job spec: the problem, the clamped
/// repair config, the trial count, and the session identity.
struct BuiltJob {
    config: Config,
    problem: RepairProblem,
    repair: RepairConfig,
    trials: u32,
    session_hex: String,
}

fn build_job(spec: &JobSpec, opts: &ServeOpts, strip_halt: bool) -> Result<BuiltJob, ConfigError> {
    let mut config = Config::load(std::path::Path::new(&spec.conf))?;
    for (key, value) in &spec.overrides {
        config.set(key, value);
    }
    if strip_halt {
        config.unset("halt_after");
    }
    let problem = conf::build_problem(&config)?;
    let mut repair = conf::repair_config(&config)?;
    if let Some(cap) = opts.max_evals_per_job {
        repair.max_fitness_evals = repair.max_fitness_evals.min(cap);
    }
    if let Some(cap) = opts.max_seconds_per_job {
        repair.timeout = repair.timeout.min(Duration::from_secs(cap));
    }
    let trials: u32 = config.num_or("trials", 3u32)?;
    let scenario = problem_digest(&problem, &repair);
    let session_hex = session_digest(scenario, &repair, trials).to_hex();
    Ok(BuiltJob {
        config,
        problem,
        repair,
        trials,
        session_hex,
    })
}

/// Builds the job's observer: its config's own (untagged, batch-
/// identical) trace, the daemon's job-tagged aggregate trace, and the
/// in-memory progress snapshot for `watch`.
fn job_observer(
    built: &BuiltJob,
    job_id: &str,
    aggregate: Option<&Arc<Mutex<BufWriter<File>>>>,
    progress: &Arc<Progress>,
) -> Result<Observer, ConfigError> {
    let mut sinks: Vec<Box<dyn TelemetrySink>> = Vec::new();
    if let Ok(path) = built.config.required("trace_out") {
        let sink = JsonLinesSink::create(std::path::Path::new(path))
            .map_err(|e| ConfigError(format!("cannot open {path}: {e}")))?;
        match built.config.string_or("trace_timing", "wall").as_str() {
            "wall" => sinks.push(Box::new(sink)),
            "off" => sinks.push(Box::new(TimingFreeSink::new(sink))),
            other => {
                return Err(ConfigError(format!(
                    "trace_timing must be `wall` or `off`, got `{other}`"
                )))
            }
        }
    }
    if let Some(writer) = aggregate {
        sinks.push(Box::new(TaggedJsonLinesSink::new(
            "job",
            job_id,
            Arc::clone(writer),
        )));
    }
    sinks.push(Box::new(ProgressSink {
        progress: Arc::clone(progress),
    }));
    Ok(Observer::new(Arc::new(FanoutSink::new(sinks))))
}

fn run_job(inner: &Arc<Inner>, id: &str) {
    // Mark running and fish out the job's spec under the lock.
    let (spec, strip_halt, progress) = {
        let mut s = inner.state.lock().expect("scheduler poisoned");
        let Some(entry) = s.jobs.get_mut(id) else {
            s.active -= 1;
            inner.idle_cv.notify_all();
            return;
        };
        entry.record.state = JobState::Running;
        entry.record.detail = String::new();
        let out = (
            entry.record.spec.clone(),
            entry.strip_halt,
            Arc::clone(&entry.progress),
        );
        let record = entry.record.clone();
        drop(s);
        inner.append_registry(&record);
        out
    };

    let outcome = catch_unwind(AssertUnwindSafe(|| {
        execute_job(inner, id, &spec, strip_halt, &progress)
    }));
    let (state, detail) = match outcome {
        Ok((state, detail)) => (state, detail),
        Err(_) => (JobState::Failed, "job thread panicked".to_string()),
    };

    let record = {
        let mut s = inner.state.lock().expect("scheduler poisoned");
        s.active -= 1;
        let Some(entry) = s.jobs.get_mut(id) else {
            inner.idle_cv.notify_all();
            return;
        };
        entry.record.state = state;
        entry.record.detail = detail;
        entry.control = None;
        entry.gate_cancel = None;
        entry.progress.finish();
        entry.record.clone()
    };
    inner.append_registry(&record);
    inner.work_cv.notify_all();
    inner.idle_cv.notify_all();
}

/// The job body: build, register with the gate, run the session, map
/// the result onto the job state machine, and write the artifacts.
fn execute_job(
    inner: &Arc<Inner>,
    id: &str,
    spec: &JobSpec,
    strip_halt: bool,
    progress: &Arc<Progress>,
) -> (JobState, String) {
    let built = match build_job(spec, &inner.opts, strip_halt) {
        Ok(b) => b,
        Err(e) => return (JobState::Failed, e.to_string()),
    };
    let observer = match job_observer(&built, id, inner.aggregate.as_ref(), progress) {
        Ok(o) => o,
        Err(e) => return (JobState::Failed, e.to_string()),
    };

    let gate_cancel = Arc::new(AtomicBool::new(false));
    let ticket = inner.gate.register();
    let control = SearchControl::with_gate(Arc::new(JobGate {
        gate: Arc::clone(&inner.gate),
        ticket,
        cancelled: Arc::clone(&gate_cancel),
        holding: AtomicBool::new(false),
    }));
    {
        let mut s = inner.state.lock().expect("scheduler poisoned");
        s.tickets.insert(ticket, id.to_string());
        if let Some(entry) = s.jobs.get_mut(id) {
            entry.control = Some(control.clone());
            entry.gate_cancel = Some(Arc::clone(&gate_cancel));
            // A cancel (or shutdown) that raced the startup applies now.
            if inner.shutting_down.load(Ordering::SeqCst)
                || entry.record.state == JobState::Cancelled
            {
                control.cancel();
                gate_cancel.store(true, Ordering::SeqCst);
            }
        }
    }

    let mut repair = built.repair.clone();
    repair.observer = observer.clone();
    repair.control = control.clone();
    let result = repair_session(
        &built.problem,
        &repair,
        built.trials,
        &inner.opts.store_dir,
        true,
    );
    observer.flush();
    inner.gate.deregister(ticket);

    let (state, detail) = match &result {
        Err(e) => (JobState::Failed, e.to_string()),
        Ok(r) if r.status == RepairStatus::Interrupted => {
            if control.is_cancelled() {
                if inner.shutting_down.load(Ordering::SeqCst) {
                    (
                        JobState::Interrupted,
                        format!(
                            "interrupted by shutdown at generation {} — resumable",
                            r.generations
                        ),
                    )
                } else {
                    (
                        JobState::Cancelled,
                        format!("cancelled at generation {} — resumable", r.generations),
                    )
                }
            } else {
                // A configured halt_after tripped: the deterministic
                // stand-in for a crash. Resumable, like the real thing.
                (
                    JobState::Interrupted,
                    format!("halted at generation {} — resumable", r.generations),
                )
            }
        }
        Ok(r) if r.is_plausible() => (JobState::Plausible, "plausible repair found".into()),
        Ok(r) => (JobState::Failed, format!("{:?}", r.status)),
    };

    // Artifacts mirror `cirfix repair`: the canonical result JSON and,
    // on success, the repaired design.
    if let Ok(r) = &result {
        if state == JobState::Plausible || state == JobState::Failed {
            if let Ok(path) = built.config.required("result_out") {
                let json = result_to_canonical_json(r).to_json();
                let _ = std::fs::write(path, format!("{json}\n"));
            }
        }
        if state == JobState::Plausible {
            let out_path = built.config.string_or("output", "repaired.v");
            match &r.repaired_source {
                Some(source) => {
                    let _ = std::fs::write(&out_path, source);
                }
                None => {
                    let (repaired, _) = apply_patch(
                        &built.problem.source,
                        &built.problem.design_modules,
                        &r.patch,
                    );
                    let _ =
                        std::fs::write(&out_path, cirfix_ast::print::source_to_string(&repaired));
                }
            }
        }
    }
    (state, detail)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fair_gate_rotates_strictly_round_robin() {
        let gate = Arc::new(FairGate::new());
        let a = gate.register();
        let b = gate.register();
        let mut handles = Vec::new();
        for ticket in [a, b] {
            let gate = Arc::clone(&gate);
            handles.push(std::thread::spawn(move || {
                let cancel = AtomicBool::new(false);
                for _ in 0..8 {
                    assert!(gate.acquire(ticket, &cancel));
                    gate.release(ticket);
                }
                gate.deregister(ticket);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let turns = gate.turns();
        assert_eq!(turns.len(), 16);
        // Registration order fixes who goes first; after that the
        // rotation alternates strictly.
        for pair in turns.chunks(2) {
            assert_eq!(pair, [a, b], "log was {turns:?}");
        }
    }

    #[test]
    fn cancelled_acquire_returns_without_holding() {
        let gate = Arc::new(FairGate::new());
        let a = gate.register();
        let b = gate.register();
        let cancel_a = AtomicBool::new(false);
        // `b` is registered but never acquires, so after `a`'s first
        // turn the rotation fronts `b` and `a` must wait — until its
        // cancel flag trips.
        assert!(gate.acquire(a, &cancel_a));
        gate.release(a);
        cancel_a.store(true, Ordering::SeqCst);
        gate.poke();
        assert!(!gate.acquire(a, &cancel_a));
        // A release paired with a failed acquire must not disturb the
        // rotation: `b` still acquires instantly.
        let job_gate = JobGate {
            gate: Arc::clone(&gate),
            ticket: a,
            cancelled: Arc::new(AtomicBool::new(true)),
            holding: AtomicBool::new(false),
        };
        BatchGate::acquire(&job_gate);
        BatchGate::release(&job_gate);
        let cancel_b = AtomicBool::new(false);
        assert!(gate.acquire(b, &cancel_b));
        gate.release(b);
    }

    #[test]
    fn departed_jobs_unblock_the_rotation() {
        let gate = Arc::new(FairGate::new());
        let a = gate.register();
        let b = gate.register();
        // `a` leaves without ever taking a turn; `b` must proceed.
        gate.deregister(a);
        let cancel = AtomicBool::new(false);
        assert!(gate.acquire(b, &cancel));
        gate.release(b);
    }

    #[test]
    fn progress_versions_and_terminates() {
        let p = Progress::default();
        let (v0, hb, done) = p.snapshot();
        assert!(hb.is_none() && !done);
        p.publish(HeartbeatEvent {
            status: "search".into(),
            generation: 3,
            ..HeartbeatEvent::default()
        });
        let (v1, hb, done) = p.wait_newer(v0, Duration::from_secs(1));
        assert!(v1 > v0 && !done);
        assert_eq!(hb.unwrap().generation, 3);
        p.finish();
        let (_, _, done) = p.wait_newer(v1, Duration::from_secs(1));
        assert!(done);
    }

    #[test]
    fn progress_sink_captures_heartbeats_only() {
        let progress = Arc::new(Progress::default());
        let sink = ProgressSink {
            progress: Arc::clone(&progress),
        };
        sink.record(&Event::Heartbeat(HeartbeatEvent {
            status: "search".into(),
            generation: 7,
            ..HeartbeatEvent::default()
        }));
        sink.record(&Event::Phase(cirfix_telemetry::PhaseEvent {
            name: "parse".into(),
            count: 1,
            nanos: 1,
        }));
        let (_, hb, _) = progress.snapshot();
        assert_eq!(hb.unwrap().generation, 7);
    }

    #[test]
    fn serve_opts_defaults_admit_documented_limits() {
        let opts = ServeOpts::new("/tmp/x");
        assert_eq!((opts.max_active, opts.max_queue), (4, 16));
        assert!(opts.max_evals_per_job.is_none() && opts.max_seconds_per_job.is_none());
    }
}
