//! The `repair.conf` format and the builders that turn a parsed config
//! into a [`RepairProblem`] / [`RepairConfig`].
//!
//! This module used to live in the CLI; the daemon moved it here so
//! `cirfix serve` can build jobs from the same config files (and the
//! same `--key value` override syntax) that `cirfix repair` takes —
//! submitting a conf to the daemon and running it in batch mode are,
//! by construction, the same computation.
//!
//! The format is simple `key = value` lines, mirroring the
//! configuration file of the paper's artifact (§A.4).

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::time::Duration;

use cirfix::{
    oracle_from_golden, FaultInjector, FaultPlan, FitnessParams, RepairConfig, RepairProblem,
};
use cirfix_ast::SourceFile;
use cirfix_sim::{ProbeSpec, SimConfig};

/// A parsed repair configuration file.
///
/// Recognized keys:
///
/// | key | meaning | default |
/// |---|---|---|
/// | `design` | path to the faulty design (required) | — |
/// | `golden` | path to a known-good design for the oracle (required) | — |
/// | `testbench` | path to the testbench (required) | — |
/// | `top` | testbench top module (required) | — |
/// | `design_modules` | comma-separated repairable modules (required) | — |
/// | `probe_signals` | comma-separated recorded signals (required) | — |
/// | `probe_start` | first sample time | `5` |
/// | `probe_period` | sampling period | `10` |
/// | `max_time` | simulation time bound | `100000` |
/// | `popn_size` | GP population size | `300` |
/// | `max_generations` | GP generations | `8` |
/// | `trials` | independent trials | `3` |
/// | `seed` | base random seed | `1` |
/// | `timeout_s` | wall clock per trial (seconds) | `120` |
/// | `max_evals` | fitness evaluations per trial | `6000` |
/// | `phi` | x/z penalty weight | `2.0` |
/// | `jobs` | evaluation worker threads; `0` = auto (`$CIRFIX_JOBS`, else all cores) | `0` |
/// | `batch_size` | candidates per parallel dispatch | `32` |
/// | `eval_timeout` | per-candidate wall-clock budget in seconds (fractions allowed); `0` = unbudgeted | `0` |
/// | `sim_step_limit` | cap on total simulator operations per candidate | simulator default |
/// | `chaos` | deterministic fault-injection spec, e.g. `panic@5,storefail@2,transient` | off |
/// | `mined_patterns` | patterns file from `cirfix mine`; enables learned templates + mutation prior | off |
/// | `output` | where to write the repaired design | `repaired.v` |
/// | `trace_out` | stream telemetry events as JSON lines to this path | off |
/// | `trace_timing` | `wall` records real durations; `off` scrubs them for byte-reproducible traces | `wall` |
/// | `metrics` | print an aggregate telemetry summary at the end | `false` |
/// | `store` | persistent store directory, cwd-relative (enables write-through cache, checkpoints, corpus) | off |
/// | `resume` | continue an interrupted session from its last checkpoint | `false` |
/// | `halt_after` | stop right after checkpointing generation N (deterministic kill stand-in) | off |
/// | `result_out` | where to write the canonical, timing-free result JSON | off |
#[derive(Debug, Clone, Default)]
pub struct Config {
    values: HashMap<String, String>,
    base_dir: PathBuf,
}

/// A configuration error with context.
#[derive(Debug)]
pub struct ConfigError(pub String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "config error: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// Parses `text`, resolving relative paths against `base_dir`.
    ///
    /// # Errors
    ///
    /// Returns an error for lines that are not comments, blanks, or
    /// `key = value` pairs.
    pub fn parse(text: &str, base_dir: &Path) -> Result<Config, ConfigError> {
        let mut values = HashMap::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') || line.starts_with("//") {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ConfigError(format!(
                    "line {}: expected `key = value`, got `{line}`",
                    lineno + 1
                )));
            };
            values.insert(key.trim().to_string(), value.trim().to_string());
        }
        Ok(Config {
            values,
            base_dir: base_dir.to_path_buf(),
        })
    }

    /// Loads and parses a configuration file.
    ///
    /// # Errors
    ///
    /// I/O and syntax errors.
    pub fn load(path: &Path) -> Result<Config, ConfigError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ConfigError(format!("cannot read {}: {e}", path.display())))?;
        let base = path.parent().unwrap_or_else(|| Path::new("."));
        Config::parse(&text, base)
    }

    /// Overrides a key (used for `--key value` command-line overrides).
    pub fn set(&mut self, key: &str, value: &str) {
        self.values.insert(key.to_string(), value.to_string());
    }

    /// Removes a key, exposing the default again.
    pub fn unset(&mut self, key: &str) {
        self.values.remove(key);
    }

    /// A required string value.
    ///
    /// # Errors
    ///
    /// Missing key.
    pub fn required(&self, key: &str) -> Result<&str, ConfigError> {
        self.values
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| ConfigError(format!("missing required key `{key}`")))
    }

    /// An optional string with a default.
    pub fn string_or(&self, key: &str, default: &str) -> String {
        self.values
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// A numeric value with a default.
    ///
    /// # Errors
    ///
    /// Unparseable numbers.
    pub fn num_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ConfigError> {
        match self.values.get(key) {
            Some(v) => v
                .parse()
                .map_err(|_| ConfigError(format!("key `{key}`: bad number `{v}`"))),
            None => Ok(default),
        }
    }

    /// A boolean flag: `true`/`1`/`yes` count as set.
    pub fn flag(&self, key: &str) -> bool {
        matches!(self.string_or(key, "false").as_str(), "true" | "1" | "yes")
    }

    /// A required path, resolved against the config file's directory.
    ///
    /// # Errors
    ///
    /// Missing key.
    pub fn path(&self, key: &str) -> Result<PathBuf, ConfigError> {
        let raw = self.required(key)?;
        let p = Path::new(raw);
        Ok(if p.is_absolute() {
            p.to_path_buf()
        } else {
            self.base_dir.join(p)
        })
    }

    /// A comma-separated list.
    ///
    /// # Errors
    ///
    /// Missing key.
    pub fn list(&self, key: &str) -> Result<Vec<String>, ConfigError> {
        Ok(self
            .required(key)?
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect())
    }
}

/// Config keys that are valueless switches in `--key` override syntax;
/// everything else is a `--key value` pair.
pub const BOOL_FLAGS: &[&str] = &["metrics", "static_filter", "lint_prior", "resume"];

/// Applies `--key value` (and bare `--flag` for [`BOOL_FLAGS`])
/// overrides to `config`. `cirfix repair` and `cirfix submit` share
/// this, so a submitted job accepts exactly the batch CLI's syntax.
///
/// # Errors
///
/// Malformed switches and missing values.
pub fn apply_overrides(config: &mut Config, overrides: &[String]) -> Result<(), ConfigError> {
    let mut i = 0;
    while i < overrides.len() {
        let key = overrides[i]
            .strip_prefix("--")
            .ok_or_else(|| ConfigError(format!("expected --key, got `{}`", overrides[i])))?;
        // `--trace-out` and `trace_out` name the same config key.
        let key = key.replace('-', "_");
        if BOOL_FLAGS.contains(&key.as_str()) {
            config.set(&key, "true");
            i += 1;
            continue;
        }
        let value = overrides
            .get(i + 1)
            .ok_or_else(|| ConfigError(format!("--{key} needs a value")))?;
        config.set(&key, value);
        i += 2;
    }
    Ok(())
}

/// Parses the `design` and `testbench` sources named by `config`.
///
/// # Errors
///
/// I/O and parse errors.
pub fn load_sources(config: &Config) -> Result<(SourceFile, SourceFile), ConfigError> {
    let read = |key: &str| -> Result<String, ConfigError> {
        let path = config.path(key)?;
        std::fs::read_to_string(&path)
            .map_err(|e| ConfigError(format!("cannot read {}: {e}", path.display())))
    };
    let design = cirfix_parser::parse(&read("design")?).map_err(|e| ConfigError(e.to_string()))?;
    let testbench =
        cirfix_parser::parse(&read("testbench")?).map_err(|e| ConfigError(e.to_string()))?;
    Ok((design, testbench))
}

/// Builds the full [`RepairProblem`] — parsed sources, probe spec, and
/// the oracle simulated from the golden design — from a config.
///
/// # Errors
///
/// Missing keys, unreadable or unparseable sources, oracle failures.
pub fn build_problem(config: &Config) -> Result<RepairProblem, ConfigError> {
    let (design, testbench) = load_sources(config)?;
    let top = config.required("top")?.to_string();
    let design_modules = config.list("design_modules")?;
    let probe = ProbeSpec::periodic(
        config.list("probe_signals")?,
        config.num_or("probe_start", 5u64)?,
        config.num_or("probe_period", 10u64)?,
    );
    let mut sim = SimConfig {
        max_time: config.num_or("max_time", 100_000u64)?,
        ..SimConfig::default()
    };
    if config.required("sim_step_limit").is_ok() {
        sim.max_total_ops = config.num_or("sim_step_limit", sim.max_total_ops)?;
    }

    let golden_path = config.path("golden")?;
    let golden_text = std::fs::read_to_string(&golden_path)
        .map_err(|e| ConfigError(format!("cannot read {}: {e}", golden_path.display())))?;
    let mut golden = cirfix_parser::parse(&golden_text).map_err(|e| ConfigError(e.to_string()))?;
    golden.extend_from(testbench.clone());
    let oracle =
        oracle_from_golden(&golden, &top, &probe, &sim).map_err(|e| ConfigError(e.to_string()))?;

    let mut source = design;
    source.extend_from(testbench);
    Ok(RepairProblem {
        source,
        top,
        design_modules,
        probe,
        oracle,
        sim,
    })
}

/// Builds the search parameters from a config (everything except the
/// observer and control, which depend on the execution mode).
///
/// # Errors
///
/// Unparseable numeric values or chaos specs.
pub fn repair_config(config: &Config) -> Result<RepairConfig, ConfigError> {
    let mut rc = RepairConfig::fast(config.num_or("seed", 1u64)?);
    rc.popn_size = config.num_or("popn_size", rc.popn_size)?;
    rc.max_generations = config.num_or("max_generations", rc.max_generations)?;
    rc.max_fitness_evals = config.num_or("max_evals", rc.max_fitness_evals)?;
    rc.timeout = Duration::from_secs(config.num_or("timeout_s", 120u64)?);
    rc.fitness = FitnessParams {
        phi: config.num_or("phi", 2.0f64)?,
    };
    rc.static_filter = config.flag("static_filter");
    rc.lint_prior = config.flag("lint_prior");
    // `0` = auto: the `CIRFIX_JOBS` environment variable when set,
    // otherwise every available core.
    rc.jobs = config.num_or("jobs", 0usize)?;
    rc.batch_size = config.num_or("batch_size", rc.batch_size)?;
    if config.required("halt_after").is_ok() {
        rc.halt_after = Some(config.num_or("halt_after", 0u32)?);
    }
    // Per-candidate wall-clock budget; 0 (the default) = unbudgeted.
    let eval_timeout = config.num_or("eval_timeout", 0.0f64)?;
    if eval_timeout > 0.0 {
        rc.eval_timeout = Some(Duration::from_secs_f64(eval_timeout));
    }
    if let Ok(spec) = config.required("chaos") {
        let plan = FaultPlan::parse(spec).map_err(ConfigError)?;
        if !plan.is_empty() {
            rc.faults = Some(FaultInjector::new(plan));
        }
    }
    if config.required("mined_patterns").is_ok() {
        let path = config.path("mined_patterns")?;
        rc.mined_patterns = cirfix::load_mined_patterns(&path)
            .map_err(|e| ConfigError(format!("cannot load {}: {e}", path.display())))?;
    }
    Ok(rc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_key_value_lines() {
        let c = Config::parse(
            "# comment\n\ntop = tb\npopn_size = 40\nprobe_signals = q, ovf\n",
            Path::new("/base"),
        )
        .unwrap();
        assert_eq!(c.required("top").unwrap(), "tb");
        assert_eq!(c.num_or("popn_size", 0usize).unwrap(), 40);
        assert_eq!(c.list("probe_signals").unwrap(), vec!["q", "ovf"]);
        assert_eq!(c.string_or("output", "repaired.v"), "repaired.v");
    }

    #[test]
    fn resolves_relative_paths() {
        let c = Config::parse("design = d.v\n", Path::new("/cfg/dir")).unwrap();
        assert_eq!(c.path("design").unwrap(), PathBuf::from("/cfg/dir/d.v"));
        let c = Config::parse("design = /abs/d.v\n", Path::new("/cfg/dir")).unwrap();
        assert_eq!(c.path("design").unwrap(), PathBuf::from("/abs/d.v"));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Config::parse("nonsense line", Path::new(".")).is_err());
    }

    #[test]
    fn reports_missing_and_bad_values() {
        let c = Config::parse("popn_size = lots\n", Path::new(".")).unwrap();
        assert!(c.required("top").is_err());
        assert!(c.num_or("popn_size", 1usize).is_err());
    }

    #[test]
    fn overrides_apply() {
        let mut c = Config::parse("top = a\n", Path::new(".")).unwrap();
        c.set("top", "b");
        assert_eq!(c.required("top").unwrap(), "b");
        c.unset("top");
        assert!(c.required("top").is_err());
    }

    #[test]
    fn cli_override_syntax() {
        let mut c = Config::parse("seed = 1\n", Path::new(".")).unwrap();
        let args: Vec<String> = ["--seed", "7", "--resume", "--trace-out", "t.jsonl"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        apply_overrides(&mut c, &args).unwrap();
        assert_eq!(c.required("seed").unwrap(), "7");
        assert!(c.flag("resume"));
        assert_eq!(c.required("trace_out").unwrap(), "t.jsonl");
        let bad: Vec<String> = vec!["seed".into()];
        assert!(apply_overrides(&mut c, &bad).is_err());
        let dangling: Vec<String> = vec!["--seed".into()];
        assert!(apply_overrides(&mut c, &dangling).is_err());
    }
}
