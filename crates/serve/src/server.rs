//! The daemon: socket listeners and per-connection protocol handling.
//!
//! `serve` binds a Unix socket (the default; filesystem permissions
//! are the access control) or a TCP address, accepts connections, and
//! speaks the JSON-lines protocol from [`crate::protocol`]. Each
//! connection gets its own thread; malformed, oversized, or unknown
//! requests produce structured error lines and the connection (and
//! daemon) keep serving. A `shutdown` request drains the scheduler —
//! running jobs stop at their next batch boundary with resumable
//! checkpoints — and then stops the accept loop.

use std::io::{self, BufReader, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cirfix_store::parse_json;
use cirfix_telemetry::{Event, JsonValue};

use crate::protocol::{
    err_line, ok_line, parse_request, read_frame, Frame, Request, WireError, MAX_LINE_BYTES,
};
use crate::scheduler::{Scheduler, ServeOpts};

/// Where the daemon listens (and clients connect).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeAddr {
    /// A Unix domain socket at this path.
    Unix(PathBuf),
    /// A TCP listen address like `127.0.0.1:7411`.
    Tcp(String),
}

impl ServeAddr {
    /// Parses an address argument: `tcp:HOST:PORT` for TCP, anything
    /// else is a Unix socket path.
    pub fn parse(s: &str) -> ServeAddr {
        match s.strip_prefix("tcp:") {
            Some(addr) => ServeAddr::Tcp(addr.to_string()),
            None => ServeAddr::Unix(PathBuf::from(s)),
        }
    }
}

impl std::fmt::Display for ServeAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeAddr::Unix(p) => write!(f, "{}", p.display()),
            ServeAddr::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    fn try_clone(&self) -> io::Result<Stream> {
        Ok(match self {
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
        })
    }

    /// Closes both directions, waking any thread blocked on a read.
    fn force_close(&self) {
        let _ = match self {
            Stream::Unix(s) => s.shutdown(Shutdown::Both),
            Stream::Tcp(s) => s.shutdown(Shutdown::Both),
        };
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// Runs the daemon: binds `addr`, recovers and schedules jobs from the
/// store in `opts`, and serves until a `shutdown` request arrives.
/// Returns after the scheduler has drained (all running jobs stopped
/// at a batch boundary and checkpointed).
///
/// # Errors
///
/// Bind/accept failures, and scheduler startup failures.
pub fn serve(addr: &ServeAddr, opts: ServeOpts) -> io::Result<()> {
    let scheduler = Arc::new(Scheduler::new(opts)?);
    let listener = match addr {
        ServeAddr::Unix(path) => {
            // A previous daemon that was SIGKILLed leaves its socket
            // file behind; rebinding over it is the recovery path.
            if path.exists() {
                std::fs::remove_file(path)?;
            }
            let l = UnixListener::bind(path)?;
            l.set_nonblocking(true)?;
            Listener::Unix(l)
        }
        ServeAddr::Tcp(spec) => {
            let l = TcpListener::bind(spec)?;
            l.set_nonblocking(true)?;
            Listener::Tcp(l)
        }
    };

    let stop = Arc::new(AtomicBool::new(false));
    // Each handler thread is paired with a clone of its stream so
    // shutdown can close the socket out from under a blocked read —
    // otherwise an idle client connection would pin the daemon open.
    let mut handlers: Vec<(std::thread::JoinHandle<()>, Stream)> = Vec::new();
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let accepted = match &listener {
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
        };
        match accepted {
            Ok(stream) => {
                let clone = stream.try_clone()?;
                let scheduler = Arc::clone(&scheduler);
                let stop = Arc::clone(&stop);
                let handle = std::thread::spawn(move || {
                    let _ = handle_connection(stream, &scheduler, &stop);
                });
                handlers.push((handle, clone));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
        handlers.retain(|(h, _)| !h.is_finished());
    }

    scheduler.shutdown();
    for (h, conn) in handlers {
        conn.force_close();
        let _ = h.join();
    }
    if let ServeAddr::Unix(path) = addr {
        let _ = std::fs::remove_file(path);
    }
    Ok(())
}

fn write_line(writer: &mut impl Write, line: &str) -> io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

fn handle_connection(
    stream: Stream,
    scheduler: &Scheduler,
    stop: &Arc<AtomicBool>,
) -> io::Result<()> {
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    loop {
        match read_frame(&mut reader, MAX_LINE_BYTES)? {
            Frame::Eof | Frame::Truncated => return Ok(()),
            Frame::Oversized => {
                write_line(
                    &mut writer,
                    &err_line(&WireError::new(
                        "oversized",
                        format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                    )),
                )?;
            }
            Frame::Line(line) => match parse_request(&line) {
                Err(e) => write_line(&mut writer, &err_line(&e))?,
                Ok(Request::Shutdown) => {
                    write_line(&mut writer, &ok_line("shutdown", vec![]))?;
                    stop.store(true, Ordering::SeqCst);
                    return Ok(());
                }
                Ok(req) => handle_request(&req, scheduler, &mut writer, stop)?,
            },
        }
    }
}

fn job_fields(record: &crate::job::JobRecord) -> Vec<(&'static str, JsonValue)> {
    vec![
        ("job", JsonValue::Str(record.id.clone())),
        ("session", JsonValue::Str(record.session.clone())),
        ("state", JsonValue::Str(record.state.as_str().into())),
        ("detail", JsonValue::Str(record.detail.clone())),
    ]
}

fn handle_request(
    req: &Request,
    scheduler: &Scheduler,
    writer: &mut impl Write,
    stop: &Arc<AtomicBool>,
) -> io::Result<()> {
    match req {
        Request::Ping => write_line(writer, &ok_line("ping", vec![])),
        Request::Submit { conf, overrides } => {
            let spec = crate::job::JobSpec {
                conf: conf.clone(),
                overrides: overrides.clone(),
            };
            match scheduler.submit(&spec) {
                Ok(record) => write_line(writer, &ok_line("submit", job_fields(&record))),
                Err(e) => write_line(writer, &err_line(&e)),
            }
        }
        Request::Status { job } => {
            let records = scheduler.status(job.as_deref());
            if job.is_some() && records.is_empty() {
                let id = job.as_deref().unwrap_or_default();
                return write_line(
                    writer,
                    &err_line(&WireError::new("unknown_job", format!("no job `{id}`"))),
                );
            }
            let jobs =
                JsonValue::Array(records.iter().map(crate::job::JobRecord::to_json).collect());
            write_line(writer, &ok_line("status", vec![("jobs", jobs)]))
        }
        Request::Cancel { job } => match scheduler.cancel(job) {
            Ok(record) => write_line(writer, &ok_line("cancel", job_fields(&record))),
            Err(e) => write_line(writer, &err_line(&e)),
        },
        Request::Watch { job, once } => watch_job(scheduler, job, *once, writer, stop),
        // Handled by the caller before dispatch.
        Request::Shutdown => Ok(()),
    }
}

/// Streams heartbeat snapshots for one job until it finishes (or once,
/// with `once`). Each line carries the job's current state and, when a
/// heartbeat has arrived, the heartbeat event in trace shape under
/// `event`.
fn watch_job(
    scheduler: &Scheduler,
    job: &str,
    once: bool,
    writer: &mut impl Write,
    stop: &Arc<AtomicBool>,
) -> io::Result<()> {
    let Some((_, progress)) = scheduler.progress(job) else {
        return write_line(
            writer,
            &err_line(&WireError::new("unknown_job", format!("no job `{job}`"))),
        );
    };
    let mut seen = {
        let (version, heartbeat, done) = progress.snapshot();
        emit_watch_line(scheduler, job, heartbeat.as_ref(), done, writer)?;
        if once || done {
            return Ok(());
        }
        version
    };
    loop {
        let (version, heartbeat, done) = progress.wait_newer(seen, Duration::from_millis(250));
        if version != seen || done {
            emit_watch_line(scheduler, job, heartbeat.as_ref(), done, writer)?;
            seen = version;
        }
        if done || stop.load(Ordering::SeqCst) {
            return Ok(());
        }
    }
}

fn emit_watch_line(
    scheduler: &Scheduler,
    job: &str,
    heartbeat: Option<&cirfix_telemetry::HeartbeatEvent>,
    done: bool,
    writer: &mut impl Write,
) -> io::Result<()> {
    let state = scheduler
        .status(Some(job))
        .first()
        .map_or_else(|| "unknown".to_string(), |r| r.state.as_str().to_string());
    let event = match heartbeat {
        None => JsonValue::Null,
        Some(h) => {
            // Round-trip through the trace serialization so the wire
            // shape is exactly a trace line's (`cirfix watch` parses
            // both with the same code).
            let line = Event::Heartbeat(h.clone()).to_json();
            parse_json(&line).unwrap_or(JsonValue::Null)
        }
    };
    write_line(
        writer,
        &ok_line(
            "watch",
            vec![
                ("job", JsonValue::Str(job.into())),
                ("state", JsonValue::Str(state)),
                ("done", JsonValue::Bool(done)),
                ("event", event),
            ],
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_parse_both_transports() {
        assert_eq!(
            ServeAddr::parse("/tmp/cirfix.sock"),
            ServeAddr::Unix(PathBuf::from("/tmp/cirfix.sock"))
        );
        assert_eq!(
            ServeAddr::parse("tcp:127.0.0.1:7411"),
            ServeAddr::Tcp("127.0.0.1:7411".into())
        );
        assert_eq!(ServeAddr::parse("tcp:[::1]:9").to_string(), "tcp:[::1]:9");
    }
}
