//! Wire-protocol robustness: a live daemon fed malformed JSON,
//! oversized lines, truncated frames, unknown verbs, and deterministic
//! garbage must answer each complete request line with a structured
//! error — and keep serving afterwards.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Duration;

use cirfix_serve::{serve, Client, Request, ServeAddr, ServeOpts, MAX_LINE_BYTES};
use cirfix_store::{field, field_str, parse_json};
use cirfix_telemetry::JsonValue;

struct Daemon {
    addr: ServeAddr,
    dir: PathBuf,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Daemon {
    fn start(name: &str) -> Daemon {
        let dir = std::env::temp_dir().join(format!("cirfix-proto-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let addr = ServeAddr::Unix(dir.join("d.sock"));
        let opts = ServeOpts::new(dir.join("store"));
        let handle = {
            let addr = addr.clone();
            std::thread::spawn(move || serve(&addr, opts).expect("daemon runs"))
        };
        // Wait for the socket to come up.
        let ServeAddr::Unix(path) = &addr else {
            unreachable!()
        };
        for _ in 0..200 {
            if path.exists() {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        Daemon {
            addr,
            dir,
            handle: Some(handle),
        }
    }

    fn raw(&self) -> UnixStream {
        let ServeAddr::Unix(path) = &self.addr else {
            unreachable!()
        };
        UnixStream::connect(path).expect("daemon accepts")
    }

    fn stop(mut self) {
        let mut client = Client::connect(&self.addr).expect("connect for shutdown");
        let line = client
            .request(&Request::Shutdown)
            .expect("shutdown answers");
        assert!(cirfix_serve::client::response_ok(&line));
        if let Some(handle) = self.handle.take() {
            handle.join().expect("daemon exits cleanly");
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn send_line(stream: &mut UnixStream, line: &str) {
    stream.write_all(line.as_bytes()).expect("write");
    stream.write_all(b"\n").expect("write newline");
    stream.flush().expect("flush");
}

fn read_line(reader: &mut BufReader<UnixStream>) -> JsonValue {
    let mut line = String::new();
    reader.read_line(&mut line).expect("daemon responds");
    assert!(line.ends_with('\n'), "incomplete response: {line:?}");
    parse_json(line.trim_end()).expect("response is JSON")
}

fn error_code(v: &JsonValue) -> String {
    assert!(
        matches!(field(v, "ok"), Some(JsonValue::Bool(false))),
        "expected an error line, got {}",
        v.to_json()
    );
    field_str(v, "error")
        .expect("error code present")
        .to_string()
}

#[test]
fn malformed_requests_get_structured_errors_on_a_surviving_connection() {
    let daemon = Daemon::start("malformed");
    let stream = daemon.raw();
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut stream = stream;

    // Unparseable JSON.
    send_line(&mut stream, "this is not json");
    assert_eq!(error_code(&read_line(&mut reader)), "bad_request");

    // Valid JSON, missing the version.
    send_line(&mut stream, "{\"verb\":\"ping\"}");
    assert_eq!(error_code(&read_line(&mut reader)), "bad_request");

    // A version this daemon does not speak.
    send_line(&mut stream, "{\"v\":99,\"verb\":\"ping\"}");
    assert_eq!(error_code(&read_line(&mut reader)), "unsupported_version");

    // An unknown verb.
    send_line(&mut stream, "{\"v\":1,\"verb\":\"frobnicate\"}");
    assert_eq!(error_code(&read_line(&mut reader)), "unknown_verb");

    // A submit whose config cannot be loaded.
    send_line(
        &mut stream,
        "{\"v\":1,\"verb\":\"submit\",\"conf\":\"/nonexistent/r.conf\"}",
    );
    assert_eq!(error_code(&read_line(&mut reader)), "bad_request");

    // Operations on a job that does not exist.
    send_line(&mut stream, "{\"v\":1,\"verb\":\"cancel\",\"job\":\"zzz\"}");
    assert_eq!(error_code(&read_line(&mut reader)), "unknown_job");
    send_line(&mut stream, "{\"v\":1,\"verb\":\"watch\",\"job\":\"zzz\"}");
    assert_eq!(error_code(&read_line(&mut reader)), "unknown_job");

    // The same connection still serves well-formed requests.
    send_line(&mut stream, "{\"v\":1,\"verb\":\"ping\"}");
    let pong = read_line(&mut reader);
    assert!(matches!(field(&pong, "ok"), Some(JsonValue::Bool(true))));
    send_line(&mut stream, "{\"v\":1,\"verb\":\"status\"}");
    let status = read_line(&mut reader);
    assert!(matches!(field(&status, "ok"), Some(JsonValue::Bool(true))));
    assert!(matches!(
        field(&status, "jobs"),
        Some(JsonValue::Array(jobs)) if jobs.is_empty()
    ));

    daemon.stop();
}

#[test]
fn oversized_lines_are_rejected_and_drained() {
    let daemon = Daemon::start("oversized");
    let stream = daemon.raw();
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut stream = stream;

    // One byte over the cap (the newline is not counted).
    let big = "x".repeat(MAX_LINE_BYTES + 1);
    send_line(&mut stream, &big);
    assert_eq!(error_code(&read_line(&mut reader)), "oversized");

    // The oversized line was consumed through its newline: the next
    // request parses from a clean frame boundary.
    send_line(&mut stream, "{\"v\":1,\"verb\":\"ping\"}");
    let pong = read_line(&mut reader);
    assert!(matches!(field(&pong, "ok"), Some(JsonValue::Bool(true))));

    daemon.stop();
}

#[test]
fn truncated_frames_drop_the_connection_but_not_the_daemon() {
    let daemon = Daemon::start("truncated");

    // A connection that dies mid-line (no trailing newline).
    {
        let mut stream = daemon.raw();
        stream
            .write_all(b"{\"v\":1,\"verb\":\"pi")
            .expect("partial write");
        stream.flush().expect("flush");
        // Dropping the stream closes it with the frame incomplete.
    }

    // The daemon keeps accepting and serving.
    let mut client = Client::connect(&daemon.addr).expect("daemon still accepts");
    let pong = client.request(&Request::Ping).expect("daemon still serves");
    assert!(cirfix_serve::client::response_ok(&pong));

    daemon.stop();
}

#[test]
fn deterministic_garbage_never_kills_the_daemon() {
    let daemon = Daemon::start("garbage");
    let stream = daemon.raw();
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut stream = stream;

    // A fixed linear congruential generator: the same byte soup on
    // every run, so a failure here reproduces.
    let mut state: u64 = 0x2545F4914F6CDD1D;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as u8
    };
    for round in 0..64 {
        let len = 1 + (usize::from(next()) % 120);
        let line: String = (0..len)
            .map(|_| {
                // Printable ASCII minus newline; braces and quotes
                // included so some rounds look almost like JSON.
                char::from(32 + (next() % 95))
            })
            .collect();
        send_line(&mut stream, &line);
        let response = read_line(&mut reader);
        assert!(
            matches!(field(&response, "ok"), Some(JsonValue::Bool(false))),
            "round {round}: garbage {line:?} got {}",
            response.to_json()
        );
    }

    // Still alive and well-behaved.
    send_line(&mut stream, "{\"v\":1,\"verb\":\"ping\"}");
    let pong = read_line(&mut reader);
    assert!(matches!(field(&pong, "ok"), Some(JsonValue::Bool(true))));
    daemon.stop();
}
