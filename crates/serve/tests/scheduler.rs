//! Scheduler semantics on real repair jobs: fair-share interleaving at
//! batch boundaries, daemon-vs-batch byte identity, and crash/cancel
//! recovery through the store.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cirfix::{repair_session, result_to_canonical_json, Observer};
use cirfix_serve::conf::{self, Config};
use cirfix_serve::{JobSpec, JobState, Scheduler, ServeOpts};
use cirfix_store::{field, parse_json};
use cirfix_telemetry::{FanoutSink, JsonLinesSink, TelemetrySink, TimingFreeSink};

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cirfix-sched-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// Materializes a benchmark scenario as on-disk sources plus a
/// `repair.conf`, the way a daemon client would have them.
fn write_fixture(dir: &Path, scenario_id: &str) -> PathBuf {
    let scenario = cirfix_benchmarks::scenario(scenario_id).expect("known scenario");
    let project = cirfix_benchmarks::project(scenario.project).expect("known project");
    fs::create_dir_all(dir).expect("mkdir fixture");
    fs::write(dir.join("faulty.v"), scenario.faulty_design).expect("write faulty");
    fs::write(dir.join("golden.v"), project.design).expect("write golden");
    fs::write(dir.join("tb.v"), project.testbench).expect("write tb");
    let conf = format!(
        "design = faulty.v\n\
         golden = golden.v\n\
         testbench = tb.v\n\
         top = {}\n\
         design_modules = {}\n\
         probe_signals = {}\n\
         probe_start = {}\n\
         probe_period = {}\n\
         max_time = {}\n",
        project.top,
        project.design_modules.join(","),
        project.probe_signals.join(","),
        project.probe_start,
        project.probe_period,
        project.max_time,
    );
    let path = dir.join("repair.conf");
    fs::write(&path, conf).expect("write conf");
    path
}

/// The search-shape overrides every test here uses: small, fast, and
/// fully pinned so nothing depends on defaults drifting.
fn base_overrides(seed: u64) -> Vec<(String, String)> {
    [
        ("seed", seed.to_string()),
        ("popn_size", "60".into()),
        ("max_generations", "3".into()),
        ("max_evals", "400".into()),
        ("timeout_s", "3600".into()),
        ("trials", "2".into()),
        ("jobs", "1".into()),
    ]
    .into_iter()
    .map(|(k, v)| (k.to_string(), v))
    .collect()
}

fn spec(conf: &Path, mut overrides: Vec<(String, String)>, extra: &[(&str, &str)]) -> JobSpec {
    overrides.extend(extra.iter().map(|(k, v)| (k.to_string(), v.to_string())));
    JobSpec {
        conf: conf.display().to_string(),
        overrides,
    }
}

/// Runs the same configuration directly through [`repair_session`] —
/// the batch `cirfix repair` path — writing a timing-free trace, and
/// returns the canonical result JSON line.
fn batch_reference(
    conf_path: &Path,
    overrides: &[(String, String)],
    store_dir: &Path,
    trace_out: Option<&Path>,
) -> String {
    let mut config = Config::load(conf_path).expect("conf loads");
    for (key, value) in overrides {
        config.set(key, value);
    }
    let problem = conf::build_problem(&config).expect("problem builds");
    let mut rc = conf::repair_config(&config).expect("repair config builds");
    let observer = match trace_out {
        None => Observer::default(),
        Some(path) => {
            let sink = JsonLinesSink::create(path).expect("trace opens");
            let sinks: Vec<Box<dyn TelemetrySink>> = vec![Box::new(TimingFreeSink::new(sink))];
            Observer::new(Arc::new(FanoutSink::new(sinks)))
        }
    };
    rc.observer = observer.clone();
    let trials: u32 = config.num_or("trials", 3u32).expect("trials");
    let result = repair_session(&problem, &rc, trials, store_dir, true).expect("batch run");
    observer.flush();
    format!("{}\n", result_to_canonical_json(&result).to_json())
}

fn only_state(scheduler: &Scheduler, id: &str) -> JobState {
    scheduler.status(Some(id)).first().expect("job known").state
}

#[test]
fn concurrent_jobs_interleave_strictly_at_batch_boundaries() {
    let dir = fresh_dir("fair");
    let conf = write_fixture(&dir.join("fx"), "counter_reset");
    let mut opts = ServeOpts::new(dir.join("store"));
    opts.max_active = 2;
    let scheduler = Scheduler::new(opts).expect("scheduler starts");

    // Two sessions of the same hard scenario, distinguished by seed,
    // each generating serially (`jobs = 1`) in small batches so the
    // fair gate gets plenty of turns to arbitrate.
    let fast = [
        ("batch_size", "8"),
        ("max_generations", "2"),
        ("max_evals", "200"),
        ("trials", "1"),
    ];
    let a = scheduler
        .submit(&spec(&conf, base_overrides(11), &fast))
        .expect("job a admitted");
    let b = scheduler
        .submit(&spec(&conf, base_overrides(12), &fast))
        .expect("job b admitted");
    assert_ne!(a.id, b.id, "different seeds are different sessions");
    scheduler.wait_idle();

    assert!(only_state(&scheduler, &a.id).is_terminal());
    assert!(only_state(&scheduler, &b.id).is_terminal());

    let turns = scheduler.turns();
    let pos = |id: &str| {
        let first = turns.iter().position(|t| t == id).expect("job took turns");
        let last = turns.iter().rposition(|t| t == id).expect("job took turns");
        (first, last)
    };
    let (first_a, last_a) = pos(&a.id);
    let (first_b, last_b) = pos(&b.id);
    // While both jobs were in rotation, turns must alternate strictly:
    // no job dispatches two batches in a row.
    let window = &turns[first_a.max(first_b)..=last_a.min(last_b)];
    assert!(
        window.len() >= 4,
        "jobs barely overlapped; turn log: {turns:?}"
    );
    for pair in window.windows(2) {
        assert_ne!(
            pair[0], pair[1],
            "a job took two consecutive batch turns: {window:?}"
        );
    }
    scheduler.shutdown();
    let _ = fs::remove_dir_all(dir);
}

#[test]
fn daemon_jobs_match_batch_runs_byte_for_byte() {
    let dir = fresh_dir("ident");
    let conf = write_fixture(&dir.join("fx"), "flip_flop_cond");

    // The reference: plain batch `repair_session` on a fresh store,
    // timing-free trace.
    let ref_dir = dir.join("reference");
    fs::create_dir_all(&ref_dir).expect("mkdir");
    let ref_trace = ref_dir.join("trace.jsonl");
    let ref_json = batch_reference(
        &conf,
        &base_overrides(5),
        &ref_dir.join("store"),
        Some(&ref_trace),
    );
    let ref_trace_bytes = fs::read(&ref_trace).expect("reference trace exists");
    assert!(!ref_trace_bytes.is_empty());

    // The same job through the daemon, with 1 and then 4 evaluation
    // workers: identical trace bytes and identical canonical result.
    for jobs in ["1", "4"] {
        let job_dir = dir.join(format!("daemon-jobs-{jobs}"));
        fs::create_dir_all(&job_dir).expect("mkdir");
        let trace = job_dir.join("trace.jsonl");
        let result = job_dir.join("result.json");
        let output = job_dir.join("repaired.v");
        let scheduler = Scheduler::new(ServeOpts::new(job_dir.join("store"))).expect("scheduler");
        let record = scheduler
            .submit(&spec(
                &conf,
                base_overrides(5),
                &[
                    ("jobs", jobs),
                    ("trace_out", trace.to_str().unwrap()),
                    ("trace_timing", "off"),
                    ("result_out", result.to_str().unwrap()),
                    ("output", output.to_str().unwrap()),
                ],
            ))
            .expect("admitted");
        scheduler.wait_idle();
        let state = only_state(&scheduler, &record.id);
        scheduler.shutdown();
        assert!(state.is_terminal(), "job finished, got {state:?}");

        let daemon_trace = fs::read(&trace).expect("daemon trace exists");
        assert_eq!(
            daemon_trace, ref_trace_bytes,
            "jobs={jobs}: daemon trace must be byte-identical to the batch trace"
        );
        let daemon_json = fs::read_to_string(&result).expect("daemon result exists");
        assert_eq!(
            daemon_json, ref_json,
            "jobs={jobs}: daemon canonical result must match the batch run"
        );
    }
    let _ = fs::remove_dir_all(dir);
}

#[test]
fn interrupted_job_resumes_on_restart_to_the_uninterrupted_result() {
    let dir = fresh_dir("halt");
    let conf = write_fixture(&dir.join("fx"), "flip_flop_cond");

    let ref_json = batch_reference(&conf, &base_overrides(5), &dir.join("ref-store"), None);

    // Daemon run with the deterministic kill stand-in: halt right
    // after checkpointing generation 0.
    let store = dir.join("store");
    let result = dir.join("result.json");
    let output = dir.join("repaired.v");
    let job_spec = spec(
        &conf,
        base_overrides(5),
        &[
            ("halt_after", "0"),
            ("result_out", result.to_str().unwrap()),
            ("output", output.to_str().unwrap()),
        ],
    );
    let first = Scheduler::new(ServeOpts::new(&store)).expect("first daemon");
    let record = first.submit(&job_spec).expect("admitted");
    first.wait_idle();
    assert_eq!(
        only_state(&first, &record.id),
        JobState::Interrupted,
        "halt_after must interrupt, not finish"
    );
    assert!(!result.exists(), "no result artifact for an unfinished job");
    first.shutdown();

    // A new daemon over the same store recovers the job from the
    // registry, strips the rehearsed halt, and resumes the session
    // from its checkpoint.
    let second = Scheduler::new(ServeOpts::new(&store)).expect("restarted daemon");
    let recovered = second.status(Some(&record.id));
    assert_eq!(
        recovered.len(),
        1,
        "registry carried the job across restart"
    );
    second.wait_idle();
    assert!(only_state(&second, &record.id).is_terminal());
    second.shutdown();

    let resumed = fs::read_to_string(&result).expect("resumed job wrote its result");
    assert_eq!(
        resumed, ref_json,
        "resume after interruption must land on the uninterrupted result, byte for byte"
    );
    let _ = fs::remove_dir_all(dir);
}

#[test]
fn cancelled_job_resumes_on_restart_and_matches_the_search_trajectory() {
    let dir = fresh_dir("cancel");
    // A scenario this budget cannot repair: the job runs its full
    // budget, so a mid-run cancel has room to land.
    let conf = write_fixture(&dir.join("fx"), "counter_reset");

    let ref_json = batch_reference(&conf, &base_overrides(5), &dir.join("ref-store"), None);

    let store = dir.join("store");
    let result = dir.join("result.json");
    let job_spec = spec(
        &conf,
        base_overrides(5),
        &[("result_out", result.to_str().unwrap())],
    );
    let first = Scheduler::new(ServeOpts::new(&store)).expect("first daemon");
    let record = first.submit(&job_spec).expect("admitted");

    // Wait for the first heartbeat — the job is demonstrably mid-search
    // — then cancel. The engine stops at its next batch boundary.
    let (_, progress) = first.progress(&record.id).expect("job known");
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut seen = 0;
    loop {
        let (version, heartbeat, done) = progress.wait_newer(seen, Duration::from_millis(250));
        seen = version;
        if heartbeat.is_some() || done {
            break;
        }
        assert!(Instant::now() < deadline, "no heartbeat within deadline");
    }
    first.cancel(&record.id).expect("cancel accepted");
    first.wait_idle();
    assert_eq!(only_state(&first, &record.id), JobState::Cancelled);
    first.shutdown();

    // Restart: the cancelled (resumable) job re-enqueues and runs to
    // its real end.
    let second = Scheduler::new(ServeOpts::new(&store)).expect("restarted daemon");
    second.wait_idle();
    assert!(only_state(&second, &record.id).is_terminal());
    second.shutdown();

    // A cancel can land between checkpoints, so replayed evaluations
    // become store hits and the effort counters legitimately differ.
    // The search trajectory itself — status, fitness, patch, repaired
    // source, fitness history — must be exactly the uninterrupted one.
    let resumed = parse_json(fs::read_to_string(&result).expect("result written").trim())
        .expect("result parses");
    let reference = parse_json(ref_json.trim()).expect("reference parses");
    for key in [
        "status",
        "best_fitness_bits",
        "patch",
        "repaired_source",
        "unminimized_len",
        "history_bits",
        "improvement_bits",
    ] {
        assert_eq!(
            field(&resumed, key).map(cirfix_telemetry::JsonValue::to_json),
            field(&reference, key).map(cirfix_telemetry::JsonValue::to_json),
            "trajectory field `{key}` must survive cancel + resume"
        );
    }
    let _ = fs::remove_dir_all(dir);
}
