//! Walk through Algorithm 2 on the faulty counter: show which
//! statements each iteration of the fixed point implicates.
//!
//! ```sh
//! cargo run --release --example fault_localization
//! ```

use std::collections::BTreeSet;

use cirfix::{evaluate, fault_localization, FitnessParams, Patch};
use cirfix_ast::{print, visit};
use cirfix_benchmarks::scenario;

fn main() {
    let scenario = scenario("counter_reset").expect("motivating example");
    let problem = scenario.problem().expect("parses");
    let eval = evaluate(&problem, &Patch::empty(), FitnessParams::default());
    println!("output mismatch (Alg. 2, line 2): {:?}\n", eval.mismatched);

    let faulty = scenario.faulty_design_file().expect("parses");
    let module = faulty.module("counter").expect("module");

    // Run the full fixed point.
    let fl = fault_localization(&[module], &eval.mismatched);
    println!("final mismatch set: {:?}", fl.mismatch);
    println!("implicated node ids: {} nodes\n", fl.nodes.len());

    // Show the implicated statements as source text.
    println!("implicated statements:");
    for stmt in visit::stmts_of_module(module) {
        if fl.nodes.contains(&stmt.id()) && (stmt.is_assignment() || stmt.is_conditional()) {
            let text = print::stmt_to_string(stmt);
            let first = text.lines().next().unwrap_or("");
            println!("  [node {:>3}] {}", stmt.id(), first);
        }
    }

    // Contrast: localize from a variable that does not exist.
    let empty = fault_localization(&[module], &BTreeSet::from(["ghost".to_string()]));
    println!(
        "\nlocalizing from an unknown variable implicates {} nodes",
        empty.nodes.len()
    );
}
