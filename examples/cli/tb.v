// Instrumented testbench: sweeps all 16 inputs.
module tb;
    reg [3:0] bin;
    wire [3:0] g;
    integer i;
    gray dut (bin, g);
    initial begin
        bin = 0;
        #10 ;
        for (i = 0; i < 16; i = i + 1) begin
            bin = i[3:0];
            #10 ;
        end
        $finish;
    end
endmodule
