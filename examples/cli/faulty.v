// Gray-code encoder with a wrong shift amount (the defect).
module gray (bin, g);
    input [3:0] bin;
    output [3:0] g;
    assign g = bin ^ (bin >> 2);
endmodule
