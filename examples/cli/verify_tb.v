// Held-out verification bench: reverse sweep with repeats.
module verify_tb;
    reg [3:0] bin;
    wire [3:0] g;
    integer i;
    gray dut (bin, g);
    initial begin
        bin = 4'hf;
        #10 ;
        for (i = 15; i >= 0 && i < 16; i = i - 1) begin
            bin = i[3:0];
            #10 ;
            bin = ~i[3:0];
            #10 ;
        end
        $finish;
    end
endmodule
