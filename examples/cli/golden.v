// Known-good gray-code encoder used to record expected behaviour.
module gray (bin, g);
    input [3:0] bin;
    output [3:0] g;
    assign g = bin ^ (bin >> 1);
endmodule
