//! Use the simulator substrate directly: run the golden counter with
//! its testbench and print the instrumented trace as CSV.
//!
//! ```sh
//! cargo run --release --example simulate_design
//! ```

use cirfix_benchmarks::project;
use cirfix_sim::{ProbeSpec, SimConfig, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let p = project("counter").expect("bundled project");
    let file = p.golden_full()?;

    let mut sim = Simulator::new(&file, p.top, SimConfig::default())?;
    let probe = sim.add_probe(&ProbeSpec::periodic(
        vec!["counter_out".into(), "overflow_out".into()],
        25,
        10,
    ))?;
    let outcome = sim.run()?;

    println!(
        "finished={} end_time={} ops={}",
        outcome.finished, outcome.end_time, outcome.total_ops
    );
    println!("{}", sim.probe_trace(probe).to_csv());
    for line in sim.log() {
        println!("$display: {line}");
    }
    Ok(())
}
