//! Quickstart: repair a benchmark defect end to end.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cirfix::{repair, RepairConfig};
use cirfix_benchmarks::scenario;

fn main() {
    // Pick a Table 3 scenario: the T-flip-flop with a negated reset
    // condition.
    let scenario = scenario("flip_flop_cond").expect("bundled scenario");
    println!("Defect: {} ({})", scenario.description, scenario.id);

    // Build the repair problem: faulty design + instrumented testbench +
    // expected behaviour recorded from the golden design.
    let problem = scenario.problem().expect("benchmark sources parse");

    // Run one GP repair trial with the scaled-down configuration.
    let result = repair(&problem, RepairConfig::fast(1));

    println!(
        "plausible: {}  fitness: {:.3}  evaluations: {}  generations: {}",
        result.is_plausible(),
        result.best_fitness,
        result.fitness_evals,
        result.generations
    );
    println!(
        "minimized patch:\n{}",
        cirfix::explain::describe_patch(&problem.source, &problem.design_modules, &result.patch)
    );
    if result.is_plausible() {
        let (repaired, _) =
            cirfix::apply_patch(&problem.source, &problem.design_modules, &result.patch);
        println!(
            "diff against the faulty design:\n{}",
            cirfix::explain::diff_designs(&problem.source, &repaired, &problem.design_modules)
        );
    }
}
