//! Repair a design that is *not* part of the benchmark suite: bring
//! your own Verilog, golden reference, and testbench.
//!
//! ```sh
//! cargo run --release --example custom_design_repair
//! ```

use cirfix::{oracle_from_golden, repair, RepairConfig, RepairProblem};
use cirfix_sim::{ProbeSpec, SimConfig};

// A gray-code encoder with a wrong shift amount.
const FAULTY: &str = r#"
module gray (bin, g);
    input [3:0] bin;
    output [3:0] g;
    assign g = bin ^ (bin >> 2);
endmodule
"#;

const GOLDEN: &str = r#"
module gray (bin, g);
    input [3:0] bin;
    output [3:0] g;
    assign g = bin ^ (bin >> 1);
endmodule
"#;

const TESTBENCH: &str = r#"
module tb;
    reg [3:0] bin;
    wire [3:0] g;
    integer i;
    gray dut (bin, g);
    initial begin
        bin = 0;
        #10 ;
        for (i = 0; i < 16; i = i + 1) begin
            bin = i[3:0];
            #10 ;
        end
        $finish;
    end
endmodule
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Instrumentation: sample the output halfway through each
    //    stimulus interval.
    let probe = ProbeSpec::periodic(vec!["g".into()], 15, 10);
    let sim = SimConfig {
        max_time: 250,
        ..SimConfig::default()
    };

    // 2. Expected behaviour from the golden design (§4.1.2).
    let mut golden = cirfix_parser::parse(GOLDEN)?;
    golden.extend_from(cirfix_parser::parse(TESTBENCH)?);
    let oracle = oracle_from_golden(&golden, "tb", &probe, &sim)?;

    // 3. The repair problem over the faulty design.
    let mut source = cirfix_parser::parse(FAULTY)?;
    source.extend_from(cirfix_parser::parse(TESTBENCH)?);
    let problem = RepairProblem {
        source,
        top: "tb".into(),
        design_modules: vec!["gray".into()],
        probe,
        oracle,
        sim,
    };

    // 4. Search.
    for seed in 1..=5 {
        let result = repair(&problem, RepairConfig::fast(seed));
        println!(
            "trial {seed}: plausible={} best={:.3} evals={}",
            result.is_plausible(),
            result.best_fitness,
            result.fitness_evals
        );
        if let Some(src) = result.repaired_source {
            println!("\nrepaired design:\n{src}");
            break;
        }
    }
    Ok(())
}
