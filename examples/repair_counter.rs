//! The paper's motivating example (§2), end to end: the 4-bit counter
//! with the missing overflow reset, its fitness score, its fault
//! localization, and a repair attempt.
//!
//! ```sh
//! cargo run --release --example repair_counter
//! ```

use cirfix::{evaluate, fault_localization, repair, FitnessParams, Patch, RepairConfig};
use cirfix_benchmarks::scenario;

fn main() {
    let scenario = scenario("counter_reset").expect("motivating example");
    let problem = scenario.problem().expect("sources parse");

    // Step 1: how bad is the defect? The paper reports fitness 0.58.
    let eval = evaluate(&problem, &Patch::empty(), FitnessParams::default());
    println!(
        "faulty counter fitness: {:.2} (paper: 0.58), mismatched: {:?}",
        eval.score, eval.mismatched
    );

    // Step 2: what does fault localization implicate? Starting from
    // overflow_out, Add-Child pulls in counter_out and the conditionals.
    let faulty = scenario.faulty_design_file().expect("parses");
    let module = faulty.module("counter").expect("module");
    let fl = fault_localization(&[module], &eval.mismatched);
    println!(
        "fault localization: {} nodes implicated, mismatch set {:?}",
        fl.nodes.len(),
        fl.mismatch
    );

    // Step 3: search for a repair. This defect needs a multi-edit fix
    // (insert the missing assignment, then correct its value), so give
    // the search a few trials.
    for seed in 1..=5 {
        let result = repair(&problem, RepairConfig::fast(seed));
        println!(
            "trial {seed}: plausible={} best={:.3} evals={}",
            result.is_plausible(),
            result.best_fitness,
            result.fitness_evals
        );
        if result.is_plausible() {
            println!("\nrepaired design:\n{}", result.repaired_source.unwrap());
            println!("improvement trajectory: {:?}", result.improvement_steps);
            return;
        }
    }
    println!("no repair under the fast budget; try RepairConfig::paper()");
}
