//! A repair run with a JSON-lines telemetry trace attached.
//!
//! Repairs the counter sensitivity-list benchmark while streaming every
//! telemetry event (generation statistics, candidate evaluations, fault
//! localization, simulator effort, spans) to `trace_repair.jsonl`, then
//! prints a per-event-type tally plus the aggregate summary report.
//!
//! ```sh
//! cargo run --release --example trace_repair
//! jq 'select(.type == "generation")' trace_repair.jsonl
//! ```

use std::collections::BTreeMap;
use std::sync::Arc;

use cirfix::{repair, Observer, RepairConfig};
use cirfix_benchmarks::scenario;
use cirfix_telemetry::{validate_json_line, FanoutSink, JsonLinesSink, SummarySink, TelemetrySink};

fn main() {
    let scenario = scenario("counter_sens_list").expect("benchmark exists");
    let problem = scenario.problem().expect("sources parse");

    let trace_path = std::path::Path::new("trace_repair.jsonl");
    let trace = JsonLinesSink::create(trace_path).expect("trace file opens");
    let summary = Arc::new(SummarySink::new());
    let sinks: Vec<Box<dyn TelemetrySink>> = vec![Box::new(trace), Box::new(Arc::clone(&summary))];
    let observer = Observer::new(Arc::new(FanoutSink::new(sinks)));

    // The search is stochastic; retry a few seeds under the fast budget.
    let mut plausible = false;
    for seed in 1..=5 {
        let mut config = RepairConfig::fast(seed);
        config.observer = observer.clone();
        let result = repair(&problem, config);
        println!(
            "trial {seed}: plausible={} best={:.3} evals={} wall={:.1?}",
            result.is_plausible(),
            result.best_fitness,
            result.totals.fitness_evals,
            result.totals.wall_time
        );
        if result.is_plausible() {
            plausible = true;
            break;
        }
    }
    observer.flush();

    // Read the trace back: every line must be valid JSON with a type tag.
    let text = std::fs::read_to_string(trace_path).expect("trace readable");
    let mut tally: BTreeMap<String, u64> = BTreeMap::new();
    for line in text.lines() {
        validate_json_line(line).expect("trace lines are valid JSON");
        let tag = line
            .split_once("\"type\":\"")
            .and_then(|(_, rest)| rest.split('"').next())
            .unwrap_or("?");
        *tally.entry(tag.to_string()).or_insert(0) += 1;
    }
    println!(
        "\ntrace written to {} ({} events):",
        trace_path.display(),
        text.lines().count()
    );
    for (tag, count) in &tally {
        println!("  {tag:<12} {count:>8}");
    }
    println!();
    print!("{}", summary.report());
    if !plausible {
        println!("no repair under the fast budget; the trace still shows the search");
    }
}
